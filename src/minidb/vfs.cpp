#include "minidb/vfs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>

namespace perftrack::minidb {

using util::StorageError;

namespace {

constexpr std::size_t kSectorSize = 512;

class PosixFile final : public VfsFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t read(std::uint64_t offset, void* buf, std::size_t n) override {
    std::size_t total = 0;
    auto* out = static_cast<std::uint8_t*>(buf);
    while (total < n) {
      const ssize_t got = ::pread(fd_, out + total, n - total,
                                  static_cast<off_t>(offset + total));
      if (got < 0) {
        if (errno == EINTR) continue;
        throw StorageError("read failed on " + path_ + ": " + std::strerror(errno));
      }
      if (got == 0) break;  // end of file
      total += static_cast<std::size_t>(got);
    }
    return total;
  }

  void write(std::uint64_t offset, const void* buf, std::size_t n) override {
    std::size_t total = 0;
    const auto* in = static_cast<const std::uint8_t*>(buf);
    while (total < n) {
      const ssize_t put = ::pwrite(fd_, in + total, n - total,
                                   static_cast<off_t>(offset + total));
      if (put < 0) {
        if (errno == EINTR) continue;
        throw StorageError("write failed on " + path_ + ": " + std::strerror(errno));
      }
      total += static_cast<std::size_t>(put);
    }
  }

  void sync() override {
    // EINTR retry matters in ptserverd: SIGTERM during the drain lands on
    // whichever worker is mid-commit, and durability must survive it.
    while (::fsync(fd_) != 0) {
      if (errno == EINTR) continue;
      throw StorageError("fsync failed on " + path_ + ": " + std::strerror(errno));
    }
  }

  void truncate(std::uint64_t size) override {
    while (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      if (errno == EINTR) continue;
      throw StorageError("truncate failed on " + path_ + ": " + std::strerror(errno));
    }
  }

  std::uint64_t size() override {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      throw StorageError("seek failed on " + path_ + ": " + std::strerror(errno));
    }
    return static_cast<std::uint64_t>(end);
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

std::unique_ptr<VfsFile> PosixVfs::open(const std::string& path, bool create) {
  const int flags = O_RDWR | (create ? O_CREAT : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    throw StorageError("cannot open " + path + ": " + std::strerror(errno));
  }
  return std::make_unique<PosixFile>(fd, path);
}

bool PosixVfs::exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

void PosixVfs::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    throw StorageError("cannot remove " + path + ": " + std::strerror(errno));
  }
}

PosixVfs& PosixVfs::instance() {
  static PosixVfs vfs;
  return vfs;
}

// --- fault injection ---------------------------------------------------------

class FaultInjectingFile final : public VfsFile {
 public:
  FaultInjectingFile(FaultInjectingVfs& owner, std::unique_ptr<VfsFile> base)
      : owner_(&owner), base_(std::move(base)) {}

  std::size_t read(std::uint64_t offset, void* buf, std::size_t n) override {
    ++owner_->reads_;
    std::size_t got = base_->read(offset, buf, n);
    if (owner_->plan_.short_read_at != 0 &&
        owner_->reads_ == owner_->plan_.short_read_at && got > 0) {
      got /= 2;  // deliver a short read: half of what the disk returned
    }
    return got;
  }

  void write(std::uint64_t offset, const void* buf, std::size_t n) override {
    owner_->checkCrashed("write");
    if (owner_->countMutatingOp()) {
      // Torn write: a prefix of whole sectors reaches the platter before the
      // "power loss".
      if (owner_->plan_.torn_write && n > 0) {
        std::size_t keep = owner_->plan_.torn_bytes != 0 ? owner_->plan_.torn_bytes
                                                         : n / 2;
        keep = std::min(keep, n);
        keep -= keep % kSectorSize;
        if (keep > 0) base_->write(offset, buf, keep);
      }
      owner_->fire("write");
    }
    base_->write(offset, buf, n);
  }

  void sync() override {
    owner_->checkCrashed("sync");
    if (owner_->countMutatingOp()) owner_->fire("sync");
    base_->sync();
  }

  void truncate(std::uint64_t size) override {
    owner_->checkCrashed("truncate");
    if (owner_->countMutatingOp()) owner_->fire("truncate");
    base_->truncate(size);
  }

  std::uint64_t size() override { return base_->size(); }

 private:
  FaultInjectingVfs* owner_;
  std::unique_ptr<VfsFile> base_;
};

std::unique_ptr<VfsFile> FaultInjectingVfs::open(const std::string& path,
                                                 bool create) {
  checkCrashed("open");
  return std::make_unique<FaultInjectingFile>(*this, base_->open(path, create));
}

void FaultInjectingVfs::remove(const std::string& path) {
  checkCrashed("remove");
  if (countMutatingOp()) fire("remove");
  base_->remove(path);
}

bool FaultInjectingVfs::countMutatingOp() {
  ++mutating_ops_;
  return plan_.fail_at_op != 0 && mutating_ops_ == plan_.fail_at_op;
}

void FaultInjectingVfs::fire(const std::string& what) {
  if (plan_.action == FaultAction::Kill) {
    ::raise(SIGKILL);  // a genuine crash; no cleanup, no destructors
  }
  crashed_ = true;
  throw InjectedFault("injected fault at op " + std::to_string(mutating_ops_) +
                      " (" + what + ")");
}

void FaultInjectingVfs::checkCrashed(const std::string& what) {
  if (crashed_) {
    throw InjectedFault("post-crash " + what + ": the simulated machine is down");
  }
}

}  // namespace perftrack::minidb
