// minidb: virtual file system shim.
//
// FilePager performs every disk operation through this narrow interface —
// positioned read/write, fsync, truncate — instead of calling stdio/POSIX
// directly. Two implementations ship:
//   * PosixVfs     — the real thing (open/pread/pwrite/fsync/ftruncate);
//   * FaultInjectingVfs — a decorator over any Vfs that deterministically
//     fails the Nth mutating operation (write/sync/truncate), optionally
//     applying a torn (partial-sector) write first, and can also return
//     short reads. After the injected fault fires, every further mutating
//     operation throws, so the backing files hold exactly what the disk
//     would contain if the process had died at that instruction. The
//     crash-matrix tests (tests/minidb/crash_matrix_test.cpp) iterate the
//     fault point over every operation of a workload and assert that
//     recovery restores the last committed state each time.
//
// The injected failure can also be a real SIGKILL (FaultAction::Kill), used
// by scripts/crash_kill_test.sh to produce a genuine hot journal from a
// process that dies mid-ingest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/error.h"

namespace perftrack::minidb {

/// Thrown (only) by FaultInjectingVfs when a planned fault fires. A subclass
/// of StorageError so production code paths treat it like any I/O failure;
/// tests catch it specifically to tell "planned crash" from real bugs.
class InjectedFault : public util::StorageError {
 public:
  explicit InjectedFault(std::string message)
      : util::StorageError(std::move(message)) {}
};

/// One open file. Offsets are absolute; short writes are reported as errors
/// by implementations (there is no partial-success return for writes).
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Reads up to `n` bytes at `offset`; returns the number of bytes read
  /// (less than `n` only at end of file).
  virtual std::size_t read(std::uint64_t offset, void* buf, std::size_t n) = 0;

  /// Writes exactly `n` bytes at `offset` (extending the file as needed).
  virtual void write(std::uint64_t offset, const void* buf, std::size_t n) = 0;

  /// Flushes file content to stable storage (fsync).
  virtual void sync() = 0;

  /// Sets the file length to `size` bytes.
  virtual void truncate(std::uint64_t size) = 0;

  /// Current file length in bytes.
  virtual std::uint64_t size() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` read-write, creating it when `create` is set. Throws
  /// StorageError when the file cannot be opened.
  virtual std::unique_ptr<VfsFile> open(const std::string& path, bool create) = 0;

  virtual bool exists(const std::string& path) = 0;

  /// Removes `path`; missing files are not an error.
  virtual void remove(const std::string& path) = 0;
};

/// The real filesystem. Stateless; one shared instance serves the process.
class PosixVfs final : public Vfs {
 public:
  std::unique_ptr<VfsFile> open(const std::string& path, bool create) override;
  bool exists(const std::string& path) override;
  void remove(const std::string& path) override;

  /// Process-wide instance used when no explicit Vfs is supplied.
  static PosixVfs& instance();
};

/// What happens when the planned fault point is reached.
enum class FaultAction {
  Throw,  // throw InjectedFault (in-process crash simulation)
  Kill,   // raise(SIGKILL): a real crash, for the hot-journal CLI test
};

/// Deterministic fault plan: mutating operations (write/sync/truncate) are
/// numbered 1, 2, 3, ... across all files opened through this Vfs.
struct FaultPlan {
  /// 1-based index of the mutating operation that fails; 0 = never.
  std::uint64_t fail_at_op = 0;
  /// When the failing operation is a write, persist only a prefix of the
  /// buffer first (torn sector write) instead of nothing.
  bool torn_write = false;
  /// Bytes of the torn prefix that reach the disk (rounded down to whole
  /// sectors of 512 bytes; 0 = half the buffer).
  std::size_t torn_bytes = 0;
  /// 1-based index of the read that comes back short (0 = never); used to
  /// exercise open-time robustness against truncated files.
  std::uint64_t short_read_at = 0;
  FaultAction action = FaultAction::Throw;
};

/// Decorator: forwards to `base`, counting operations and firing the plan.
class FaultInjectingVfs final : public Vfs {
 public:
  explicit FaultInjectingVfs(Vfs& base) : base_(&base) {}

  std::unique_ptr<VfsFile> open(const std::string& path, bool create) override;
  bool exists(const std::string& path) override { return base_->exists(path); }
  void remove(const std::string& path) override;

  void setPlan(const FaultPlan& plan) { plan_ = plan; }
  const FaultPlan& plan() const { return plan_; }

  /// Mutating operations performed so far (the fault-point count of a
  /// fault-free run sizes the crash matrix).
  std::uint64_t mutatingOps() const { return mutating_ops_; }
  std::uint64_t reads() const { return reads_; }

  /// True once the planned fault has fired; every further mutating
  /// operation throws InjectedFault without touching the disk.
  bool crashed() const { return crashed_; }

  /// Resets counters and the crashed flag (the plan is kept).
  void reset() {
    mutating_ops_ = 0;
    reads_ = 0;
    crashed_ = false;
  }

 private:
  friend class FaultInjectingFile;

  /// Bumps the mutating-op counter; returns true when this operation is the
  /// one that must fail (caller applies any torn prefix, then calls
  /// fire()).
  bool countMutatingOp();
  [[noreturn]] void fire(const std::string& what);
  void checkCrashed(const std::string& what);

  Vfs* base_;
  FaultPlan plan_;
  std::uint64_t mutating_ops_ = 0;
  std::uint64_t reads_ = 0;
  bool crashed_ = false;
};

}  // namespace perftrack::minidb
