#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace perftrack::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{true};
}  // namespace detail

namespace {

std::string formatMs(double ms) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", ms);
  return buf;
}

}  // namespace

void setEnabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::array<std::uint64_t, Histogram::kBucketCount> Histogram::snapshot() const {
  std::array<std::uint64_t, kBucketCount> cum{};
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    running += counts_[i].load(std::memory_order_relaxed);
    cum[i] = running;
  }
  return cum;
}

double Histogram::percentile(double p) const {
  const auto cum = snapshot();
  const std::uint64_t total = cum.back();
  if (total == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the observation we are after (1-based, ceil).
  const double exact = p / 100.0 * static_cast<double>(total);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact || rank == 0) ++rank;

  std::size_t b = 0;
  while (b < kBucketCount && cum[b] < rank) ++b;
  if (b >= kBounds.size()) return kBounds.back();  // overflow bucket: clamp
  const double hi = kBounds[b];
  const double lo = b == 0 ? 0.0 : kBounds[b - 1];
  const std::uint64_t below = b == 0 ? 0 : cum[b - 1];
  const std::uint64_t in_bucket = cum[b] - below;
  if (in_bucket == 0) return hi;
  const double frac =
      static_cast<double>(rank - below) / static_cast<double>(in_bucket);
  return lo + (hi - lo) * frac;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: metrics outlive all users
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::string promEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Registry::renderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto cum = h->snapshot();
    out += "# TYPE " + name + " histogram\n";
    for (std::size_t i = 0; i < Histogram::kBounds.size(); ++i) {
      out += name + "_bucket{le=\"" + promEscapeLabel(formatMs(Histogram::kBounds[i])) +
             "\"} " + std::to_string(cum[i]) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cum.back()) + "\n";
    out += name + "_sum " + formatMs(h->sumMs()) + "\n";
    out += name + "_count " + std::to_string(cum.back()) + "\n";
    out += name + "_p50 " + formatMs(h->percentile(50)) + "\n";
    out += name + "_p95 " + formatMs(h->percentile(95)) + "\n";
    out += name + "_p99 " + formatMs(h->percentile(99)) + "\n";
  }
  return out;
}

void Registry::resetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

void writeSnapshotIfRequested() {
  const char* path = std::getenv("PT_METRICS_SNAPSHOT");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << Registry::global().renderPrometheus();
}

}  // namespace perftrack::obs
