// Zero-dependency observability: a lock-cheap metrics registry.
//
// Every layer of the stack (pager, plan cache, SQL pipeline, server)
// publishes monotonic counters, gauges, and fixed-bucket latency histograms
// into one process-wide Registry. The design splits the cost asymmetrically:
//
//   hot path   Counter::inc() / Histogram::observe() are relaxed atomic
//              adds on objects the instrumented code holds by pointer —
//              no lock, no lookup, no allocation;
//   cold path  Registry::counter(name) does a mutex-guarded map lookup
//              (called once per instrumentation site, at init) and
//              renderPrometheus() snapshots everything for the METRICS
//              verb and the ptserverd --metrics-port endpoint.
//
// Metric objects live as long as the process (the registry never erases),
// so cached pointers stay valid forever. Naming scheme (DESIGN.md §5.5):
// pt_<layer>_<what>[_total|_ms], e.g. pt_pager_journal_fsyncs_total.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace perftrack::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (open cursors, resident pages).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram (milliseconds). The bucket layout is
/// shared by every histogram so renderings are comparable; percentiles are
/// estimated by linear interpolation inside the covering bucket, which is
/// exact enough for p50/p95/p99 dashboards and costs no per-observation
/// memory.
class Histogram {
 public:
  /// Upper bounds (inclusive, ms) of the finite buckets; one overflow
  /// bucket catches everything above the last bound.
  static constexpr std::array<double, 14> kBounds = {
      0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
      500.0, 1000.0};
  static constexpr std::size_t kBucketCount = kBounds.size() + 1;

  void observe(double ms) {
    std::size_t b = 0;
    while (b < kBounds.size() && ms > kBounds[b]) ++b;
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    // Sum kept in integer nanoseconds so it stays a single atomic add.
    const double ns = ms < 0 ? 0 : ms * 1e6;
    sum_ns_.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  double sumMs() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6;
  }

  /// Estimated percentile in ms; `p` in (0, 100]. Returns 0 when empty.
  double percentile(double p) const;

  /// Cumulative count of observations <= kBounds[i] (last entry = total).
  std::array<std::uint64_t, kBucketCount> snapshot() const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Named metric directory. Lookup is mutex-guarded (cold path only);
/// returned references are stable for the life of the process.
class Registry {
 public:
  /// The process-wide registry every subsystem publishes into.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Prometheus text exposition (0.0.4): `# TYPE` comments, counter/gauge
  /// sample lines, `_bucket{le=...}` / `_sum` / `_count` per histogram plus
  /// `_p50/_p95/_p99` convenience gauges.
  std::string renderPrometheus() const;

  /// Zeroes every registered metric (bench A/B phases, tests). Does not
  /// drop registrations, so cached pointers stay valid.
  void resetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Global kill switch for the *tracing* hot path (per-query clock reads and
/// ring-buffer records). Counters stay live — a relaxed add is cheaper than
/// the branch that would skip it. bench_obs toggles this to measure the
/// instrumentation overhead.
void setEnabled(bool on);

namespace detail {
/// Storage for the kill switch; read it through obs::enabled().
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Inline so the once-per-query gate is one relaxed load, not a call.
inline bool enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Escapes a label value for the text exposition (0.0.4): backslash,
/// double-quote, and newline become \\, \", and \n. Used for the histogram
/// `le` labels and by anything that renders user-provided label values.
std::string promEscapeLabel(std::string_view value);

/// Writes renderPrometheus() of the global registry to the path named by
/// the PT_METRICS_SNAPSHOT environment variable (no-op when unset). Bench
/// binaries call this on exit so every BENCH_*.json gets a metrics sidecar.
void writeSnapshotIfRequested();

}  // namespace perftrack::obs
