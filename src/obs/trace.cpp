#include "obs/trace.h"

#include <cstdio>
#include <ctime>
#include <iostream>

namespace perftrack::obs {

namespace {

/// Milliseconds from a low-resolution monotonic clock. The sampling gate
/// runs once per query, so it uses CLOCK_MONOTONIC_COARSE where available
/// (a vDSO read of the kernel's tick timestamp, ~5ns) instead of the full
/// steady_clock (~20ns). Tick resolution (1-4ms) is exactly the sampling
/// window we want.
std::uint64_t coarseTickMillis() {
#if defined(__linux__) && defined(CLOCK_MONOTONIC_COARSE)
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC_COARSE, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::string formatUs(std::uint64_t us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1000.0);
  return buf;
}

void pushRing(std::vector<QueryTrace>& ring, std::size_t& next, std::size_t cap,
              const QueryTrace& t) {
  if (ring.size() < cap) {
    ring.push_back(t);
    next = ring.size() % cap;
  } else {
    ring[next] = t;
    next = (next + 1) % cap;
  }
}

/// Ring contents oldest-to-newest: [next, end) then [0, next) once full.
std::vector<QueryTrace> snapshotRing(const std::vector<QueryTrace>& ring,
                                     std::size_t next, std::size_t cap) {
  std::vector<QueryTrace> out;
  out.reserve(ring.size());
  if (ring.size() < cap) {
    out = ring;
  } else {
    out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(next),
               ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() + static_cast<std::ptrdiff_t>(next));
  }
  return out;
}

}  // namespace

std::string QueryTrace::toLine() const {
  std::string line = "#" + std::to_string(seq) + (remote ? " [remote] " : " ") +
                     "parse=" + formatUs(parse_us) + " plan=" + formatUs(plan_us) +
                     " bind=" + formatUs(bind_us) + " execute=" + formatUs(exec_us) +
                     " rows=" + std::to_string(rows) +
                     " bytes=" + std::to_string(bytes) + " sql=" + sql;
  return line;
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // leaked: traces outlive all users
  return *t;
}

bool Tracer::tickSample() {
  const std::uint64_t tick = coarseTickMillis();
  if (last_sample_tick_.load(std::memory_order_relaxed) == tick) return false;
  // Plain store, not CAS: two threads racing the same tick both sample,
  // which only means one extra trace.
  last_sample_tick_.store(tick, std::memory_order_relaxed);
  return true;
}

void Tracer::record(QueryTrace t) {
  if (!enabled()) return;
  if (t.sql.size() > kMaxSqlBytes) {
    t.sql.resize(kMaxSqlBytes - 3);
    t.sql += "...";
  }
  const std::uint64_t threshold = slow_threshold_us_.load(std::memory_order_relaxed);
  const bool is_slow = threshold > 0 && t.totalUs() >= threshold;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.seq = next_seq_++;
    pushRing(ring_, ring_next_, kRingCapacity, t);
    if (is_slow) pushRing(slow_ring_, slow_next_, kSlowRingCapacity, t);
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (is_slow) {
    Registry::global().counter("pt_trace_slow_queries_total").inc();
    // The slow-query log proper: one line per offender, greppable.
    std::cerr << "[slow-query] " << t.toLine() << "\n";
  }
}

std::vector<QueryTrace> Tracer::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshotRing(ring_, ring_next_, kRingCapacity);
}

std::vector<QueryTrace> Tracer::slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshotRing(slow_ring_, slow_next_, kSlowRingCapacity);
}

std::optional<QueryTrace> Tracer::last() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return std::nullopt;
  const std::size_t newest =
      ring_.size() < kRingCapacity ? ring_.size() - 1
                                   : (ring_next_ + kRingCapacity - 1) % kRingCapacity;
  return ring_[newest];
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  slow_ring_.clear();
  slow_next_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  last_sample_tick_.store(0, std::memory_order_relaxed);
}

std::string renderTraces(const Tracer& tracer) {
  std::string out;
  out += "== recent queries (oldest first) ==\n";
  for (const QueryTrace& t : tracer.recent()) out += t.toLine() + "\n";
  const auto slow = tracer.slow();
  out += "== slow queries (threshold " +
         std::to_string(tracer.slowQueryMillis()) + "ms, oldest first) ==\n";
  for (const QueryTrace& t : slow) out += t.toLine() + "\n";
  return out;
}

}  // namespace perftrack::obs
