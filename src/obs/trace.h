// Zero-dependency observability: the scoped-span query tracer.
//
// Every executed statement — local cursor, DML, or remote round trip —
// records one QueryTrace with its per-stage timings (parse, plan, bind,
// execute) and its streamed row/byte counts. Traces land in a bounded ring
// buffer (newest wins); traces slower than the configured threshold are
// additionally kept in a slow-query ring and logged to stderr, which is the
// `--slow-query-ms` surface of ptserverd.
//
// Recording is gated twice. obs::enabled() is the kill switch: off means a
// single relaxed atomic load and no clock reads. On top of that,
// shouldSample() rate-limits full span capture to one query per coarse
// clock tick (~1-4ms), so a hot loop pays only a coarse clock read per
// query while interactive workloads remain fully traced. Setting a
// slow-query threshold (ptserverd --slow-query-ms) disables sampling —
// classifying a query as slow requires timing every one.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace perftrack::obs {

/// One statement execution, stage by stage. All times in microseconds;
/// stages that did not run this execution (cached plan, no parameters)
/// report 0.
struct QueryTrace {
  std::uint64_t seq = 0;  // monotonic id, assigned by the tracer
  std::string sql;        // truncated to kMaxSqlBytes
  std::uint64_t parse_us = 0;
  std::uint64_t plan_us = 0;
  std::uint64_t bind_us = 0;
  std::uint64_t exec_us = 0;  // open-to-exhaustion, includes streaming
  std::uint64_t rows = 0;     // rows streamed to the consumer
  std::uint64_t bytes = 0;    // approximate payload bytes streamed
  bool remote = false;        // recorded by the client side of a pt:// run

  std::uint64_t totalUs() const { return parse_us + plan_us + bind_us + exec_us; }
  /// One-line rendering used by the trace dump and ptquery --timing.
  std::string toLine() const;
};

/// Steady-clock stopwatch for one stage; microseconds.
class StageTimer {
 public:
  StageTimer() : start_(std::chrono::steady_clock::now()) {}
  std::uint64_t elapsedUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 256;
  static constexpr std::size_t kSlowRingCapacity = 64;
  static constexpr std::size_t kMaxSqlBytes = 200;

  static Tracer& global();

  /// Records one trace (assigns seq, truncates sql, classifies slow).
  /// No-op while obs::enabled() is false.
  void record(QueryTrace t);

  /// Should this query capture a full span? Instrumentation sites call this
  /// once per execution, before arming any stage timers. Returns true for at
  /// most one query per coarse clock tick — unless a slow-query threshold or
  /// setAlwaysSample() is in force, which both mean "time everything".
  /// False whenever obs::enabled() is false. Inline: on the skip path this
  /// is three relaxed loads and one coarse clock read.
  bool shouldSample() {
    if (!enabled()) return false;
    if (always_sample_.load(std::memory_order_relaxed)) return true;
    // --slow-query-ms means every statement must be timed: a slow offender
    // inside a skipped window would otherwise never be classified.
    if (slow_threshold_us_.load(std::memory_order_relaxed) > 0) return true;
    return tickSample();
  }

  /// Defeats the rate limiter (ptquery --timing, tests that assert on
  /// specific statements appearing in the ring).
  void setAlwaysSample(bool on) {
    always_sample_.store(on, std::memory_order_relaxed);
  }

  /// Oldest-to-newest snapshot of the recent ring.
  std::vector<QueryTrace> recent() const;
  /// Oldest-to-newest snapshot of the slow-query ring.
  std::vector<QueryTrace> slow() const;
  /// The most recently recorded trace, if any.
  std::optional<QueryTrace> last() const;

  /// Total traces recorded since start (or clear()).
  std::uint64_t recordedCount() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Statements with totalUs >= threshold go to the slow ring and stderr.
  /// 0 disables slow-query capture (the default).
  void setSlowQueryMillis(std::uint64_t ms) {
    slow_threshold_us_.store(ms * 1000, std::memory_order_relaxed);
  }
  std::uint64_t slowQueryMillis() const {
    return slow_threshold_us_.load(std::memory_order_relaxed) / 1000;
  }

  void clear();

 private:
  /// Rate-limiter tail of shouldSample(): true once per coarse clock tick.
  bool tickSample();

  mutable std::mutex mu_;
  std::vector<QueryTrace> ring_;       // ring of the last kRingCapacity traces
  std::size_t ring_next_ = 0;
  std::vector<QueryTrace> slow_ring_;  // ring of the last kSlowRingCapacity slow ones
  std::size_t slow_next_ = 0;
  std::uint64_t next_seq_ = 1;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> slow_threshold_us_{0};
  std::atomic<bool> always_sample_{false};
  std::atomic<std::uint64_t> last_sample_tick_{0};  // coarse ms of last sample
};

/// Text dump of the recent and slow rings (the /traces endpoint body).
std::string renderTraces(const Tracer& tracer);

}  // namespace perftrack::obs
