#include "ptdf/export.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/typesystem.h"
#include "minidb/sql/row_batch.h"
#include "util/strings.h"

namespace perftrack::ptdf {

namespace {

/// Type paths loaded by PTDataStore::initialize(); re-exporting them is
/// harmless but noisy, so they are skipped.
const std::set<std::string>& baseTypePaths() {
  static const std::set<std::string> kBase = [] {
    std::set<std::string> base;
    for (const std::string& path : core::baseHierarchicalTypes()) {
      const auto segments = core::splitTypePath(path);
      std::string prefix;
      for (const std::string& segment : segments) {
        if (!prefix.empty()) prefix.push_back('/');
        prefix.append(segment);
        base.insert(prefix);
      }
    }
    for (const std::string& path : core::baseSingleLevelTypes()) base.insert(path);
    return base;
  }();
  return kBase;
}

/// Emits one resource with its string attributes. Resource-typed attributes
/// are skipped here; they re-emerge from the constraint table.
void emitResource(core::PTDataStore& store, Writer& writer,
                  const core::ResourceInfo& info, ExportStats& stats) {
  writer.resource(info.full_name, info.type_path);
  ++stats.resources;
  for (const core::AttributeInfo& attr : store.attributesOf(info.id)) {
    if (attr.attr_type == "resource") continue;
    writer.resourceAttribute(info.full_name, attr.name, attr.value, attr.attr_type);
    ++stats.attributes;
  }
}

void emitConstraints(core::PTDataStore& store, Writer& writer,
                     const core::ResourceInfo& info, ExportStats& stats) {
  for (core::ResourceId other : store.constraintsOf(info.id)) {
    writer.resourceConstraint(info.full_name, store.resourceInfo(other).full_name);
    ++stats.constraints;
  }
}

/// Emits every performance result of one execution, reconstructing the
/// resource sets with their focus types.
void emitResults(core::PTDataStore& store, const std::string& exec_name, Writer& writer,
                 ExportStats& stats) {
  dbal::Connection& conn = store.connection();
  for (std::int64_t id : store.resultsForExecution(exec_name)) {
    const core::PerfResultRecord rec = store.getResult(id);
    // Rebuild the sets with focus types straight from the schema. The focus
    // and member scans are two interleaved read-only cursors on the same
    // connection; the statement cache hands the inner loop its own statement.
    auto foci = conn.query(
        "SELECT focus_id FROM performance_result_has_focus WHERE result_id = ?",
        {minidb::Value(id)});
    std::vector<core::ResourceSetSpec> sets;
    minidb::sql::RowBatch focus_batch;
    while (foci.fetchBatch(focus_batch)) {
      for (const std::uint32_t f : focus_batch.sel) {
        const std::int64_t focus_id = focus_batch.cols[0][f].asInt();
        auto members = conn.query(
            "SELECT resource_id, focus_type FROM focus_has_resource WHERE focus_id = ?",
            {minidb::Value(focus_id)});
        core::ResourceSetSpec spec;
        minidb::sql::RowBatch member_batch;
        while (members.fetchBatch(member_batch)) {
          for (const std::uint32_t m : member_batch.sel) {
            spec.resource_names.push_back(
                store.resourceInfo(member_batch.cols[0][m].asInt()).full_name);
            spec.set_type = core::focusTypeFromName(member_batch.cols[1][m].asText());
          }
        }
        if (!spec.resource_names.empty()) sets.push_back(std::move(spec));
      }
    }
    if (const auto hist = store.getHistogram(id)) {
      // Complex result: re-expand the sparse bins into the full vector with
      // NaN holes so the PerfHistogram record round-trips exactly.
      std::vector<double> bins(static_cast<std::size_t>(hist->num_bins),
                               std::numeric_limits<double>::quiet_NaN());
      for (const auto& [bin, value] : hist->bins) {
        bins.at(static_cast<std::size_t>(bin)) = value;
      }
      writer.perfHistogram(exec_name, sets, rec.tool, rec.metric, hist->bin_width,
                           rec.units, bins);
    } else {
      writer.perfResult(exec_name, sets, rec.tool, rec.metric, rec.value, rec.units,
                        rec.start_time, rec.end_time);
    }
    ++stats.perf_results;
  }
}

}  // namespace

ExportStats exportStore(core::PTDataStore& store, Writer& writer) {
  ExportStats stats;
  dbal::Connection& conn = store.connection();
  writer.comment("PTdf export: full store");

  for (const std::string& type : store.resourceTypes()) {
    if (baseTypePaths().contains(type)) continue;
    writer.resourceType(type);
    ++stats.resource_types;
  }

  // Executions (and their applications) before resources so PerfResults can
  // always resolve.
  {
    auto execs = conn.query(
        "SELECT e.name, a.name FROM execution e JOIN application a "
        "ON e.application_id = a.id ORDER BY e.id");
    minidb::sql::RowBatch batch;
    while (execs.fetchBatch(batch)) {
      for (const std::uint32_t i : batch.sel) {
        writer.application(batch.cols[1][i].asText());
        writer.execution(batch.cols[0][i].asText(), batch.cols[1][i].asText());
        ++stats.executions;
      }
    }
  }

  // Resources in id order: parents were created before children, so a
  // straight replay always finds ancestors in place. Two streaming passes
  // over the resource table instead of one materialized list: the exporter's
  // footprint stays flat in the store size (BENCH_cursor.json measures this).
  {
    auto resources = conn.query("SELECT r.id FROM resource_item r ORDER BY r.id");
    minidb::sql::RowBatch batch;
    while (resources.fetchBatch(batch)) {
      for (const std::uint32_t i : batch.sel) {
        emitResource(store, writer, store.resourceInfo(batch.cols[0][i].asInt()),
                     stats);
      }
    }
  }
  {
    auto resources = conn.query("SELECT r.id FROM resource_item r ORDER BY r.id");
    minidb::sql::RowBatch batch;
    while (resources.fetchBatch(batch)) {
      for (const std::uint32_t i : batch.sel) {
        emitConstraints(store, writer, store.resourceInfo(batch.cols[0][i].asInt()),
                        stats);
      }
    }
  }

  for (const std::string& exec : store.executions()) {
    emitResults(store, exec, writer, stats);
  }
  return stats;
}

ExportStats exportExecution(core::PTDataStore& store, const std::string& exec_name,
                            Writer& writer) {
  ExportStats stats;
  writer.comment("PTdf export: execution " + exec_name);

  // Collect the resource closure the execution's results reference:
  // context members plus all their ancestors (so paths re-create cleanly).
  std::set<core::ResourceId> needed;
  for (std::int64_t id : store.resultsForExecution(exec_name)) {
    const core::PerfResultRecord rec = store.getResult(id);
    for (const auto& context : rec.contexts) {
      for (core::ResourceId rid : context) {
        if (!needed.insert(rid).second) continue;
        for (core::ResourceId anc : store.ancestorsOf(rid)) needed.insert(anc);
      }
    }
  }
  std::vector<core::ResourceInfo> infos;
  infos.reserve(needed.size());
  for (core::ResourceId rid : needed) infos.push_back(store.resourceInfo(rid));
  // Parents first (ids ascend along every path).
  std::sort(infos.begin(), infos.end(),
            [](const core::ResourceInfo& a, const core::ResourceInfo& b) {
              return a.id < b.id;
            });

  // Non-base types used by the closure.
  std::set<std::string> types;
  for (const core::ResourceInfo& info : infos) types.insert(info.type_path);
  for (const std::string& type : types) {
    if (baseTypePaths().contains(type)) continue;
    writer.resourceType(type);
    ++stats.resource_types;
  }

  const auto ids = store.resultsForExecution(exec_name);
  if (!ids.empty()) {
    const std::string app = store.getResult(ids.front()).application;
    writer.application(app);
    writer.execution(exec_name, app);
    ++stats.executions;
  }
  for (const core::ResourceInfo& info : infos) emitResource(store, writer, info, stats);
  emitResults(store, exec_name, writer, stats);
  return stats;
}

}  // namespace perftrack::ptdf
