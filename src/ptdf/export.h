// PTdf export: dump an entire data store (or one execution) back to PTdf.
//
// PTdf is PerfTrack's interchange format; the paper's motivation is sharing
// performance data between "geographically separate data stores" without
// shipping "entire data sets". Export closes that loop: any store can be
// serialized to PTdf and loaded into another store (merging by the unique
// full resource names), and a single execution can be extracted for
// fine-grained exchange.
#pragma once

#include <string>

#include "core/datastore.h"
#include "ptdf/ptdf.h"

namespace perftrack::ptdf {

struct ExportStats {
  std::size_t resource_types = 0;
  std::size_t resources = 0;
  std::size_t attributes = 0;
  std::size_t constraints = 0;
  std::size_t executions = 0;
  std::size_t perf_results = 0;
};

/// Writes every non-base resource type, every resource (parents before
/// children) with its attributes and constraints, every execution, and
/// every performance result with its full context(s).
ExportStats exportStore(core::PTDataStore& store, Writer& writer);

/// Exports one execution: its results, the resources those results
/// reference (with their attributes), and the execution record itself —
/// the "only a small subset of the transferred data is actually needed"
/// exchange granularity from the paper's introduction.
ExportStats exportExecution(core::PTDataStore& store, const std::string& exec_name,
                            Writer& writer);

}  // namespace perftrack::ptdf
