#include "ptdf/ptdf.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::ptdf {

using util::ParseError;

std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= n) break;
    std::string field;
    if (line[i] == '"') {
      ++i;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {
            field.push_back('"');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          field.push_back(line[i]);
          ++i;
        }
      }
      if (!closed) throw ParseError("unterminated quoted field");
    } else {
      while (i < n && !std::isspace(static_cast<unsigned char>(line[i]))) {
        field.push_back(line[i]);
        ++i;
      }
    }
    out.push_back(std::move(field));
  }
  return out;
}

std::string quoteField(const std::string& field) {
  const bool needs_quotes =
      field.empty() ||
      field.find_first_of(" \t\"") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<core::ResourceSetSpec> parseResourceSets(const std::string& text) {
  std::vector<core::ResourceSetSpec> out;
  for (const std::string& part : util::split(text, ':')) {
    if (part.empty()) throw ParseError("empty resource set in '" + text + "'");
    const auto open = part.rfind('(');
    if (open == std::string::npos || part.back() != ')') {
      throw ParseError("resource set missing (type): '" + part + "'");
    }
    core::ResourceSetSpec spec;
    spec.set_type = core::focusTypeFromName(part.substr(open + 1, part.size() - open - 2));
    const std::string names = part.substr(0, open);
    for (const std::string& name : util::split(names, ',')) {
      if (name.empty()) throw ParseError("empty resource name in set '" + part + "'");
      spec.resource_names.push_back(name);
    }
    if (spec.resource_names.empty()) {
      throw ParseError("resource set with no resources: '" + part + "'");
    }
    out.push_back(std::move(spec));
  }
  if (out.empty()) throw ParseError("empty resource set expression");
  return out;
}

std::string formatResourceSets(const std::vector<core::ResourceSetSpec>& sets) {
  std::string out;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (i) out.push_back(':');
    out += util::join(sets[i].resource_names, ",");
    out.push_back('(');
    out += std::string(core::focusTypeName(sets[i].set_type));
    out.push_back(')');
  }
  return out;
}

LoadStats load(core::PTDataStore& store, std::istream& in) {
  LoadStats stats;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ++stats.lines;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields;
    try {
      fields = splitFields(line);
    } catch (const ParseError& e) {
      throw ParseError(e.what(), line_no);
    }
    const std::string& kind = fields[0];
    auto need = [&](std::size_t min_fields, std::size_t max_fields) {
      if (fields.size() < min_fields || fields.size() > max_fields) {
        throw ParseError(kind + " record has " + std::to_string(fields.size() - 1) +
                             " fields",
                         line_no);
      }
    };
    try {
      if (kind == "Application") {
        need(2, 2);
        store.addApplication(fields[1]);
        ++stats.applications;
      } else if (kind == "ResourceType") {
        need(2, 2);
        store.addResourceType(fields[1]);
        ++stats.resource_types;
      } else if (kind == "Execution") {
        need(3, 3);
        store.addExecution(fields[1], fields[2]);
        ++stats.executions;
      } else if (kind == "Resource") {
        need(3, 4);  // optional execName (paper Figure 6 lists both forms)
        store.addResource(fields[1], fields[2]);
        ++stats.resources;
      } else if (kind == "ResourceAttribute") {
        need(5, 5);
        if (fields[4] == "resource") {
          // Equivalent to a ResourceConstraint per the paper.
          store.addResourceConstraint(fields[1], fields[3]);
          ++stats.constraints;
        } else if (fields[4] == "string") {
          store.addResourceAttribute(fields[1], fields[2], fields[3], fields[4]);
          ++stats.attributes;
        } else {
          throw ParseError("unknown attributeType '" + fields[4] + "'", line_no);
        }
      } else if (kind == "PerfResult") {
        need(7, 9);
        const auto value = util::parseReal(fields[5]);
        if (!value) throw ParseError("bad PerfResult value '" + fields[5] + "'", line_no);
        double start = -1.0;
        double end = -1.0;
        if (fields.size() >= 8) {
          const auto s = util::parseReal(fields[7]);
          if (!s) throw ParseError("bad start time '" + fields[7] + "'", line_no);
          start = *s;
        }
        if (fields.size() >= 9) {
          const auto e = util::parseReal(fields[8]);
          if (!e) throw ParseError("bad end time '" + fields[8] + "'", line_no);
          end = *e;
        }
        store.addPerformanceResult(fields[1], parseResourceSets(fields[2]), fields[3],
                                   fields[4], *value, fields[6], start, end);
        ++stats.perf_results;
      } else if (kind == "ResourceConstraint") {
        need(3, 3);
        store.addResourceConstraint(fields[1], fields[2]);
        ++stats.constraints;
      } else if (kind == "PerfHistogram") {
        need(8, 8);
        const auto bin_width = util::parseReal(fields[5]);
        if (!bin_width || *bin_width <= 0.0) {
          throw ParseError("bad PerfHistogram bin width '" + fields[5] + "'", line_no);
        }
        std::vector<double> bins;
        for (const std::string& cell : util::split(fields[7], ',')) {
          if (cell == "nan") {
            bins.push_back(std::numeric_limits<double>::quiet_NaN());
          } else {
            const auto v = util::parseReal(cell);
            if (!v) throw ParseError("bad histogram bin '" + cell + "'", line_no);
            bins.push_back(*v);
          }
        }
        store.addHistogramResult(fields[1], parseResourceSets(fields[2]), fields[3],
                                 fields[4], bins, *bin_width, fields[6]);
        ++stats.histograms;
        ++stats.perf_results;
      } else {
        throw ParseError("unknown PTdf record '" + kind + "'", line_no);
      }
    } catch (const ParseError&) {
      throw;
    } catch (const util::PTError& e) {
      throw ParseError(e.what(), line_no);
    }
    ++stats.records;
  }
  return stats;
}

LoadStats loadFile(core::PTDataStore& store, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::PTError("cannot open PTdf file: " + path);
  return load(store, in);
}

void Writer::emit(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_->put(' ');
    (*out_) << quoteField(fields[i]);
  }
  out_->put('\n');
  ++lines_;
}

void Writer::application(const std::string& name) { emit({"Application", name}); }

void Writer::resourceType(const std::string& type_path) {
  emit({"ResourceType", type_path});
}

void Writer::execution(const std::string& exec_name, const std::string& app_name) {
  emit({"Execution", exec_name, app_name});
}

void Writer::resource(const std::string& full_name, const std::string& type_path,
                      const std::string& exec_name) {
  if (exec_name.empty()) {
    emit({"Resource", full_name, type_path});
  } else {
    emit({"Resource", full_name, type_path, exec_name});
  }
}

void Writer::resourceAttribute(const std::string& resource, const std::string& attr,
                               const std::string& value, const std::string& attr_type) {
  emit({"ResourceAttribute", resource, attr, value, attr_type});
}

void Writer::perfResult(const std::string& exec_name,
                        const std::vector<core::ResourceSetSpec>& sets,
                        const std::string& tool, const std::string& metric, double value,
                        const std::string& units, double start_time, double end_time) {
  std::vector<std::string> fields = {"PerfResult",
                                     exec_name,
                                     formatResourceSets(sets),
                                     tool,
                                     metric,
                                     util::formatReal(value),
                                     units};
  if (start_time >= 0.0 || end_time >= 0.0) {
    fields.push_back(util::formatReal(start_time));
    fields.push_back(util::formatReal(end_time));
  }
  emit(fields);
}

void Writer::resourceConstraint(const std::string& r1, const std::string& r2) {
  emit({"ResourceConstraint", r1, r2});
}

void Writer::perfHistogram(const std::string& exec_name,
                           const std::vector<core::ResourceSetSpec>& sets,
                           const std::string& tool, const std::string& metric,
                           double bin_width, const std::string& units,
                           const std::vector<double>& bins) {
  std::string cells;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (i) cells.push_back(',');
    cells += std::isnan(bins[i]) ? "nan" : util::formatReal(bins[i]);
  }
  emit({"PerfHistogram", exec_name, formatResourceSets(sets), tool, metric,
        util::formatReal(bin_width), units, cells});
}

void Writer::comment(const std::string& text) {
  (*out_) << "# " << text << '\n';
  ++lines_;
}

}  // namespace perftrack::ptdf
