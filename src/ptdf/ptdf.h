// PerfTrack data format (PTdf) — the loading interface of paper Figure 6.
//
// PTdf is a line-oriented text format; each line is one record:
//   Application         appName
//   ResourceType        resourceTypeName
//   Execution           execName appName
//   Resource            resourceName resourceTypeName [execName]
//   ResourceAttribute   resourceName attributeName attributeValue attributeType
//   PerfResult          execName resourceSet perfToolName metricName value units
//                       [startTime endTime]
//   ResourceConstraint  resourceName1 resourceName2
//   PerfHistogram       execName resourceSet perfToolName metricName binWidth
//                       units binsCSV
//
// PerfHistogram is this implementation's extension for the paper's §6
// "complex performance results": one record carries a whole time series
// (binsCSV = comma-separated values, "nan" for unrecorded bins) instead of
// one PerfResult per bin.
//
// A resourceSet is "one or more lists of resource names separated by a
// colon; each list consists of a comma separated list of resource names
// followed by a resource set type name in parentheses", e.g.
//   /run1/p0,/build/main.c/foo(primary):/run1/p4(sender)
//
// Fields are whitespace-separated; fields containing whitespace are
// double-quoted with '""' escaping. '#' begins a comment line. attributeType
// is 'string' or 'resource' (the latter is equivalent to a
// ResourceConstraint, per the paper).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/datastore.h"

namespace perftrack::ptdf {

/// Splits one PTdf line into fields, honoring double quotes.
std::vector<std::string> splitFields(const std::string& line);

/// Quotes a field for writing when it contains whitespace or quotes.
std::string quoteField(const std::string& field);

/// Parses a resourceSet expression into resource-set specs.
std::vector<core::ResourceSetSpec> parseResourceSets(const std::string& text);

/// Renders resource sets back to the PTdf expression.
std::string formatResourceSets(const std::vector<core::ResourceSetSpec>& sets);

/// Statistics from one load.
struct LoadStats {
  std::size_t lines = 0;  // total lines read (incl. comments/blank)
  std::size_t records = 0;
  std::size_t applications = 0;
  std::size_t resource_types = 0;
  std::size_t executions = 0;
  std::size_t resources = 0;
  std::size_t attributes = 0;
  std::size_t constraints = 0;
  std::size_t perf_results = 0;
  std::size_t histograms = 0;
};

/// Streams PTdf records into a data store. Throws util::ParseError with the
/// offending line number on malformed input.
LoadStats load(core::PTDataStore& store, std::istream& in);

/// Loads one PTdf file from disk.
LoadStats loadFile(core::PTDataStore& store, const std::string& path);

/// Emits PTdf records. Each method writes one line.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(&out) {}

  void application(const std::string& name);
  void resourceType(const std::string& type_path);
  void execution(const std::string& exec_name, const std::string& app_name);
  void resource(const std::string& full_name, const std::string& type_path,
                const std::string& exec_name = "");
  void resourceAttribute(const std::string& resource, const std::string& attr,
                         const std::string& value, const std::string& attr_type = "string");
  void perfResult(const std::string& exec_name,
                  const std::vector<core::ResourceSetSpec>& sets,
                  const std::string& tool, const std::string& metric, double value,
                  const std::string& units, double start_time = -1.0,
                  double end_time = -1.0);
  void resourceConstraint(const std::string& r1, const std::string& r2);
  void perfHistogram(const std::string& exec_name,
                     const std::vector<core::ResourceSetSpec>& sets,
                     const std::string& tool, const std::string& metric,
                     double bin_width, const std::string& units,
                     const std::vector<double>& bins);  // NaN = unrecorded
  void comment(const std::string& text);

  std::size_t linesWritten() const { return lines_; }

 private:
  void emit(const std::vector<std::string>& fields);

  std::ostream* out_;
  std::size_t lines_ = 0;
};

}  // namespace perftrack::ptdf
