#include "server/dbgate.h"

namespace perftrack::server {

bool DbGate::lockShared(std::chrono::milliseconds timeout, bool bypass_writer_queue) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto ready = [&] {
    if (writer_) return false;
    // Writer preference: park new readers behind queued writers unless the
    // caller's session already holds a cursor open (deadlock escape).
    if (writers_waiting_ > 0 && !bypass_writer_queue) return false;
    return true;
  };
  if (!cv_.wait_for(lock, timeout, ready)) return false;
  ++readers_;
  return true;
}

void DbGate::unlockShared() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --readers_;
  }
  cv_.notify_all();
}

bool DbGate::lockWrite(std::chrono::milliseconds timeout) {
  // Legacy (journal) mode: every mutation is an exclusive hold, exactly the
  // pre-WAL behavior.
  if (!snapshot_reads_) return lockExclusive(timeout);
  std::unique_lock<std::mutex> lock(mu_);
  // Writer-writer mutual exclusion only; readers stream their snapshots
  // underneath. Park behind queued exclusive (schema) holds so a steady DML
  // load cannot starve DDL.
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    return !writer_ && !dml_writer_ && writers_waiting_ == 0;
  });
  if (!ok) return false;
  dml_writer_ = true;
  return true;
}

void DbGate::unlockWrite() {
  if (!snapshot_reads_) {
    unlockExclusive();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    dml_writer_ = false;
  }
  cv_.notify_all();
}

bool DbGate::lockExclusive(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  ++writers_waiting_;
  const bool ok = cv_.wait_for(
      lock, timeout, [&] { return !writer_ && !dml_writer_ && readers_ == 0; });
  --writers_waiting_;
  if (!ok) {
    lock.unlock();
    // Our departure may unblock readers parked behind the writer queue.
    cv_.notify_all();
    return false;
  }
  writer_ = true;
  return true;
}

void DbGate::unlockExclusive() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_ = false;
  }
  cv_.notify_all();
}

}  // namespace perftrack::server
