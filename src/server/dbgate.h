// ptserverd concurrency gate.
//
// One minidb Database is single-writer / multi-reader safe only by
// convention: the read paths (catalog lookups, heap/B+-tree scans, the
// Volcano pipeline) never mutate shared state, while DML/DDL/VACUUM rewrite
// pages in place. DbGate turns that convention into a runtime guarantee: a
// reader/writer gate that every server request passes through.
//
// It differs from std::shared_mutex in three server-specific ways:
//   * Acquisition takes a timeout. A writer that cannot start because
//     cursors are pinned open (or a reader blocked behind a queued writer)
//     gets `false` back, which the session layer turns into a clean BUSY
//     error frame instead of a wedged worker thread.
//   * Read holds are not tied to a thread. An open server-side cursor keeps
//     a read hold for its whole lifetime — across many FETCH requests
//     serviced by different pool workers — and releases it from whichever
//     thread closes or exhausts the cursor. (std::shared_mutex makes that
//     undefined behavior.)
//   * Writer preference with a re-entrancy escape hatch. Once a writer is
//     queued, new readers wait (no writer starvation under a steady SELECT
//     load) — except readers from a session that already holds a cursor
//     open, which may bypass the queue: blocking them could deadlock the
//     session against the writer that is waiting for its own cursor to
//     close (the cursor-pin interaction documented in DESIGN.md §5.4).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace perftrack::server {

class DbGate {
 public:
  /// Configures snapshot-read mode. Set once at server start, before any
  /// worker thread exists (the thread-creation fence publishes it).
  ///
  /// Off (journal durability, the default): the classic two-tier gate —
  /// lockWrite() delegates to the exclusive hold, so every mutation drains
  /// every reader.
  ///
  /// On (WAL durability): readers run under pinned storage snapshots, so a
  /// concurrent DML writer cannot disturb them. Shared holds then conflict
  /// only with exclusive (schema) holds, and lockWrite() provides
  /// writer-writer mutual exclusion without draining readers — SELECTs
  /// stream while commits land.
  void setSnapshotReads(bool on) { snapshot_reads_ = on; }
  bool snapshotReads() const { return snapshot_reads_; }

  /// Acquires one shared (read) hold. `bypass_writer_queue` is set by
  /// sessions that already hold at least one read hold (see above).
  /// Returns false on timeout.
  bool lockShared(std::chrono::milliseconds timeout, bool bypass_writer_queue);

  /// Releases one shared hold; callable from any thread.
  void unlockShared();

  /// Acquires the DML-writer hold. In snapshot mode this excludes only
  /// other writers (exclusive holds included) — readers keep streaming; in
  /// legacy mode it is exactly lockExclusive(). Returns false on timeout.
  bool lockWrite(std::chrono::milliseconds timeout);

  void unlockWrite();

  /// Acquires the exclusive (schema) hold: waits for every read hold —
  /// including cursor-lifetime holds — and any DML writer to drain.
  /// Returns false on timeout.
  bool lockExclusive(std::chrono::milliseconds timeout);

  void unlockExclusive();

  /// RAII wrapper for request-scoped holds. Cursor-lifetime holds are
  /// managed manually by the session (they outlive the request).
  class SharedHold {
   public:
    SharedHold() = default;
    SharedHold(DbGate& gate, std::chrono::milliseconds timeout, bool bypass)
        : gate_(gate.lockShared(timeout, bypass) ? &gate : nullptr) {}
    SharedHold(SharedHold&& o) noexcept : gate_(o.gate_) { o.gate_ = nullptr; }
    SharedHold& operator=(SharedHold&& o) noexcept {
      if (this != &o) {
        release();
        gate_ = o.gate_;
        o.gate_ = nullptr;
      }
      return *this;
    }
    SharedHold(const SharedHold&) = delete;
    SharedHold& operator=(const SharedHold&) = delete;
    ~SharedHold() { release(); }

    bool held() const { return gate_ != nullptr; }
    /// Transfers ownership to a manually managed hold (cursor lifetime).
    void forget() { gate_ = nullptr; }
    void release() {
      if (gate_ != nullptr) gate_->unlockShared();
      gate_ = nullptr;
    }

   private:
    DbGate* gate_ = nullptr;
  };

  class ExclusiveHold {
   public:
    ExclusiveHold(DbGate& gate, std::chrono::milliseconds timeout)
        : gate_(gate.lockExclusive(timeout) ? &gate : nullptr) {}
    ExclusiveHold(const ExclusiveHold&) = delete;
    ExclusiveHold& operator=(const ExclusiveHold&) = delete;
    ~ExclusiveHold() {
      if (gate_ != nullptr) gate_->unlockExclusive();
    }
    bool held() const { return gate_ != nullptr; }

   private:
    DbGate* gate_ = nullptr;
  };

  /// RAII wrapper for the DML-writer hold. release() exists so a WAL-mode
  /// session can drop the hold after the commit is appended but before the
  /// group-commit fsync — the next writer overlaps with this one's sync.
  class WriteHold {
   public:
    WriteHold(DbGate& gate, std::chrono::milliseconds timeout)
        : gate_(gate.lockWrite(timeout) ? &gate : nullptr) {}
    WriteHold(const WriteHold&) = delete;
    WriteHold& operator=(const WriteHold&) = delete;
    ~WriteHold() { release(); }
    bool held() const { return gate_ != nullptr; }
    void release() {
      if (gate_ != nullptr) gate_->unlockWrite();
      gate_ = nullptr;
    }

   private:
    DbGate* gate_ = nullptr;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool snapshot_reads_ = false;  // set once before threads exist
  int readers_ = 0;          // active shared holds (incl. cursor-lifetime)
  bool writer_ = false;      // exclusive hold active
  bool dml_writer_ = false;  // DML-writer hold active (snapshot mode only)
  int writers_waiting_ = 0;  // queued exclusive holds (readers defer to them)
};

}  // namespace perftrack::server
