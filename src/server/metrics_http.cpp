#include "server/metrics_http.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <utility>

namespace perftrack::server {

namespace {

constexpr std::size_t kMaxRequestBytes = 4096;

std::string httpResponse(int status, const char* reason, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsEndpoint::MetricsEndpoint(std::string host, std::uint16_t port, Handler handler)
    : host_(std::move(host)), port_(port), handler_(std::move(handler)) {}

MetricsEndpoint::~MetricsEndpoint() { stop(); }

void MetricsEndpoint::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  listener_ = Listener::tcp(host_, port_);
  thread_ = std::thread([this] { loop(); });
}

void MetricsEndpoint::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void MetricsEndpoint::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    Socket client = listener_.accept();
    if (!client.valid()) continue;
    try {
      serveOne(std::move(client));
    } catch (const std::exception&) {
      // A broken scraper connection must never take the endpoint down.
    }
  }
}

void MetricsEndpoint::serveOne(Socket client) {
  client.setIoTimeout(std::chrono::milliseconds(2000));
  // Read until the blank line ending the request head (or the size cap);
  // the body, if any, is ignored.
  std::string request;
  char buf[512];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  // Parse "METHOD SP PATH SP ..." from the first line.
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  std::string response;
  if (sp1 == std::string::npos) {
    response = httpResponse(400, "Bad Request", "malformed request line\n");
  } else if (line.substr(0, sp1) != "GET") {
    response = httpResponse(405, "Method Not Allowed", "only GET is served\n");
  } else {
    std::string path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                                : line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    try {
      response = httpResponse(200, "OK", handler_(path));
    } catch (const std::exception&) {
      response = httpResponse(404, "Not Found", "no such endpoint: " + path + "\n");
    }
  }
  client.sendAll(response.data(), response.size());
}

}  // namespace perftrack::server
