// Minimal HTTP/1.0 metrics endpoint for ptserverd.
//
// One listener, one thread, one request per connection: enough for a
// Prometheus scraper or `curl http://host:port/metrics`, with zero
// dependencies and no interaction with the wire-protocol data path. The
// endpoint only ever *reads* observability state (the handler renders a
// snapshot), so a stuck or malicious scraper cannot block a query.
//
// Supported surface:
//   GET /metrics   -> 200 text/plain, Prometheus text exposition 0.0.4
//   GET /traces    -> 200 text/plain, recent + slow query spans
//   anything else  -> 404 (or 405 for non-GET methods)
//
// Requests are bounded (4 KiB, 2 s socket timeout) and the response always
// closes the connection, so the loop never carries per-client state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "server/net.h"

namespace perftrack::server {

class MetricsEndpoint {
 public:
  /// Maps a request path ("/metrics", "/traces") to a response body, or
  /// returns an empty optional-equivalent: throwing std::out_of_range (or
  /// any exception) yields a 404.
  using Handler = std::function<std::string(const std::string& path)>;

  MetricsEndpoint(std::string host, std::uint16_t port, Handler handler);
  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// Binds the listener (throws NetError on failure) and launches the
  /// serving thread. Port 0 picks an ephemeral port.
  void start();

  /// Closes the listener and joins the thread. Idempotent.
  void stop();

  std::uint16_t boundPort() const { return listener_.boundPort(); }

 private:
  void loop();
  void serveOne(Socket client);

  std::string host_;
  std::uint16_t port_;
  Handler handler_;
  Listener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace perftrack::server
