#include "server/net.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace perftrack::server {

namespace {

std::string errnoText() { return std::strerror(errno); }

/// Applies one SO_*TIMEO option; 0 disables.
void setTimeoutOpt(int fd, int opt, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

}  // namespace

// --- Socket ------------------------------------------------------------------

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::setIoTimeout(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return;
  setTimeoutOpt(fd_, SO_RCVTIMEO, timeout);
  setTimeoutOpt(fd_, SO_SNDTIMEO, timeout);
}

void Socket::sendAll(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-send must surface as EPIPE,
    // not as a process-killing SIGPIPE.
    const ssize_t put = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("send timed out");
      }
      throw NetError("send failed: " + errnoText());
    }
    sent += static_cast<std::size_t>(put);
  }
}

bool Socket::recvAll(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("recv timed out");
      }
      throw NetError("recv failed: " + errnoText());
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw NetError("connection closed mid-frame (" + std::to_string(got) +
                     " of " + std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::sendFrame(const Frame& frame) {
  std::uint8_t header[kFrameHeaderBytes];
  const auto len = static_cast<std::uint32_t>(frame.payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  header[4] = static_cast<std::uint8_t>(frame.op);
  // One send for the header keeps the syscall count low; payload follows.
  sendAll(header, sizeof(header));
  if (!frame.payload.empty()) sendAll(frame.payload.data(), frame.payload.size());
}

std::optional<Frame> Socket::recvFrame() {
  std::uint8_t header[kFrameHeaderBytes];
  if (!recvAll(header, sizeof(header))) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameBytes) throw FrameTooBig(len);
  Frame frame;
  frame.op = static_cast<Op>(header[4]);
  frame.payload.resize(len);
  if (len > 0 && !frame.payload.empty()) {
    if (!recvAll(frame.payload.data(), len)) {
      throw NetError("connection closed before frame payload");
    }
  }
  return frame;
}

// --- Listener ----------------------------------------------------------------

Listener Listener::tcp(const std::string& host, std::uint16_t port, int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &res);
  if (rc != 0) {
    throw NetError("cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = "socket: " + errnoText();
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, backlog) == 0) {
      break;
    }
    last_error = "bind/listen: " + errnoText();
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw NetError("cannot listen on " + host + ":" + port_text + " (" +
                   last_error + ")");
  }
  Listener listener;
  listener.sock_ = Socket(fd);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    listener.port_ = ntohs(bound.sin_port);
  }
  return listener;
}

Listener Listener::unixSocket(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw NetError("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw NetError("socket: " + errnoText());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  (void)::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const std::string err = errnoText();
    ::close(fd);
    throw NetError("cannot listen on unix socket " + path + ": " + err);
  }
  Listener listener;
  listener.sock_ = Socket(fd);
  listener.unix_path_ = path;
  return listener;
}

Listener::~Listener() { close(); }

Socket Listener::accept() {
  while (true) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      // Request/response frames are small; without TCP_NODELAY the reply
      // header waits out Nagle + delayed ACK (~40ms per roundtrip). Fails
      // harmlessly on AF_UNIX sockets.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // transient (EAGAIN, ECONNABORTED, ...): caller re-polls
  }
}

void Listener::close() {
  sock_.close();
  if (!unix_path_.empty()) {
    (void)::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

// --- client connect ----------------------------------------------------------

Socket connectTo(const std::string& target, std::chrono::milliseconds io_timeout) {
  Socket sock;
  if (target.rfind("unix:", 0) == 0) {
    const std::string path = target.substr(5);
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
      throw NetError("unix socket path too long: " + path);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw NetError("socket: " + errnoText());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = errnoText();
      ::close(fd);
      throw NetError("cannot connect to unix socket " + path + ": " + err);
    }
    sock = Socket(fd);
  } else {
    const auto colon = target.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == target.size()) {
      throw NetError("bad remote target '" + target +
                     "' (expected host:port or unix:/path)");
    }
    const std::string host = target.substr(0, colon);
    const std::string port = target.substr(colon + 1);
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
      throw NetError("cannot resolve " + host + ": " + ::gai_strerror(rc));
    }
    int fd = -1;
    std::string last_error = "no addresses";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last_error = errnoText();
        continue;
      }
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_error = errnoText();
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      throw NetError("cannot connect to " + target + ": " + last_error);
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sock = Socket(fd);
  }
  sock.setIoTimeout(io_timeout);
  return sock;
}

}  // namespace perftrack::server
