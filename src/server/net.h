// ptserverd networking: RAII sockets and frame transport.
//
// Thin POSIX wrappers shared by the server and the remote dbal backend.
// Everything retries EINTR, sends with MSG_NOSIGNAL (so a dropped peer
// yields EPIPE instead of killing the process), and reports failures as
// NetError. recvFrame/sendFrame move whole protocol frames; a peer that
// disappears mid-frame surfaces as "connection closed", never as a hang
// (per-socket timeouts bound every blocking call).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.h"
#include "util/error.h"

namespace perftrack::server {

/// Raised on socket-level failures (connect refused, peer gone, timeout).
class NetError : public util::PTError {
 public:
  explicit NetError(std::string message) : util::PTError(std::move(message)) {}
};

/// RAII file descriptor with frame-level send/receive.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Bounds every blocking send/recv on this socket (SO_RCVTIMEO/SNDTIMEO).
  /// Zero disables the bound.
  void setIoTimeout(std::chrono::milliseconds timeout);

  /// Sends all of `n` bytes; throws NetError on failure.
  void sendAll(const void* buf, std::size_t n);

  /// Receives exactly `n` bytes. Returns false on clean EOF before the
  /// first byte; throws NetError on errors, timeouts, and mid-buffer EOF
  /// (a truncated frame).
  bool recvAll(void* buf, std::size_t n);

  /// Sends one protocol frame (header + payload).
  void sendFrame(const Frame& frame);

  /// Receives one frame. Returns nullopt on clean EOF at a frame boundary.
  /// Throws NetError on I/O failure or a truncated frame, and FrameTooBig
  /// when the header advertises more than kMaxFrameBytes.
  std::optional<Frame> recvFrame();

 private:
  int fd_ = -1;
};

/// recvFrame-specific failure: the length prefix exceeds kMaxFrameBytes.
/// The connection cannot be resynchronized after this; the server answers
/// with an ERROR frame and closes.
class FrameTooBig : public NetError {
 public:
  explicit FrameTooBig(std::uint32_t advertised)
      : NetError("frame of " + std::to_string(advertised) +
                 " bytes exceeds the protocol maximum"),
        advertised_(advertised) {}
  std::uint32_t advertised() const { return advertised_; }

 private:
  std::uint32_t advertised_;
};

/// Listening endpoint (TCP host:port or Unix socket path).
class Listener {
 public:
  /// Binds and listens on TCP `host:port`; port 0 picks an ephemeral port
  /// (read it back with boundPort()).
  static Listener tcp(const std::string& host, std::uint16_t port, int backlog = 64);

  /// Binds and listens on a Unix-domain socket path (unlinking a stale
  /// one). Named unixSocket to stay clear of the legacy `unix` macro some
  /// toolchains predefine.
  static Listener unixSocket(const std::string& path, int backlog = 64);

  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;
  ~Listener();

  bool valid() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  std::uint16_t boundPort() const { return port_; }
  const std::string& unixPath() const { return unix_path_; }

  /// Accepts one pending connection; returns an invalid Socket when the
  /// accept fails transiently (caller just re-polls).
  Socket accept();

  void close();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
  std::string unix_path_;  // unlinked on close
};

/// Connects to `target`: "host:port" for TCP or "unix:/path" for a Unix
/// socket. Throws NetError when the server cannot be reached.
Socket connectTo(const std::string& target,
                 std::chrono::milliseconds io_timeout = std::chrono::milliseconds(30000));

}  // namespace perftrack::server
