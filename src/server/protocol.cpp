#include "server/protocol.h"

#include <bit>
#include <cstring>

namespace perftrack::server {

// --- WireWriter --------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void WireWriter::value(const minidb::Value& v) {
  if (v.isNull()) {
    u8(0);
  } else if (v.isInt()) {
    u8(1);
    i64(v.asInt());
  } else if (v.isReal()) {
    u8(2);
    u64(std::bit_cast<std::uint64_t>(v.asReal()));
  } else {
    u8(3);
    str(v.asText());
  }
}

void WireWriter::row(const minidb::Row& r) {
  u32(static_cast<std::uint32_t>(r.size()));
  for (const minidb::Value& v : r) value(v);
}

// --- WireReader --------------------------------------------------------------

const std::uint8_t* WireReader::need(std::size_t n, const char* what) {
  if (size_ - pos_ < n) {
    throw WireError(std::string("truncated payload reading ") + what);
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::u8() { return *need(1, "u8"); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2, "u16");
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  const std::uint8_t* p = need(len, "string body");
  return std::string(reinterpret_cast<const char*>(p), len);
}

minidb::Value WireReader::value() {
  switch (u8()) {
    case 0: return minidb::Value::null();
    case 1: return minidb::Value(i64());
    case 2: return minidb::Value(std::bit_cast<double>(u64()));
    case 3: return minidb::Value(str());
    default: throw WireError("bad value tag");
  }
}

minidb::Row WireReader::row() {
  const std::uint32_t n = u32();
  if (n > size_ - pos_) {  // each value needs at least its one-byte tag
    throw WireError("row column count exceeds payload");
  }
  minidb::Row r;
  r.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) r.push_back(value());
  return r;
}

void WireReader::expectEnd(const char* what) const {
  if (pos_ != size_) {
    throw WireError(std::string("trailing bytes after ") + what + " payload");
  }
}

// --- frames ------------------------------------------------------------------

Frame makeFrame(Op op, WireWriter&& writer) {
  return Frame{op, writer.take()};
}

Frame makeError(ErrCode code, std::string_view message) {
  WireWriter w;
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
  return makeFrame(Op::Error, std::move(w));
}

std::pair<ErrCode, std::string> readError(const Frame& frame) {
  WireReader r(frame.payload);
  const auto code = static_cast<ErrCode>(r.u16());
  std::string message = r.str();
  return {code, std::move(message)};
}

std::string_view opName(Op op) {
  switch (op) {
    case Op::Hello: return "HELLO";
    case Op::Prepare: return "PREPARE";
    case Op::Bind: return "BIND";
    case Op::Execute: return "EXECUTE";
    case Op::Fetch: return "FETCH";
    case Op::CloseStmt: return "CLOSE_STMT";
    case Op::CloseCursor: return "CLOSE_CURSOR";
    case Op::SetOption: return "SET_OPTION";
    case Op::Stat: return "STAT";
    case Op::Ping: return "PING";
    case Op::Shutdown: return "SHUTDOWN";
    case Op::Metrics: return "METRICS";
    case Op::Diff: return "DIFF";
    case Op::HelloOk: return "HELLO_OK";
    case Op::StmtOk: return "STMT_OK";
    case Op::BindOk: return "BIND_OK";
    case Op::ResultOk: return "RESULT_OK";
    case Op::CursorOk: return "CURSOR_OK";
    case Op::Rows: return "ROWS";
    case Op::Ok: return "OK";
    case Op::StatOk: return "STAT_OK";
    case Op::Pong: return "PONG";
    case Op::MetricsOk: return "METRICS_OK";
    case Op::DiffOk: return "DIFF_OK";
    case Op::Error: return "ERROR";
  }
  return "UNKNOWN";
}

std::string_view errCodeName(ErrCode code) {
  switch (code) {
    case ErrCode::Protocol: return "PROTOCOL";
    case ErrCode::UnknownOpcode: return "UNKNOWN_OPCODE";
    case ErrCode::TooBig: return "TOO_BIG";
    case ErrCode::Sql: return "SQL";
    case ErrCode::Storage: return "STORAGE";
    case ErrCode::Busy: return "BUSY";
    case ErrCode::BadState: return "BAD_STATE";
    case ErrCode::Shutdown: return "SHUTDOWN";
    case ErrCode::Internal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace perftrack::server
