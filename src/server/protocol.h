// ptserverd wire protocol.
//
// ptserverd serves one minidb database to many concurrent clients over a
// small length-prefixed binary protocol (TCP or Unix socket). Every message
// is one frame:
//
//     u32 payload_length  (little-endian, excludes this 5-byte header)
//     u8  opcode
//     payload_length bytes of payload
//
// Integers are little-endian; strings are u32 length + raw bytes; values
// are a one-byte tag (0 NULL, 1 INTEGER, 2 REAL, 3 TEXT) followed by the
// representation. Frames larger than kMaxFrameBytes are rejected with an
// ERROR frame and the connection is closed (an oversized header cannot be
// resynchronized).
//
// A session is strictly request/response: the client sends one frame and
// reads one frame back. The conversation mirrors the dbal surface:
//
//   HELLO   {u32 version}                 -> HELLO_OK {u32 version, str server}
//   PREPARE {str sql}                     -> STMT_OK  {u32 stmt_id, u32 params,
//                                                      u8 kind}
//   BIND    {u32 stmt_id, u32 n, values}  -> BIND_OK  {}
//   EXECUTE {u32 stmt_id}                 -> RESULT_OK {i64 affected, i64 last_id}
//                                            (DML/DDL), or
//                                            CURSOR_OK {u32 cursor_id, u32 ncols,
//                                                       str...} (SELECT/EXPLAIN)
//   FETCH   {u32 cursor_id, u32 max_rows} -> ROWS {u8 done, u32 nrows,
//                                                  (u32 ncols, value...)...}
//   CLOSE_STMT   {u32 stmt_id}            -> OK {}
//   CLOSE_CURSOR {u32 cursor_id}          -> OK {}
//   SET_OPTION {u8 option, i64 value}     -> OK {}   (session-scoped)
//   STAT    {}                            -> STAT_OK {u64 size_bytes,
//                                                     u32 sessions, u64 frames,
//                                                     u64 uptime_ms,
//                                                     u32 open_cursors,
//                                                     u64 db_file_bytes,
//                                                     u64 journal_bytes,
//                                                     u64 busy_rejections}
//   PING    {}                            -> PONG {}
//   METRICS {}                            -> METRICS_OK {str text}
//                                            (Prometheus exposition format)
//   DIFF    {str exec_a, str exec_b,      -> DIFF_OK {u32 cursor_id, u32 ncols,
//            u32 top_k,                      str..., u64 results_a, u64 results_b,
//            value ratio_threshold,          u64 aligned, u64 only_a, u64 only_b,
//            value abs_threshold}            u64 divergent, u64 zero_baseline,
//                                            u64 diff_us}
//                                            (server-side comparison diagnosis:
//                                            the ranked rows then stream through
//                                            the ordinary FETCH/ROWS machinery
//                                            under the returned cursor id)
//   SHUTDOWN {}                           -> OK {}, then the server drains
//
// STAT_OK grows append-only: old clients read the leading fields and stop,
// new clients treat a short payload as "server predates the field".
//
// Any failure produces ERROR {u16 code, str message} and never kills the
// daemon; only protocol-level damage (truncated/oversized frames) closes
// the connection. Row batching bounds server-side materialization: a FETCH
// returns at most max_rows rows (clamped by the server), so large scans
// stream through the PR-3 cursor pipeline in bounded memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "minidb/value.h"
#include "util/error.h"

namespace perftrack::server {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Hard ceiling on one frame's payload. Generous for row batches, small
/// enough that a garbage length field cannot make the server allocate GBs.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 5;

enum class Op : std::uint8_t {
  // client -> server
  Hello = 1,
  Prepare = 2,
  Bind = 3,
  Execute = 4,
  Fetch = 5,
  CloseStmt = 6,
  CloseCursor = 7,
  SetOption = 8,
  Stat = 9,
  Ping = 10,
  Shutdown = 11,
  Metrics = 12,
  Diff = 13,

  // server -> client
  HelloOk = 64,
  StmtOk = 65,
  BindOk = 66,
  ResultOk = 67,
  CursorOk = 68,
  Rows = 69,
  Ok = 70,
  StatOk = 71,
  Pong = 72,
  MetricsOk = 73,
  DiffOk = 74,
  Error = 127,
};

enum class ErrCode : std::uint16_t {
  Protocol = 1,      // malformed payload, bad handshake
  UnknownOpcode = 2,
  TooBig = 3,        // frame exceeds kMaxFrameBytes
  Sql = 4,           // minidb SqlError (parse/plan/bind mistakes)
  Storage = 5,       // minidb StorageError (I/O, integrity)
  Busy = 6,          // lock acquisition timed out / server at max connections
  BadState = 7,      // unknown stmt/cursor id, FETCH after CLOSE, txn over wire
  Shutdown = 8,      // server is draining
  Internal = 9,
};

/// Session options settable over the wire (SET_OPTION).
enum class SessionOption : std::uint8_t {
  UseIndexes = 1,    // value 0/1: planner ablation switch, session-scoped
  ExecThreads = 2,   // parallel SELECT degree; 0 = server default, 1 = serial
  ExecBatchRows = 3, // rows per pipeline batch; 0 = server default
  InvIdx = 4,        // value 0/1: inverted-index IN-list probes, session-scoped
};

/// One decoded frame.
struct Frame {
  Op op = Op::Error;
  std::vector<std::uint8_t> payload;
};

/// Raised by the codec on malformed payloads (truncated string, bad value
/// tag). The server turns it into an ERROR frame; the client surfaces it.
class WireError : public util::PTError {
 public:
  explicit WireError(std::string message) : util::PTError(std::move(message)) {}
};

/// Append-only payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view s);
  void value(const minidb::Value& v);
  void row(const minidb::Row& r);

  std::vector<std::uint8_t> take() { return std::move(out_); }
  const std::vector<std::uint8_t>& bytes() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

/// Sequential payload reader; throws WireError past the end.
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();
  minidb::Value value();
  minidb::Row row();

  bool atEnd() const { return pos_ == size_; }
  /// Throws WireError unless the whole payload was consumed (catches
  /// requests with trailing garbage).
  void expectEnd(const char* what) const;

 private:
  const std::uint8_t* need(std::size_t n, const char* what);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Convenience constructors for the frames both sides build.
Frame makeFrame(Op op, WireWriter&& writer);
Frame makeError(ErrCode code, std::string_view message);
/// Decodes an ERROR frame payload.
std::pair<ErrCode, std::string> readError(const Frame& frame);

std::string_view opName(Op op);
std::string_view errCodeName(ErrCode code);

}  // namespace perftrack::server
