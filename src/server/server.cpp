#include "server/server.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "obs/trace.h"

namespace perftrack::server {

PtServer::PtServer(minidb::Database& db, ServerConfig config)
    : db_(&db), config_(std::move(config)) {
  // WAL durability: cursors pin storage snapshots, so the gate lets DML
  // writers run concurrently with readers (schema ops still drain all).
  gate_.setSnapshotReads(db.durability() == minidb::Durability::Wal);
}

PtServer::~PtServer() { stop(); }

void PtServer::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load()) return;
  stop_requested_.store(false);

  if (config_.tcp) {
    listeners_.push_back(Listener::tcp(config_.host, config_.port));
    bound_port_ = listeners_.back().boundPort();
  }
  if (!config_.unix_path.empty()) {
    listeners_.push_back(Listener::unixSocket(config_.unix_path));
  }
  if (listeners_.empty()) throw NetError("no listeners configured");

  counters_.start_time = std::chrono::steady_clock::now();
  if (config_.metrics_port >= 0) {
    metrics_ = std::make_unique<MetricsEndpoint>(
        config_.host, static_cast<std::uint16_t>(config_.metrics_port),
        [this](const std::string& path) -> std::string {
          if (path == "/metrics" || path == "/") {
            return renderServerMetrics(*db_, counters_);
          }
          if (path == "/traces") return obs::renderTraces(obs::Tracer::global());
          if (path == "/healthz") return renderHealthz();
          if (path == "/varz") return renderVarz();
          throw std::out_of_range("no such endpoint");
        });
    metrics_->start();
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw NetError("cannot create wakeup pipe");
  wakeup_read_ = pipe_fds[0];
  {
    std::lock_guard<std::mutex> lock(wakeup_mu_);
    wakeup_write_ = pipe_fds[1];
  }
  // Non-blocking on both ends: the poller drains without risk of blocking,
  // and pokePoller() never stalls on a full pipe.
  (void)::fcntl(wakeup_read_, F_SETFL, O_NONBLOCK);
  (void)::fcntl(wakeup_write_, F_SETFL, O_NONBLOCK);

  running_.store(true, std::memory_order_release);
  poller_ = std::thread([this] { pollerLoop(); });
  const int n = std::max(1, config_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

std::string PtServer::renderHealthz() const {
  // Liveness plus a writability probe: a store the server cannot write
  // (volume gone read-only, permissions changed under a running daemon)
  // still serves reads but will fail every commit. The probe is a plain
  // access(2) — no gate, no I/O — so /healthz stays cheap enough to poll.
  const auto* file_pager = dynamic_cast<minidb::FilePager*>(&db_->pager());
  const bool writable =
      file_pager == nullptr || ::access(file_pager->path().c_str(), W_OK) == 0;
  if (!writable) return "unhealthy: store file not writable\n";
  return "ok\n";
}

std::string PtServer::renderVarz() const {
  const auto durability = [&]() -> const char* {
    switch (db_->durability()) {
      case minidb::Durability::None: return "none";
      case minidb::Durability::Full: return "full";
      case minidb::Durability::Wal: return "wal";
    }
    return "unknown";
  }();
  std::string out;
  out += "pt_server_build_compiler " __VERSION__ "\n";
  out += "pt_server_build_date " __DATE__ "\n";
  out += "pt_server_protocol_version " + std::to_string(kProtocolVersion) + "\n";
  out += "pt_server_durability " + std::string(durability) + "\n";
  out += "pt_server_workers " + std::to_string(config_.workers) + "\n";
  out += "pt_server_max_connections " +
         std::to_string(config_.max_connections) + "\n";
  out += "pt_server_exec_threads " + std::to_string(config_.limits.exec_threads) +
         "\n";
  out += "pt_server_invidx " + std::to_string(config_.limits.invidx) + "\n";
  out += "pt_server_default_fetch_rows " +
         std::to_string(config_.limits.default_fetch_rows) + "\n";
  out += "pt_server_max_fetch_rows " +
         std::to_string(config_.limits.max_fetch_rows) + "\n";
  out += "pt_server_fetch_byte_budget " +
         std::to_string(config_.limits.fetch_byte_budget) + "\n";
  out += "pt_server_uptime_ms " + std::to_string(counters_.uptimeMillis()) + "\n";
  return out;
}

void PtServer::requestStop() {
  {
    // The lock pairs the flag with queue_cv_ waits (workers and
    // waitUntilStopped) so the notify cannot be lost.
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_requested_.store(true, std::memory_order_release);
  }
  pokePoller();
  queue_cv_.notify_all();
}

void PtServer::pokePoller() {
  std::lock_guard<std::mutex> lock(wakeup_mu_);
  if (wakeup_write_ >= 0) {
    const char byte = 1;
    // A full pipe means a wakeup is already pending; dropping is fine.
    (void)!::write(wakeup_write_, &byte, 1);
  }
}

void PtServer::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load()) return;
  requestStop();

  if (poller_.joinable()) poller_.join();
  // The poller stopped feeding the queue; let workers drain what remains.
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      if (conn->session) conn->session->teardown();
      conn->sock.close();
    }
    conns_.clear();
  }
  metrics_.reset();  // joins the endpoint thread before the db can go away
  for (auto& l : listeners_) l.close();
  listeners_.clear();
  if (wakeup_read_ >= 0) ::close(wakeup_read_);
  wakeup_read_ = -1;
  {
    std::lock_guard<std::mutex> lock(wakeup_mu_);
    if (wakeup_write_ >= 0) ::close(wakeup_write_);
    wakeup_write_ = -1;
  }
  bound_port_ = 0;

  running_.store(false, std::memory_order_release);
}

void PtServer::waitUntilStopped() {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [this] {
      return stop_requested_.load(std::memory_order_acquire);
    });
  }
  // The flag is set by requestStop() (signal handler relay, SHUTDOWN frame,
  // or stop() itself); the actual drain happens here, on the caller's
  // thread, so a worker can never join itself.
  stop();
}

void PtServer::acceptInto(Listener& listener) {
  Socket sock = listener.accept();
  if (!sock.valid()) return;
  sock.setIoTimeout(config_.io_timeout);

  std::lock_guard<std::mutex> lock(conns_mu_);
  if (conns_.size() >= config_.max_connections) {
    counters_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
    // Best effort: a clean BUSY frame beats a silent RST. Drain the client's
    // HELLO first — closing with unread bytes in the receive queue resets the
    // connection and discards the BUSY frame in flight. The socket then
    // closes when `sock` goes out of scope.
    try {
      sock.setIoTimeout(std::chrono::milliseconds(250));
      (void)sock.recvFrame();
      sock.sendFrame(makeError(ErrCode::Busy,
                               "server connection limit (" +
                                   std::to_string(config_.max_connections) +
                                   ") reached; retry later"));
    } catch (const NetError&) {
    }
    return;
  }
  auto conn = std::make_unique<Conn>(std::move(sock));
  conn->session = std::make_unique<Session>(next_session_id_++, *db_, gate_,
                                            config_.limits, counters_);
  conn->last_activity = std::chrono::steady_clock::now();
  const int fd = conn->sock.fd();
  conns_.emplace(fd, std::move(conn));
}

void PtServer::closeConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second->session) it->second->session->teardown();
  it->second->sock.close();
  conns_.erase(it);
}

void PtServer::reapIdle(std::chrono::steady_clock::time_point now) {
  if (config_.idle_timeout.count() <= 0) return;
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (!conn->in_service && now - conn->last_activity > config_.idle_timeout) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) closeConn(fd);
}

void PtServer::pollerLoop() {
  std::vector<pollfd> pfds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wakeup_read_, POLLIN, 0});
    for (const auto& l : listeners_) pfds.push_back({l.fd(), POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [fd, conn] : conns_) {
        if (!conn->in_service) pfds.push_back({fd, POLLIN, 0});
      }
    }

    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: drain and stop
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;

    std::size_t i = 0;
    if (pfds[i].revents & POLLIN) {
      char drain[64];
      while (::read(wakeup_read_, drain, sizeof(drain)) > 0) {
      }
    }
    ++i;
    for (auto& l : listeners_) {
      if (pfds[i].revents & POLLIN) acceptInto(l);
      ++i;
    }

    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      std::lock_guard<std::mutex> qlock(queue_mu_);
      for (; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const auto it = conns_.find(pfds[i].fd);
        if (it == conns_.end() || it->second->in_service) continue;
        it->second->in_service = true;
        ready_fds_.push_back(pfds[i].fd);
        queued = true;
      }
    }
    if (queued) queue_cv_.notify_all();

    reapIdle(std::chrono::steady_clock::now());
  }
}

void PtServer::workerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !ready_fds_.empty() ||
               stop_requested_.load(std::memory_order_acquire);
      });
      if (ready_fds_.empty()) {
        // Stop requested and nothing left to service.
        if (stop_requested_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = ready_fds_.front();
      ready_fds_.pop_front();
    }

    Conn* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      const auto it = conns_.find(fd);
      if (it != conns_.end()) conn = it->second.get();
    }
    // While in_service the poller never touches this Conn, so the worker
    // may use it without conns_mu_ held.
    if (conn == nullptr) continue;

    const bool keep = serviceOne(*conn);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (keep) {
        conn->in_service = false;
        conn->last_activity = std::chrono::steady_clock::now();
      } else {
        closeConn(fd);
      }
    }
    // Re-arm polling for this fd (or let the poller notice the close).
    pokePoller();
  }
}

bool PtServer::serviceOne(Conn& conn) {
  try {
    std::optional<Frame> request = conn.sock.recvFrame();
    if (!request.has_value()) return false;  // clean disconnect

    Session::Outcome outcome = conn.session->handle(*request);
    conn.sock.sendFrame(outcome.response);
    if (outcome.shutdown_requested) requestStop();
    return !outcome.close_connection && !outcome.shutdown_requested;
  } catch (const FrameTooBig& e) {
    // The oversized payload was never read, so the stream cannot be
    // resynced: send the error frame, then drop the connection.
    try {
      conn.sock.sendFrame(makeError(
          ErrCode::TooBig, "frame of " + std::to_string(e.advertised()) +
                               " bytes exceeds the " +
                               std::to_string(kMaxFrameBytes) + "-byte limit"));
    } catch (const NetError&) {
    }
    return false;
  } catch (const NetError&) {
    // Timeout, mid-frame EOF, or send to a vanished peer: drop.
    return false;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace perftrack::server
