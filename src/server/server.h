// ptserverd server core: accept loop, worker pool, connection registry.
//
// Threading model (DESIGN.md §5.4):
//
//   poller (1 thread)   poll()s the listeners, the wakeup pipe, and every
//                       connection that is NOT currently being serviced.
//                       Readable connections are marked in-service and
//                       handed to the worker queue; it also accepts new
//                       connections (rejecting with a BUSY error frame at
//                       the connection cap) and reaps idle ones.
//   workers (N threads) each pops one in-service connection, reads exactly
//                       one frame, dispatches it through the connection's
//                       Session, writes the response, and re-arms the
//                       connection for polling. A connection is therefore
//                       serviced by at most one worker at a time, which is
//                       what lets Session keep its state unlocked.
//
// Stop sequence (SIGTERM / SHUTDOWN frame / stop()): the stop flag is set
// and the wakeup pipe poked; the poller closes the listeners (no new
// connections), drains the worker queue, joins the workers (in-flight
// requests finish and their responses are sent), then tears down every
// remaining session — releasing their DbGate holds — and closes the
// sockets. The database object itself is owned by the caller.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "minidb/database.h"
#include "server/dbgate.h"
#include "server/metrics_http.h"
#include "server/net.h"
#include "server/session.h"

namespace perftrack::server {

struct ServerConfig {
  /// TCP listen address; disabled when `tcp` is false.
  bool tcp = true;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned (see boundPort())

  /// Unix-domain listen path; empty disables.
  std::string unix_path;

  int workers = 4;
  std::size_t max_connections = 64;

  /// HTTP observability endpoint (GET /metrics, GET /traces) on the same
  /// host as `host`. -1 disables; 0 = kernel-assigned (see
  /// boundMetricsPort()).
  int metrics_port = -1;

  /// Connections idle longer than this are reaped (0 disables reaping).
  std::chrono::milliseconds idle_timeout{300000};
  /// Per-connection socket send/recv budget while servicing one request.
  std::chrono::milliseconds io_timeout{30000};

  SessionLimits limits;
};

class PtServer {
 public:
  PtServer(minidb::Database& db, ServerConfig config);
  ~PtServer();

  PtServer(const PtServer&) = delete;
  PtServer& operator=(const PtServer&) = delete;

  /// Binds the listeners and launches the poller and workers. Throws
  /// NetError if no listener can be bound.
  void start();

  /// Graceful drain (see file comment). Idempotent; blocks until every
  /// thread has joined and every connection is torn down.
  void stop();

  /// Flags the server to stop without blocking. Safe to call from any
  /// thread, including a worker servicing the SHUTDOWN frame.
  void requestStop();

  /// Blocks until a stop request arrives and the drain completes.
  void waitUntilStopped();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The TCP port actually bound (resolves port 0). 0 when TCP is disabled.
  std::uint16_t boundPort() const { return bound_port_; }

  /// The metrics endpoint's bound port. 0 when the endpoint is disabled.
  std::uint16_t boundMetricsPort() const {
    return metrics_ ? metrics_->boundPort() : 0;
  }

  const ServerCounters& counters() const { return counters_; }
  DbGate& gate() { return gate_; }

 private:
  struct Conn {
    explicit Conn(Socket s) : sock(std::move(s)) {}
    Socket sock;
    std::unique_ptr<Session> session;
    std::chrono::steady_clock::time_point last_activity;
    bool in_service = false;
  };

  /// GET /healthz body: "ok" when the process is serving and the store
  /// file (if any) is still writable; an "unhealthy: ..." line otherwise.
  std::string renderHealthz() const;
  /// GET /varz body: build/config introspection as "name value" lines
  /// (protocol version, durability mode, worker/limit knobs, uptime).
  std::string renderVarz() const;

  void pollerLoop();
  void workerLoop();
  /// Serves exactly one request on `conn`; returns false when the
  /// connection should be closed (EOF, framing damage, I/O error).
  bool serviceOne(Conn& conn);
  void acceptInto(Listener& listener);
  void reapIdle(std::chrono::steady_clock::time_point now);
  void closeConn(int fd);  // caller must hold conns_mu_
  void pokePoller();

  minidb::Database* db_;
  ServerConfig config_;
  DbGate gate_;
  ServerCounters counters_;

  std::vector<Listener> listeners_;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<MetricsEndpoint> metrics_;
  int wakeup_read_ = -1;
  // requestStop() may arrive from any thread (signal relay, SHUTDOWN frame)
  // while stop() tears the pipe down, so the write end is mutex-guarded.
  std::mutex wakeup_mu_;
  int wakeup_write_ = -1;

  std::mutex conns_mu_;
  std::map<int, std::unique_ptr<Conn>> conns_;  // keyed by fd
  std::uint64_t next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> ready_fds_;

  std::thread poller_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::mutex lifecycle_mu_;  // serializes start()/stop()
};

}  // namespace perftrack::server
