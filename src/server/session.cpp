#include "server/session.h"

#include <optional>
#include <string>
#include <vector>

#include "core/diag.h"
#include "minidb/sql/pipeline.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace perftrack::server {

namespace {

using minidb::sql::Statement;

bool isReadKind(Statement::Kind kind) { return kind == Statement::Kind::Select; }

bool isTxnKind(Statement::Kind kind) { return kind == Statement::Kind::Txn; }

/// Statements that rewrite the catalog or move pages under every version;
/// they take the exclusive hold even in WAL mode.
bool isSchemaKind(Statement::Kind kind) {
  return kind == Statement::Kind::CreateTable ||
         kind == Statement::Kind::CreateIndex ||
         kind == Statement::Kind::Drop || kind == Statement::Kind::Vacuum;
}

}  // namespace

Session::Session(std::uint64_t id, minidb::Database& db, DbGate& gate,
                 const SessionLimits& limits, ServerCounters& counters)
    : id_(id),
      db_(&db),
      gate_(&gate),
      limits_(limits),
      counters_(&counters),
      engine_(db),
      snapshot_reads_(db.durability() == minidb::Durability::Wal) {
  engine_.setExecThreads(limits_.exec_threads);
  if (limits_.invidx >= 0) engine_.setInvidx(limits_.invidx != 0);
  counters_->sessions.fetch_add(1, std::memory_order_relaxed);
}

Session::~Session() {
  teardown();
  counters_->sessions.fetch_sub(1, std::memory_order_relaxed);
}

void Session::closeCursorEntry(CursorEntry& entry) {
  // Every close path erases the entry right after this call, so the
  // decrement runs exactly once per executeSelect increment.
  counters_->open_cursors.fetch_sub(1, std::memory_order_relaxed);
  if (entry.cursor) entry.cursor->close();
  if (entry.holds_gate) {
    entry.holds_gate = false;
    --gate_holds_;
    gate_->unlockShared();
  }
}

void Session::teardown() {
  for (auto& [id, entry] : cursors_) closeCursorEntry(entry);
  cursors_.clear();
  stmts_.clear();
}

Session::Outcome Session::handle(const Frame& request) {
  counters_->frames_served.fetch_add(1, std::memory_order_relaxed);
  Outcome out;
  try {
    WireReader r(request.payload);
    if (!hello_done_ && request.op != Op::Hello) {
      out.response = makeError(ErrCode::Protocol, "expected HELLO first");
      return out;
    }
    switch (request.op) {
      case Op::Hello: out.response = doHello(r); return out;
      case Op::Prepare: out.response = doPrepare(r); return out;
      case Op::Bind: out.response = doBind(r); return out;
      case Op::Execute: out.response = doExecute(r); return out;
      case Op::Fetch: out.response = doFetch(r); return out;
      case Op::CloseStmt: out.response = doCloseStmt(r); return out;
      case Op::CloseCursor: out.response = doCloseCursor(r); return out;
      case Op::SetOption: out.response = doSetOption(r); return out;
      case Op::Stat: out.response = doStat(r); return out;
      case Op::Metrics: out.response = doMetrics(r); return out;
      case Op::Diff: out.response = doDiff(r); return out;
      case Op::Ping: out.response = Frame{Op::Pong, {}}; return out;
      case Op::Shutdown:
        if (!limits_.allow_shutdown) {
          out.response = makeError(ErrCode::BadState, "remote shutdown is disabled");
        } else {
          out.response = Frame{Op::Ok, {}};
          out.shutdown_requested = true;
        }
        return out;
      default:
        out.response = makeError(
            ErrCode::UnknownOpcode,
            "unknown opcode " + std::to_string(static_cast<int>(request.op)));
        return out;
    }
  } catch (const WireError& e) {
    out.response = makeError(ErrCode::Protocol, e.what());
  } catch (const util::SqlError& e) {
    out.response = makeError(ErrCode::Sql, e.what());
  } catch (const util::ModelError& e) {
    // DIFF against an unknown execution: a client mistake, same family as a
    // bad SQL identifier, so it maps to the Sql error code.
    out.response = makeError(ErrCode::Sql, e.what());
  } catch (const util::StorageError& e) {
    out.response = makeError(ErrCode::Storage, e.what());
  } catch (const std::exception& e) {
    out.response = makeError(ErrCode::Internal, e.what());
  }
  return out;
}

Frame Session::doHello(WireReader& r) {
  const std::uint32_t version = r.u32();
  r.expectEnd("HELLO");
  if (version != kProtocolVersion) {
    return makeError(ErrCode::Protocol,
                     "protocol version " + std::to_string(version) +
                         " not supported (server speaks " +
                         std::to_string(kProtocolVersion) + ")");
  }
  hello_done_ = true;
  WireWriter w;
  w.u32(kProtocolVersion);
  w.str("ptserverd/1");
  return makeFrame(Op::HelloOk, std::move(w));
}

Frame Session::doPrepare(WireReader& r) {
  std::string sql = r.str();
  r.expectEnd("PREPARE");
  // Parsing touches no shared storage (planning is lazy and gated), so
  // PREPARE runs without a gate hold.
  auto stmt =
      std::make_shared<minidb::sql::PreparedStatement>(engine_.prepare(sql));
  const std::uint32_t id = next_stmt_id_++;
  stmts_.emplace(id, stmt);
  WireWriter w;
  w.u32(id);
  w.u32(static_cast<std::uint32_t>(stmt->paramCount()));
  w.u8(static_cast<std::uint8_t>(stmt->kind()));
  return makeFrame(Op::StmtOk, std::move(w));
}

Frame Session::doBind(WireReader& r) {
  const std::uint32_t id = r.u32();
  const auto it = stmts_.find(id);
  if (it == stmts_.end()) {
    return makeError(ErrCode::BadState, "no such statement id " + std::to_string(id));
  }
  const std::uint32_t n = r.u32();
  std::vector<minidb::Value> params;
  params.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) params.push_back(r.value());
  r.expectEnd("BIND");
  // bindAll validates the count against the statement's placeholders. It
  // only stages values; a cursor already streaming this statement keeps its
  // own copy inside the AST, so staging is safe even while busy.
  it->second->bindAll(std::move(params));
  return Frame{Op::BindOk, {}};
}

Frame Session::doExecute(WireReader& r) {
  const std::uint32_t id = r.u32();
  r.expectEnd("EXECUTE");
  const auto it = stmts_.find(id);
  if (it == stmts_.end()) {
    return makeError(ErrCode::BadState, "no such statement id " + std::to_string(id));
  }
  const auto& stmt = it->second;
  if (isTxnKind(stmt->kind())) {
    return makeError(ErrCode::BadState,
                     "transactions are not supported over ptserverd "
                     "(autocommit only; each write commits atomically)");
  }
  if (isReadKind(stmt->kind())) return executeSelect(stmt);
  return executeWrite(stmt);
}

Frame Session::executeSelect(
    const std::shared_ptr<minidb::sql::PreparedStatement>& stmt) {
  // Sessions already holding a cursor bypass the writer queue: the queued
  // writer is waiting on *our* cursor, so parking behind it would deadlock
  // this session until both time out.
  DbGate::SharedHold hold(*gate_, limits_.lock_timeout, gate_holds_ > 0);
  if (!hold.held()) {
    counters_->busy_rejections.fetch_add(1, std::memory_order_relaxed);
    return makeError(ErrCode::Busy,
                     "database is busy (writer active or queued); retry");
  }
  // WAL mode: the cursor pins the committed version as of this instant and
  // streams it to the last row — concurrent DML commits never block it and
  // never appear in it.
  minidb::sql::Cursor cursor = snapshot_reads_
                                   ? stmt->openCursor(db_->takeSnapshot())
                                   : stmt->openCursor();
  const std::uint32_t cursor_id = next_cursor_id_++;
  WireWriter w;
  w.u32(cursor_id);
  const auto& columns = cursor.columns();
  w.u32(static_cast<std::uint32_t>(columns.size()));
  for (const std::string& c : columns) w.str(c);
  CursorEntry entry;
  entry.cursor.emplace(std::move(cursor));
  entry.stmt = stmt;
  entry.holds_gate = true;
  hold.forget();  // the hold now belongs to the cursor, until close/exhaust
  ++gate_holds_;
  counters_->open_cursors.fetch_add(1, std::memory_order_relaxed);
  cursors_.emplace(cursor_id, std::move(entry));
  return makeFrame(Op::CursorOk, std::move(w));
}

Frame Session::executeWrite(
    const std::shared_ptr<minidb::sql::PreparedStatement>& stmt) {
  if (snapshot_reads_ && !isSchemaKind(stmt->kind())) return executeDmlWal(stmt);
  DbGate::ExclusiveHold hold(*gate_, limits_.lock_timeout);
  if (!hold.held()) {
    counters_->busy_rejections.fetch_add(1, std::memory_order_relaxed);
    return makeError(ErrCode::Busy,
                     "database is busy (readers hold cursors open); retry");
  }
  minidb::sql::ResultSet rs;
  if (stmt->kind() == Statement::Kind::Vacuum) {
    // VACUUM manages its own page shuffle and may not run inside a
    // transaction; persist its result explicitly.
    rs = stmt->execute();
    db_->flush();
  } else {
    // Autocommit: each write is its own journal-protected atomic commit, so
    // a daemon crash can never expose another client's half-applied write.
    db_->begin();
    try {
      rs = stmt->execute();
      db_->commit();
    } catch (...) {
      if (db_->inTransaction()) db_->rollback();
      throw;
    }
  }
  WireWriter w;
  w.i64(rs.rows_affected);
  w.i64(rs.last_insert_id);
  return makeFrame(Op::ResultOk, std::move(w));
}

Frame Session::executeDmlWal(
    const std::shared_ptr<minidb::sql::PreparedStatement>& stmt) {
  // Writer-writer mutual exclusion only: readers keep streaming their
  // snapshots while this commit lands.
  DbGate::WriteHold hold(*gate_, limits_.lock_timeout);
  if (!hold.held()) {
    counters_->busy_rejections.fetch_add(1, std::memory_order_relaxed);
    return makeError(ErrCode::Busy,
                     "database is busy (another writer is active); retry");
  }
  minidb::sql::ResultSet rs;
  std::uint64_t lsn = 0;
  db_->begin();
  try {
    rs = stmt->execute();
    lsn = db_->commitDeferred();  // appended + published, not yet fsynced
  } catch (...) {
    if (db_->inTransaction()) db_->rollback();
    throw;
  }
  // Group commit: drop the writer hold before the fsync so the next writer
  // appends while we sync; one leader fsync then covers every commit
  // appended so far, ours included.
  hold.release();
  db_->waitDurable(lsn);
  WireWriter w;
  w.i64(rs.rows_affected);
  w.i64(rs.last_insert_id);
  return makeFrame(Op::ResultOk, std::move(w));
}

Frame Session::doFetch(WireReader& r) {
  const std::uint32_t id = r.u32();
  std::uint32_t max_rows = r.u32();
  r.expectEnd("FETCH");
  const auto it = cursors_.find(id);
  if (it == cursors_.end()) {
    return makeError(ErrCode::BadState, "no such cursor id " + std::to_string(id) +
                                            " (closed, exhausted, or never opened)");
  }
  if (max_rows == 0) max_rows = limits_.default_fetch_rows;
  max_rows = std::min(max_rows, limits_.max_fetch_rows);

  WireWriter rows;
  std::uint32_t produced = 0;
  bool done = false;
  CursorEntry& entry = it->second;
  try {
    if (!entry.cursor) {
      // Cursor-less (DIFF) result: stream the staged rows under the same
      // max_rows / byte-budget bounds as a pipeline cursor.
      while (produced < max_rows &&
             rows.bytes().size() < limits_.fetch_byte_budget &&
             entry.staged_pos < entry.staged.size()) {
        rows.row(entry.staged[entry.staged_pos++]);
        ++produced;
      }
      done = entry.staged_pos >= entry.staged.size();
    }
    while (entry.cursor && produced < max_rows &&
           rows.bytes().size() < limits_.fetch_byte_budget) {
      if (entry.pending_pos >= entry.pending.sel.size()) {
        entry.pending.clearRows();
        entry.pending_pos = 0;
        entry.pending.capacity = max_rows - produced;
        if (!entry.cursor->fetchBatch(entry.pending)) {
          done = true;
          break;
        }
      }
      // Encode straight from the batch's columns (same byte layout as
      // WireWriter::row — u32 ncols, then one value per column).
      const std::uint32_t i = entry.pending.sel[entry.pending_pos++];
      rows.u32(static_cast<std::uint32_t>(entry.pending.cols.size()));
      for (const auto& c : entry.pending.cols) rows.value(c[i]);
      ++produced;
    }
  } catch (...) {
    // A cursor that failed mid-step (e.g. a dangling index entry) is dead;
    // release its hold before the error frame goes out.
    closeCursorEntry(it->second);
    cursors_.erase(it);
    throw;
  }
  if (done) {
    closeCursorEntry(it->second);
    cursors_.erase(it);
  }
  const auto& body = rows.bytes();
  WireWriter out;
  out.u8(done ? 1 : 0);
  out.u32(produced);
  std::vector<std::uint8_t> payload = out.take();
  payload.insert(payload.end(), body.begin(), body.end());
  return Frame{Op::Rows, std::move(payload)};
}

Frame Session::doCloseStmt(WireReader& r) {
  const std::uint32_t id = r.u32();
  r.expectEnd("CLOSE_STMT");
  // Closing an unknown statement is not an error (the client may race a
  // teardown); open cursors keep the statement alive via their shared_ptr.
  stmts_.erase(id);
  return Frame{Op::Ok, {}};
}

Frame Session::doCloseCursor(WireReader& r) {
  const std::uint32_t id = r.u32();
  r.expectEnd("CLOSE_CURSOR");
  const auto it = cursors_.find(id);
  if (it == cursors_.end()) {
    return makeError(ErrCode::BadState,
                     "no such cursor id " + std::to_string(id) +
                         " (closed, exhausted, or never opened)");
  }
  closeCursorEntry(it->second);
  cursors_.erase(it);
  return Frame{Op::Ok, {}};
}

Frame Session::doSetOption(WireReader& r) {
  const auto option = static_cast<SessionOption>(r.u8());
  const std::int64_t value = r.i64();
  r.expectEnd("SET_OPTION");
  switch (option) {
    case SessionOption::UseIndexes:
      // Session-scoped: cached plans revalidate against the engine flag on
      // their next execution, so no explicit invalidation is needed.
      engine_.setUseIndexes(value != 0);
      return Frame{Op::Ok, {}};
    case SessionOption::ExecThreads:
      if (value < 0 || value > 1024) {
        return makeError(ErrCode::Protocol, "exec_threads out of range");
      }
      // Degree only; every session draws workers from the one process-wide
      // ExecPool, so N parallel sessions never oversubscribe the machine.
      engine_.setExecThreads(static_cast<int>(value));
      return Frame{Op::Ok, {}};
    case SessionOption::ExecBatchRows:
      if (value < 0 ||
          value > static_cast<std::int64_t>(minidb::sql::kMaxExecBatchRows)) {
        return makeError(ErrCode::Protocol, "exec_batch_rows out of range");
      }
      if (value == 0) return Frame{Op::Ok, {}};  // 0 = keep the server default
      engine_.setExecBatchRows(static_cast<std::size_t>(value));
      return Frame{Op::Ok, {}};
    case SessionOption::InvIdx:
      // Session-scoped like UseIndexes: cached plans revalidate against the
      // engine flag on their next execution.
      engine_.setInvidx(value != 0);
      return Frame{Op::Ok, {}};
  }
  return makeError(ErrCode::Protocol, "unknown session option");
}

Frame Session::doStat(WireReader& r) {
  r.expectEnd("STAT");
  // sizeBytes reads the header page; take a brief shared hold so a writer
  // can't be rewriting it concurrently. In WAL mode the shared hold no
  // longer excludes DML writers, so the header is read through a pinned
  // snapshot instead.
  DbGate::SharedHold hold(*gate_, limits_.lock_timeout, gate_holds_ > 0);
  if (!hold.held()) {
    counters_->busy_rejections.fetch_add(1, std::memory_order_relaxed);
    return makeError(ErrCode::Busy, "database is busy; retry");
  }
  std::optional<minidb::Pager::ReadSnapshot> snap;
  std::optional<minidb::Pager::SnapshotScope> scope;
  if (snapshot_reads_) {
    snap.emplace(db_->takeSnapshot());
    scope.emplace(*snap);
  }
  WireWriter w;
  w.u64(db_->sizeBytes());
  w.u32(counters_->sessions.load(std::memory_order_relaxed));
  w.u64(counters_->frames_served.load(std::memory_order_relaxed));
  // Append-only extension (see protocol.h): old clients stop reading here.
  w.u64(counters_->uptimeMillis());
  w.u32(counters_->open_cursors.load(std::memory_order_relaxed));
  w.u64(db_->fileSizeBytes());
  w.u64(db_->journalSizeBytes());
  w.u64(counters_->busy_rejections.load(std::memory_order_relaxed));
  w.u64(db_->walSizeBytes());
  return makeFrame(Op::StatOk, std::move(w));
}

Frame Session::doMetrics(WireReader& r) {
  r.expectEnd("METRICS");
  // The registry snapshot and the file-size stats are lock-free reads; no
  // gate hold is needed (a torn read of a counter mid-commit is fine).
  WireWriter w;
  w.str(renderServerMetrics(*db_, *counters_));
  return makeFrame(Op::MetricsOk, std::move(w));
}

Frame Session::doDiff(WireReader& r) {
  core::diag::Request req;
  req.exec_a = r.str();
  req.exec_b = r.str();
  req.top_k = r.u32();
  req.ratio_threshold = r.value().asReal();
  req.abs_threshold = r.value().asReal();
  r.expectEnd("DIFF");

  // The diagnosis is a burst of SELECTs: it runs under one shared hold (and
  // one pinned snapshot in WAL mode, so a committing writer never skews the
  // two sides against each other), released as soon as the ranked rows are
  // materialized — the staged cursor holds no storage at all.
  core::diag::Report report;
  {
    DbGate::SharedHold hold(*gate_, limits_.lock_timeout, gate_holds_ > 0);
    if (!hold.held()) {
      counters_->busy_rejections.fetch_add(1, std::memory_order_relaxed);
      return makeError(ErrCode::Busy,
                       "database is busy (writer active or queued); retry");
    }
    std::optional<minidb::Pager::ReadSnapshot> snap;
    std::optional<minidb::Pager::SnapshotScope> scope;
    if (snapshot_reads_) {
      snap.emplace(db_->takeSnapshot());
      scope.emplace(*snap);
    }
    report = core::diag::diagnose(engine_, req);
  }

  const std::uint32_t cursor_id = next_cursor_id_++;
  CursorEntry entry;
  entry.staged = report.toRows();
  counters_->open_cursors.fetch_add(1, std::memory_order_relaxed);
  cursors_.emplace(cursor_id, std::move(entry));

  WireWriter w;
  w.u32(cursor_id);
  const auto& columns = core::diag::Report::columns();
  w.u32(static_cast<std::uint32_t>(columns.size()));
  for (const std::string& c : columns) w.str(c);
  w.u64(report.stats.results_a);
  w.u64(report.stats.results_b);
  w.u64(report.stats.aligned);
  w.u64(report.stats.only_a);
  w.u64(report.stats.only_b);
  w.u64(report.stats.divergent);
  w.u64(report.stats.zero_baseline);
  w.u64(report.stats.diff_us);
  return makeFrame(Op::DiffOk, std::move(w));
}

std::string renderServerMetrics(minidb::Database& db, const ServerCounters& counters) {
  std::string out = obs::Registry::global().renderPrometheus();
  auto gauge = [&out](const char* name, std::uint64_t v) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  gauge("pt_server_sessions", counters.sessions.load(std::memory_order_relaxed));
  gauge("pt_server_open_cursors",
        counters.open_cursors.load(std::memory_order_relaxed));
  gauge("pt_server_uptime_ms", counters.uptimeMillis());
  gauge("pt_db_file_bytes", db.fileSizeBytes());
  gauge("pt_db_journal_bytes", db.journalSizeBytes());
  gauge("pt_db_wal_file_bytes", db.walSizeBytes());
  auto counter = [&out](const char* name, std::uint64_t v) {
    out += "# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  counter("pt_server_frames_served_total",
          counters.frames_served.load(std::memory_order_relaxed));
  counter("pt_server_busy_rejections_total",
          counters.busy_rejections.load(std::memory_order_relaxed));
  return out;
}

}  // namespace perftrack::server
