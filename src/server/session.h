// ptserverd per-connection session state.
//
// Each client connection owns one Session: its prepared statements, its
// open server-side cursors, and its session-scoped engine options. The
// Session is the protocol's only entry into the shared minidb Database, and
// every entry point is classified and gated:
//
//   SELECT / EXPLAIN   shared gate hold, kept for the cursor's lifetime so
//                      concurrent SELECTs from many sessions run in
//                      parallel while no writer can move pages under them;
//                      under WAL durability the cursor additionally pins a
//                      storage snapshot, and the shared hold conflicts only
//                      with schema changes — DML proceeds underneath;
//   INSERT/UPDATE/DELETE
//                      journal mode: exclusive gate hold for the statement,
//                      wrapped in the journal-protected commit. WAL mode:
//                      writer-only hold, commit appended to the WAL, hold
//                      released, then the group-commit fsync (batched with
//                      concurrent committers) before the OK frame;
//   DDL / VACUUM       exclusive gate hold in both modes (they rewrite the
//                      catalog and move pages under every version);
//   BEGIN/COMMIT/ROLLBACK
//                      rejected (autocommit only — interleaving frames from
//                      many clients inside one storage transaction would
//                      attribute writes to the wrong session).
//
// A Session is serviced by at most one pool worker at a time (the server
// never marks a connection readable while a request is in flight), so the
// members need no locking of their own; only the DbGate and the shared
// counters are cross-thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "server/dbgate.h"
#include "server/protocol.h"

namespace perftrack::server {

/// Session behavior knobs, shared by every session of one server.
struct SessionLimits {
  /// Gate-acquisition budget; expiry produces a BUSY error frame.
  std::chrono::milliseconds lock_timeout{5000};
  /// Server-side clamp on FETCH batch size.
  std::uint32_t max_fetch_rows = 4096;
  /// Batch size used when a FETCH asks for 0 rows.
  std::uint32_t default_fetch_rows = 256;
  /// Soft bound on one ROWS frame's payload; a batch ends early once
  /// crossed, so wide rows cannot balloon a frame toward kMaxFrameBytes.
  std::size_t fetch_byte_budget = 1u << 20;
  /// Whether the SHUTDOWN opcode is honored.
  bool allow_shutdown = true;
  /// Default parallel SELECT degree for new sessions (ptserverd
  /// --exec-threads). 0 = process default (PT_EXEC_THREADS or hardware
  /// concurrency), 1 = serial. Sessions may override via SET_OPTION; every
  /// session draws from the one process-wide ExecPool either way.
  int exec_threads = 0;
  /// Default inverted-index switch for new sessions (ptserverd --invidx).
  /// -1 = process default (PT_INVIDX, on by default); 0/1 force it off/on.
  /// Sessions may override via SET_OPTION.
  int invidx = -1;
};

/// Monotonic counters shared across sessions (STAT frames, tests, bench).
struct ServerCounters {
  std::atomic<std::uint32_t> sessions{0};
  std::atomic<std::uint64_t> frames_served{0};
  std::atomic<std::uint64_t> busy_rejections{0};
  /// Server-side cursors currently streaming (one per logical SELECT; the
  /// storage layer's pin count is higher, one pin per scan below it).
  std::atomic<std::uint32_t> open_cursors{0};
  /// Set once by PtServer::start() before any worker thread exists (the
  /// thread-creation fence publishes it), read-only afterwards.
  std::chrono::steady_clock::time_point start_time{};

  std::uint64_t uptimeMillis() const {
    if (start_time.time_since_epoch().count() == 0) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_time)
            .count());
  }
};

/// Prometheus text exposition: process-wide obs registry plus the server
/// gauges (sessions, frames, cursors, db sizes). Shared by the METRICS
/// wire verb and the HTTP metrics endpoint. Callers must NOT hold the
/// DbGate; the db size reads are plain file stats.
std::string renderServerMetrics(minidb::Database& db, const ServerCounters& counters);

class Session {
 public:
  Session(std::uint64_t id, minidb::Database& db, DbGate& gate,
          const SessionLimits& limits, ServerCounters& counters);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// What the worker should do after sending `response`.
  struct Outcome {
    Frame response;
    bool shutdown_requested = false;  // SHUTDOWN accepted: drain the server
    bool close_connection = false;    // unrecoverable framing damage
  };

  /// Serves one request frame. Never throws: every failure becomes an
  /// ERROR response frame so a bad request can't kill the daemon.
  Outcome handle(const Frame& request);

  /// Closes every open cursor (releasing its gate hold) and drops all
  /// statements. Idempotent; called on disconnect, reap, and drain.
  void teardown();

  std::uint64_t id() const { return id_; }
  std::size_t openCursorCount() const { return cursors_.size(); }
  std::size_t statementCount() const { return stmts_.size(); }

 private:
  struct CursorEntry {
    // Engaged for SELECT cursors; DIFF cursors stream `staged` instead (the
    // diagnosis materializes its ranked rows up front and holds no storage).
    std::optional<minidb::sql::Cursor> cursor;
    // Keeps the plan and AST alive even if the client closes the statement
    // (or the session re-prepares) while the cursor streams.
    std::shared_ptr<minidb::sql::PreparedStatement> stmt;
    bool holds_gate = false;
    // Pipeline rows pulled but not yet shipped: a FETCH that hits the byte
    // budget mid-batch parks the remainder here for the next FETCH.
    minidb::sql::RowBatch pending;
    std::size_t pending_pos = 0;
    // Pre-materialized rows for cursor-less (DIFF) results.
    std::vector<minidb::Row> staged;
    std::size_t staged_pos = 0;
  };

  Frame doHello(WireReader& r);
  Frame doPrepare(WireReader& r);
  Frame doBind(WireReader& r);
  Frame doExecute(WireReader& r);
  Frame doFetch(WireReader& r);
  Frame doCloseStmt(WireReader& r);
  Frame doCloseCursor(WireReader& r);
  Frame doSetOption(WireReader& r);
  Frame doStat(WireReader& r);
  Frame doMetrics(WireReader& r);
  Frame doDiff(WireReader& r);

  Frame executeSelect(const std::shared_ptr<minidb::sql::PreparedStatement>& stmt);
  Frame executeWrite(const std::shared_ptr<minidb::sql::PreparedStatement>& stmt);
  Frame executeDmlWal(const std::shared_ptr<minidb::sql::PreparedStatement>& stmt);
  void closeCursorEntry(CursorEntry& entry);

  std::uint64_t id_;
  minidb::Database* db_;
  DbGate* gate_;
  SessionLimits limits_;
  ServerCounters* counters_;
  minidb::sql::Engine engine_;  // session-scoped (use_indexes is per session)

  std::unordered_map<std::uint32_t, std::shared_ptr<minidb::sql::PreparedStatement>>
      stmts_;
  std::unordered_map<std::uint32_t, CursorEntry> cursors_;
  std::uint32_t next_stmt_id_ = 1;
  std::uint32_t next_cursor_id_ = 1;
  int gate_holds_ = 0;  // cursor-lifetime shared holds this session owns
  bool hello_done_ = false;
  // WAL durability: SELECT cursors pin storage snapshots (writers don't
  // block them) and DML commits through the group-commit path.
  bool snapshot_reads_ = false;
};

}  // namespace perftrack::server
