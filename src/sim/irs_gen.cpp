#include "sim/irs_gen.h"

#include <cstdio>
#include <fstream>

#include "sim/perfmodel.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace perftrack::sim {

namespace {

// Modules and per-module function stems, chosen to echo the real IRS source
// layout (radiation transport, matrix assembly, communication, zone physics).
struct ModuleSpec {
  const char* module;
  std::vector<const char*> functions;
};

const std::vector<ModuleSpec>& irsModules() {
  static const std::vector<ModuleSpec> kModules = {
      {"irsrad.c",
       {"rbndcom", "radsolve", "raddiff", "radflux", "radbc", "radinit", "radsrc",
        "radsum", "radtally", "radexch"}},
      {"irsmat.c",
       {"matasm", "matmult", "matdiag", "matscale", "matfree", "matsetup", "matnorm",
        "matcopy", "matzero", "matbound"}},
      {"irscg.c",
       {"cgsolve", "cgdot", "cgaxpy", "cgprecond", "cgresid", "cgrestart", "cginit",
        "cgnorm", "cgupdate", "cgcheck"}},
      {"irscom.c",
       {"comexch", "comgather", "comscatter", "combarrier", "comreduce", "combcast",
        "compack", "comunpack", "comsetup", "comfree"}},
      {"irszone.c",
       {"zoneupd", "zoneavg", "zonegrad", "zonevol", "zoneflux", "zonesrc", "zonesum",
        "zonemin", "zonemax", "zonecopy"}},
      {"irseos.c",
       {"eoslookup", "eosupdate", "eostable", "eosbound", "eosinterp", "eosclamp",
        "eosinit", "eosfree"}},
      {"irsio.c",
       {"iodump", "iorestart", "ioplot", "iostats", "ioinput", "ioecho"}},
      {"irshydro.c",
       {"hydrovel", "hydroacc", "hydrobc", "hydrodiv", "hydroqvisc", "hydrowork",
        "hydrodt", "hydropred", "hydrocorr", "hydroflux"}},
      {"irsmain.c",
       {"main", "timestep", "hydrostep", "radstep", "checkpoint", "cleanup"}},
  };
  return kModules;
}

}  // namespace

const std::vector<std::string>& irsFunctionNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const ModuleSpec& mod : irsModules()) {
      for (const char* fn : mod.functions) {
        names.push_back(std::string(mod.module) + ":" + fn);
      }
    }
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& irsBaseMetrics() {
  static const std::vector<std::string> kMetrics = {
      "CPU time", "wall time", "MPI time", "FP ops", "L2 misses"};
  return kMetrics;
}

const std::vector<std::string>& irsSummaryMetrics() {
  static const std::vector<std::string> kMetrics = {
      "total wall time", "figure of merit", "peak memory", "MPI fraction",
      "timestep count"};
  return kMetrics;
}

std::string IrsRunSpec::effectiveExecName() const {
  if (!exec_name.empty()) return exec_name;
  return "irs-" + util::toLower(machine.name) + "-np" + std::to_string(nprocs) + "-s" +
         std::to_string(seed);
}

namespace {

FunctionWork workFor(std::size_t function_index, std::uint64_t run_seed) {
  // Weights vary by two orders of magnitude; communication functions are
  // message-heavy, compute kernels flop-heavy. The workload depends ONLY on
  // (run seed, function) — the same "binary" run at different process
  // counts must do the same work, or scaling studies (Fig. 5, the §6
  // prediction extension) would compare unrelated computations.
  util::Rng rng(run_seed * 1000003 + function_index);
  FunctionWork work;
  const double scale = 0.5 + 4.0 * rng.uniform01();
  work.work_mflop = 2000.0 * scale / (1.0 + static_cast<double>(function_index % 17));
  work.serial_fraction = 0.002 + 0.01 * rng.uniform01();
  work.comm_bytes_per_proc = 200000.0 * rng.uniform01();
  work.messages_per_proc = static_cast<int>(rng.uniformInt(1, 60));
  return work;
}

}  // namespace

std::uint64_t GeneratedRun::rawBytes() const {
  std::uint64_t total = 0;
  for (const auto& file : files) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(file, ec);
    if (!ec) total += size;
  }
  return total;
}

GeneratedRun generateIrsRun(const IrsRunSpec& spec, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  util::Rng rng(spec.seed * 7919 + static_cast<std::uint64_t>(spec.nprocs));
  PerfModel model(spec.machine);
  const std::string exec = spec.effectiveExecName();
  GeneratedRun out;
  out.exec_name = exec;

  auto open = [&](const char* name) {
    const auto path = dir / name;
    out.files.push_back(path);
    std::ofstream stream(path);
    if (!stream) throw util::PTError("cannot create " + path.string());
    return stream;
  };

  // --- irs_stdout.txt -------------------------------------------------------
  {
    auto f = open("irs_stdout.txt");
    f << "IRS - Implicit Radiation Solver, ASC Purple Benchmark\n"
      << "Version: 1.4\n"
      << "Execution: " << exec << "\n"
      << "Machine: " << spec.machine.name << "\n"
      << "Concurrency: " << spec.concurrency << "\n"
      << "Processes: " << spec.nprocs << "\n"
      << "Zones: " << 1000 * spec.nprocs << "\n";
  }

  // --- irs_timing.txt -------------------------------------------------------
  double total_wall = 0.0;
  double total_mpi = 0.0;
  {
    auto f = open("irs_timing.txt");
    f << "IRS Function Timings, cumulative over all processes\n";
    f << "# function metric aggregate average max min\n";
    const auto& metrics = irsBaseMetrics();
    std::size_t index = 0;
    for (const std::string& qualified : irsFunctionNames()) {
      const FunctionWork work = workFor(index, spec.seed);
      // Per-function stable stream for metric applicability and derived-
      // metric factors: the same run seed must see the same table shape at
      // every process count.
      util::Rng fn_rng(spec.seed * 7907 + index * 31 + 5);
      const FunctionTiming wall = model.run(work, spec.nprocs, rng);
      ++index;
      total_wall += wall.maximum();
      for (const std::string& metric : metrics) {
        // "Sometimes one of the values or metrics doesn't apply": about 5%
        // of rows are skipped, so executions differ slightly in size.
        if (fn_rng.chance(0.05)) continue;
        // Derive non-time metrics from the wall profile deterministically.
        double factor = 1.0;
        if (metric == "CPU time") {
          factor = 0.92;
        } else if (metric == "MPI time") {
          factor = 0.18 * fn_rng.uniform(0.5, 1.5);
        } else if (metric == "FP ops") {
          factor = spec.machine.per_proc_mflops * 1e6 * 0.7;
        } else if (metric == "L2 misses") {
          factor = 4.0e5 * fn_rng.uniform(0.8, 1.2);
        }
        if (metric == "MPI time") total_mpi += wall.aggregate() * factor;
        char line[256];
        std::snprintf(line, sizeof(line), "%s %s %.6g %.6g %.6g %.6g\n",
                      qualified.c_str(), ("\"" + metric + "\"").c_str(),
                      wall.aggregate() * factor, wall.average() * factor,
                      wall.maximum() * factor, wall.minimum() * factor);
        f << line;
      }
    }
  }

  // --- irs_summary.txt ------------------------------------------------------
  {
    auto f = open("irs_summary.txt");
    f << "IRS Run Summary\n";
    f << "total wall time = " << util::formatReal(total_wall) << " seconds\n";
    f << "figure of merit = "
      << util::formatReal(1000.0 * spec.nprocs / (total_wall + 1e-9)) << " zones/sec\n";
    f << "peak memory = " << util::formatReal(180.0 + 2.0 * spec.nprocs) << " MB\n";
    f << "MPI fraction = "
      << util::formatReal(total_mpi / (total_wall * spec.nprocs + 1e-9)) << " ratio\n";
    f << "timestep count = " << 100 << " steps\n";
  }

  // --- irs_env.txt ----------------------------------------------------------
  {
    auto f = open("irs_env.txt");
    f << "# runtime environment captured by PTrun\n";
    f << "execution=" << exec << "\n";
    f << "machine=" << spec.machine.name << "\n";
    f << "os=" << spec.machine.os_name << " " << spec.machine.os_version << "\n";
    f << "nprocs=" << spec.nprocs << "\n";
    f << "nthreads=" << (spec.concurrency.find("OpenMP") != std::string::npos ? 4 : 1)
      << "\n";
    f << "concurrency=" << spec.concurrency << "\n";
    f << "inputdeck=irs_3d_std.in\n";
    f << "inputdeck_timestamp=2005-03-14T09:26:00\n";
    f << "submission=psub -ln " << (spec.nprocs / spec.machine.processors_per_node + 1)
      << "\n";
    f << "envvar:OMP_NUM_THREADS=4\n";
    f << "envvar:MP_SHARED_MEMORY=yes\n";
    f << "envvar:LLNL_COMPILE_SINGLE_THREADED=FALSE\n";
    f << "dynlib:/usr/lib/libmpi.so:32:MPI:2005-01-07T12:00:00\n";
    f << "dynlib:/usr/lib/libpthread.so:12:thread:2004-11-02T08:30:00\n";
    f << "dynlib:/usr/lib/libm.so:8:math:2004-10-20T10:10:00\n";
  }

  // --- irs_build.txt ----------------------------------------------------------
  {
    auto f = open("irs_build.txt");
    const bool aix = spec.machine.os_name == "AIX";
    f << "# build environment captured by PTbuild\n";
    f << "application=IRS\n";
    f << "build_machine=" << spec.machine.name << "0\n";
    f << "build_os=" << spec.machine.os_name << " " << spec.machine.os_version << "\n";
    f << "compiler=" << (aix ? "xlc" : "icc") << "\n";
    f << "compiler_version=" << (aix ? "6.0.0.8" : "8.1") << "\n";
    f << "compiler_flags=-O3 " << (aix ? "-qarch=pwr3 -qsmp=omp" : "-xW -openmp") << "\n";
    f << "mpi_wrapper=mpcc\n";
    f << "preprocessor=cpp\n";
    f << "staticlib:libhypre.a:1.8.4:solver\n";
    f << "staticlib:libirsutil.a:1.4:util\n";
    f << "build_timestamp=2005-03-10T14:12:00\n";
  }

  // --- irs_input.txt ----------------------------------------------------------
  {
    auto f = open("irs_input.txt");
    f << "# input deck: irs_3d_std.in\n"
      << "geometry = 3d\n"
      << "zones_per_domain = 1000\n"
      << "domains = " << spec.nprocs << "\n"
      << "timesteps = 100\n";
  }

  return out;
}

}  // namespace perftrack::sim
