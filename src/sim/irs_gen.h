// PerfTrack simulation: IRS benchmark run generator (case study §4.1).
//
// IRS (Implicit Radiation Solver) is an ASC Purple benchmark written in C
// using MPI/OpenMP. A standard run "outputs several data files", with
// "timings for approximately 80 different functions ... For each function,
// the aggregate, average, max and min values for five different metrics are
// reported. Sometimes one of the values or metrics doesn't apply", yielding
// ~1500 performance results per execution plus a handful of whole-program
// summary values.
//
// This generator reproduces that output shape: six files per run —
//   irs_stdout.txt   banner: version, machine, process count, concurrency
//   irs_timing.txt   per-function table: metric x {aggregate,average,max,min}
//   irs_summary.txt  whole-program metrics (wall time, FOM, memory, ...)
//   irs_env.txt      runtime environment capture (consumed by collect/)
//   irs_build.txt    build environment capture (consumed by collect/)
//   irs_input.txt    input deck description
// with timings produced by the analytic PerfModel on the target machine.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/machines.h"

namespace perftrack::sim {

/// ~80 IRS function names (module-qualified as module.c:function).
const std::vector<std::string>& irsFunctionNames();

/// The five per-function base metrics IRS reports.
const std::vector<std::string>& irsBaseMetrics();

/// Whole-program summary metrics.
const std::vector<std::string>& irsSummaryMetrics();

struct IrsRunSpec {
  MachineConfig machine;
  int nprocs = 8;
  std::string concurrency = "MPI";  // MPI | OpenMP | MPI/OpenMP | serial
  std::uint64_t seed = 1;
  std::string exec_name;  // empty = derived "irs-<machine>-np<P>-s<seed>"

  std::string effectiveExecName() const;
};

struct GeneratedRun {
  std::string exec_name;
  std::vector<std::filesystem::path> files;
  std::uint64_t rawBytes() const;  // total size of the generated files
};

/// Writes one IRS run's output files into `dir` (created if needed).
GeneratedRun generateIrsRun(const IrsRunSpec& spec, const std::filesystem::path& dir);

}  // namespace perftrack::sim
