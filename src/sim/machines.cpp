#include "sim/machines.h"

#include <algorithm>

#include "ptdf/ptdf.h"

namespace perftrack::sim {

std::string MachineConfig::machineResource() const {
  return "/" + grid_name + "/" + name;
}

std::string MachineConfig::partitionResource() const {
  return machineResource() + "/" + partition;
}

std::string MachineConfig::nodeResource(int node) const {
  return partitionResource() + "/" + name + std::to_string(node);
}

std::string MachineConfig::processorResource(int node, int proc) const {
  return nodeResource(node) + "/p" + std::to_string(proc);
}

MachineConfig frostConfig() {
  MachineConfig m;
  m.grid_name = "SingleMachineFrost";
  m.name = "Frost";
  m.os_name = "AIX";
  m.os_version = "5.2";
  m.partition = "batch";
  m.nodes = 68;
  m.processors_per_node = 16;
  m.processor = {"IBM", "Power3", 375};
  m.interconnect = "SP Switch2";
  m.per_proc_mflops = 1500.0;
  m.network_latency_us = 18.0;
  m.network_bw_mbps = 500.0;
  m.noise_amplitude = 0.035;  // full AIX on every node
  return m;
}

MachineConfig mcrConfig() {
  MachineConfig m;
  m.grid_name = "SingleMachineMCR";
  m.name = "MCR";
  m.os_name = "Linux";
  m.os_version = "CHAOS 2.0";
  m.partition = "batch";
  m.nodes = 1152;
  m.processors_per_node = 2;
  m.processor = {"Intel", "Xeon", 2400};
  m.interconnect = "Quadrics QsNet";
  m.per_proc_mflops = 4800.0;
  m.network_latency_us = 5.0;
  m.network_bw_mbps = 2400.0;
  m.noise_amplitude = 0.02;  // stock Linux cluster daemons
  return m;
}

MachineConfig bglConfig() {
  MachineConfig m;
  m.grid_name = "SingleMachineBGL";
  m.name = "BGL";
  m.os_name = "CNK";  // BlueGene/L compute-node kernel
  m.os_version = "1.0";
  m.partition = "batch";
  m.nodes = 16384;
  m.processors_per_node = 2;
  m.processor = {"IBM", "PowerPC440", 700};
  m.interconnect = "3D torus";
  m.per_proc_mflops = 2800.0;
  m.network_latency_us = 3.0;
  m.network_bw_mbps = 1400.0;
  m.noise_amplitude = 0.0005;  // nearly noiseless compute kernel
  return m;
}

MachineConfig uvConfig() {
  MachineConfig m;
  m.grid_name = "SingleMachineUV";
  m.name = "UV";
  m.os_name = "AIX";
  m.os_version = "5.3";
  m.partition = "batch";
  m.nodes = 128;
  m.processors_per_node = 8;
  m.processor = {"IBM", "Power4+", 1500};
  m.interconnect = "HPS Federation";
  m.per_proc_mflops = 6000.0;
  m.network_latency_us = 7.0;
  m.network_bw_mbps = 2000.0;
  m.noise_amplitude = 0.03;
  return m;
}

void emitMachinePtdf(ptdf::Writer& writer, const MachineConfig& config, int max_nodes) {
  const std::string type = "grid/machine/partition/node/processor";
  writer.comment("machine description: " + config.name);
  writer.resource("/" + config.grid_name, "grid");
  writer.resource(config.machineResource(), "grid/machine");
  writer.resourceAttribute(config.machineResource(), "vendor", config.processor.vendor);
  writer.resourceAttribute(config.machineResource(), "operating system", config.os_name);
  writer.resourceAttribute(config.machineResource(), "os version", config.os_version);
  writer.resourceAttribute(config.machineResource(), "interconnect", config.interconnect);
  writer.resourceAttribute(config.machineResource(), "node count",
                           std::to_string(config.nodes));
  writer.resourceAttribute(config.machineResource(), "processors per node",
                           std::to_string(config.processors_per_node));
  writer.resource(config.partitionResource(), "grid/machine/partition");
  const int node_count = std::min(config.nodes, max_nodes);
  for (int node = 0; node < node_count; ++node) {
    writer.resource(config.nodeResource(node), "grid/machine/partition/node");
    for (int proc = 0; proc < config.processors_per_node; ++proc) {
      writer.resource(config.processorResource(node, proc), type);
      writer.resourceAttribute(config.processorResource(node, proc), "vendor",
                               config.processor.vendor);
      writer.resourceAttribute(config.processorResource(node, proc), "processor type",
                               config.processor.model);
      writer.resourceAttribute(config.processorResource(node, proc), "clock MHz",
                               std::to_string(config.processor.clock_mhz));
    }
  }
}

}  // namespace perftrack::sim
