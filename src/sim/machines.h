// PerfTrack simulation: machine descriptions.
//
// The paper's case studies ran on real LLNL systems: Frost (IBM SP, AIX),
// MCR (Linux/Xeon cluster), BlueGene/L, and UV (Power4+ early-delivery
// Purple hardware). We cannot run on those machines, so this module carries
// faithful *descriptions* of them — enough detail to populate the grid
// hierarchy and resource attributes exactly the way PerfTrack's collection
// scripts would have — plus analytic performance parameters used by the
// synthetic workload generators (see perfmodel.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace perftrack {
namespace ptdf {
class Writer;
}

namespace sim {

struct ProcessorSpec {
  std::string vendor;
  std::string model;
  int clock_mhz = 0;
};

struct MachineConfig {
  std::string grid_name;   // top-level grid resource, e.g. "SingleMachineFrost"
  std::string name;        // machine resource, e.g. "Frost"
  std::string os_name;     // AIX / Linux / CNK
  std::string os_version;
  std::string partition;   // "batch" in all case studies
  int nodes = 0;
  int processors_per_node = 0;
  ProcessorSpec processor;
  std::string interconnect;

  // Analytic model parameters (used by sim::PerfModel).
  double per_proc_mflops = 0.0;     // sustained per-processor throughput
  double network_latency_us = 0.0;  // point-to-point latency
  double network_bw_mbps = 0.0;     // per-link bandwidth
  double noise_amplitude = 0.0;     // OS-noise scale: fraction of compute time
                                    // a process may lose to daemons/interrupts
                                    // per quantum (BG/L's CNK ~ 0, AIX/Linux
                                    // clusters noticeably higher — the driver
                                    // of the Fig. 5 load-imbalance shape)

  int totalProcessors() const { return nodes * processors_per_node; }

  /// Full resource name of the machine ("/<grid>/<name>").
  std::string machineResource() const;
  /// Full resource name of the batch partition.
  std::string partitionResource() const;
  /// Full resource name of node `node`.
  std::string nodeResource(int node) const;
  /// Full resource name of processor `proc` of node `node`.
  std::string processorResource(int node, int proc) const;
};

/// Frost: 68-node IBM SP, 16-way 375 MHz Power3 nodes, AIX (§4.1).
MachineConfig frostConfig();
/// MCR: 1152-node Linux cluster, dual 2.4 GHz Xeon nodes (§4.1).
MachineConfig mcrConfig();
/// BlueGene/L early-installation partition: 16k PowerPC 440 nodes (§4.2).
MachineConfig bglConfig();
/// UV: 128 8-way Power4+ 1.5 GHz nodes, ASC Purple early delivery (§4.2).
MachineConfig uvConfig();

/// Emits the machine description as PTdf: grid hierarchy resources for
/// `max_nodes` nodes (cap keeps BG/L-sized machines loadable) plus the
/// attributes PerfTrack's collection scripts record (vendor, processor
/// type, clock MHz, OS, interconnect).
void emitMachinePtdf(ptdf::Writer& writer, const MachineConfig& config, int max_nodes);

}  // namespace sim
}  // namespace perftrack
