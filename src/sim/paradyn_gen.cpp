#include "sim/paradyn_gen.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace perftrack::sim {

std::string ParadynRunSpec::effectiveExecName() const {
  if (!exec_name.empty()) return exec_name;
  return "paradyn-irs-" + util::toLower(machine.name) + "-np" + std::to_string(nprocs) +
         "-s" + std::to_string(seed);
}

const std::vector<std::string>& paradynMetrics() {
  static const std::vector<std::string> kMetrics = {
      "cpu",          "cpu_inclusive",  "exec_time",     "sync_wait",
      "msg_bytes_sent", "msg_bytes_recv", "io_wait",     "proc_calls",
  };
  return kMetrics;
}

namespace {

const char* kModules[] = {"irsrad.c", "irsmat.c",   "irscg.c",  "irscom.c",
                          "libc.so",  "libmpi.so",  "libm.so",  "DEFAULT_MODULE"};

std::string codeResource(int index) {
  const char* module = kModules[index % std::size(kModules)];
  return std::string("/Code/") + module + "/fn_" + std::to_string(index);
}

}  // namespace

GeneratedRun generateParadynRun(const ParadynRunSpec& spec,
                                const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  util::Rng rng(spec.seed * 31337 + static_cast<std::uint64_t>(spec.nprocs));
  const std::string exec = spec.effectiveExecName();
  GeneratedRun out;
  out.exec_name = exec;

  // --- resources file ---------------------------------------------------------
  {
    const auto path = dir / "resources.txt";
    out.files.push_back(path);
    std::ofstream f(path);
    if (!f) throw util::PTError("cannot create " + path.string());
    f << "# Paradyn resource list, session " << exec << "\n";
    for (int i = 0; i < spec.code_resources; ++i) {
      f << codeResource(i) << "\n";
    }
    for (int p = 0; p < spec.nprocs; ++p) {
      const int node = p / std::max(1, spec.machine.processors_per_node);
      f << "/Machine/" << spec.machine.name << node << "/irs{" << 12000 + p << "}\n";
    }
    for (int c = 0; c < 16; ++c) {
      f << "/SyncObject/Message/" << 100 + c << "\n";
    }
    f << "/SyncObject/Window/0\n";
  }

  // --- histograms + index ------------------------------------------------------
  {
    const auto index_path = dir / "index.txt";
    std::ofstream index(index_path);
    if (!index) throw util::PTError("cannot create " + index_path.string());
    index << "# histogram_file metric focus\n";
    for (int h = 0; h < spec.metric_focus_pairs; ++h) {
      const std::string& metric = paradynMetrics()[h % paradynMetrics().size()];
      // Focus: a code function and either a process or whole machine, plus
      // occasionally a sync object.
      std::string focus = codeResource(static_cast<int>(rng.uniformInt(0, 99)));
      if (rng.chance(0.7)) {
        const int p = static_cast<int>(rng.uniformInt(0, spec.nprocs - 1));
        const int node = p / std::max(1, spec.machine.processors_per_node);
        focus += ",/Machine/" + spec.machine.name + std::to_string(node) + "/irs{" +
                 std::to_string(12000 + p) + "}";
      }
      if (rng.chance(0.15)) {
        focus += ",/SyncObject/Message/" +
                 std::to_string(100 + rng.uniformInt(0, 15));
      }
      char histname[64];
      std::snprintf(histname, sizeof(histname), "histogram_%03d.hist", h);
      index << histname << " " << metric << " \"" << focus << "\"\n";

      const auto hist_path = dir / histname;
      out.files.push_back(hist_path);
      std::ofstream hist(hist_path);
      if (!hist) throw util::PTError("cannot create " + hist_path.string());
      const double bin_width = 0.2;  // seconds per bin
      hist << "# Paradyn histogram export\n"
           << "metric: " << metric << "\n"
           << "focus: " << focus << "\n"
           << "numBins: " << spec.histogram_bins << "\n"
           << "binWidth: " << bin_width << "\n";
      // Dynamic instrumentation starts some way into the run; earlier bins
      // are nan. The start bin differs per histogram and per session seed.
      const int start_bin = static_cast<int>(rng.uniformInt(0, spec.histogram_bins / 5));
      const int end_bin = spec.histogram_bins -
                          static_cast<int>(rng.uniformInt(0, spec.histogram_bins / 20));
      double level = rng.uniform(0.05, 1.0);
      for (int b = 0; b < spec.histogram_bins; ++b) {
        if (b < start_bin || b >= end_bin) {
          hist << "nan\n";
          continue;
        }
        level = std::max(0.0, level + rng.normal(0.0, 0.02));
        hist << util::formatReal(level * bin_width) << "\n";
      }
    }
    out.files.push_back(index_path);
  }

  // --- search history graph (generated for fidelity; not loaded) --------------
  {
    const auto path = dir / "shg.txt";
    out.files.push_back(path);
    std::ofstream f(path);
    if (!f) throw util::PTError("cannot create " + path.string());
    f << "# Performance Consultant search history graph\n"
      << "TopLevelHypothesis true\n"
      << "  ExcessiveSyncWaitingTime true /Code\n"
      << "    ExcessiveSyncWaitingTime false /Code/irscom.c\n"
      << "  CPUBound true /Code/irscg.c\n";
  }

  return out;
}

}  // namespace perftrack::sim
