// PerfTrack simulation: Paradyn session export generator (case study §4.3).
//
// Paradyn measures long-running programs via dynamic instrumentation and can
// export a session as text files:
//   * histogram files — one per metric-focus pair: a header (metric, focus,
//     bin count, seconds per bin) followed by one value per bin; bins the
//     instrumentation missed (inserted late / removed early) read "nan",
//   * an index file naming each histogram file with its metric-focus pair,
//   * a resources file listing every Paradyn resource (/Code/..., /Machine/...,
//     /SyncObject/...),
//   * a search history graph from the Performance Consultant (exported but
//     not loaded by PerfTrack; we generate it for fidelity and ignore it).
//
// Scale mirrors §4.3: each execution has ~17,000 resources (dominated by the
// function list of every linked module), 8 metrics, and ~25,000 performance
// results (metric-focus pairs x non-nan bins). Dynamic instrumentation start
// times differ per run, so counts vary between executions.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/irs_gen.h"  // GeneratedRun
#include "sim/machines.h"

namespace perftrack::sim {

struct ParadynRunSpec {
  MachineConfig machine;
  int nprocs = 8;
  std::uint64_t seed = 1;
  std::string exec_name;        // empty = derived
  int histogram_bins = 1000;    // Paradyn's fixed-size data arrays
  int metric_focus_pairs = 25;  // histograms exported
  int code_resources = 16000;   // functions across all linked modules

  std::string effectiveExecName() const;
};

/// Paradyn metrics used by the generated sessions (8, per Table 1 row 3).
const std::vector<std::string>& paradynMetrics();

/// Writes a session export into `dir`: histogram_<N>.hist files, index.txt,
/// resources.txt, shg.txt.
GeneratedRun generateParadynRun(const ParadynRunSpec& spec,
                                const std::filesystem::path& dir);

}  // namespace perftrack::sim
