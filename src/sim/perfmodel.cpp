#include "sim/perfmodel.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace perftrack::sim {

double FunctionTiming::aggregate() const {
  return std::accumulate(per_process_seconds.begin(), per_process_seconds.end(), 0.0);
}

double FunctionTiming::average() const {
  if (per_process_seconds.empty()) return 0.0;
  return aggregate() / static_cast<double>(per_process_seconds.size());
}

double FunctionTiming::maximum() const {
  if (per_process_seconds.empty()) return 0.0;
  return *std::max_element(per_process_seconds.begin(), per_process_seconds.end());
}

double FunctionTiming::minimum() const {
  if (per_process_seconds.empty()) return 0.0;
  return *std::min_element(per_process_seconds.begin(), per_process_seconds.end());
}

double PerfModel::idealSeconds(const FunctionWork& fn, int nprocs) const {
  if (nprocs <= 0) throw util::ModelError("PerfModel: nprocs must be positive");
  const double p = static_cast<double>(nprocs);
  // Amdahl split of the compute work.
  const double compute =
      fn.work_mflop / machine_.per_proc_mflops *
      (fn.serial_fraction + (1.0 - fn.serial_fraction) / p);
  // Communication: latency per message plus bandwidth cost; the latency
  // term grows ~log2(p) as collective trees deepen.
  double comm = 0.0;
  if (nprocs > 1) {
    const double tree_depth = std::max(1.0, std::log2(p));
    comm = fn.messages_per_proc * machine_.network_latency_us * 1e-6 * tree_depth +
           fn.comm_bytes_per_proc * 8.0 / (machine_.network_bw_mbps * 1e6);
  }
  return compute + comm;
}

FunctionTiming PerfModel::run(const FunctionWork& fn, int nprocs, util::Rng& rng) const {
  const double ideal = idealSeconds(fn, nprocs);
  FunctionTiming timing;
  timing.per_process_seconds.resize(static_cast<std::size_t>(nprocs));
  for (double& t : timing.per_process_seconds) {
    // Noise: expected interruption loss = noise_amplitude * ideal, drawn
    // exponentially so a few processes are hit much harder than average —
    // that heavy tail is what makes max >> min at large p on noisy OSes.
    const double noise =
        machine_.noise_amplitude > 0.0
            ? rng.exponential(1.0 / (machine_.noise_amplitude * ideal + 1e-12))
            : 0.0;
    // Small symmetric measurement jitter (~0.5%).
    const double jitter = 1.0 + 0.005 * rng.normal();
    t = std::max(0.0, ideal * jitter + noise);
  }
  return timing;
}

}  // namespace perftrack::sim
