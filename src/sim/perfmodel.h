// PerfTrack simulation: analytic performance model with OS noise.
//
// The generators need per-function, per-process timings whose *shape*
// matches real parallel runs: computation that scales ~1/p modulo a serial
// fraction (Amdahl), communication that grows with p, and an OS-noise term
// that widens the min/max spread across processes as p grows (the paper's
// Fig. 5 load-balance chart; the §4.2 data came from the Ipek et al. noise
// study of exactly this effect). Noise is modeled per process as a sum of
// exponentially-distributed interruption delays whose rate scales with the
// machine's noise_amplitude; the maximum over p samples grows ~log p, so
// larger runs show worse imbalance on noisy machines and almost none on
// BG/L's compute kernel.
#pragma once

#include <utility>
#include <vector>

#include "sim/machines.h"
#include "util/rng.h"

namespace perftrack::sim {

/// Workload description for one program function.
struct FunctionWork {
  double work_mflop = 0.0;        // total floating-point work, split over p
  double serial_fraction = 0.0;   // non-parallelizable share [0,1)
  double comm_bytes_per_proc = 0.0;  // exchanged per process per run
  int messages_per_proc = 0;      // latency-bound message count
};

/// Per-process timings for one function at one process count.
struct FunctionTiming {
  std::vector<double> per_process_seconds;  // size = nprocs

  double aggregate() const;  // sum over processes
  double average() const;
  double maximum() const;
  double minimum() const;
};

class PerfModel {
 public:
  /// Copies the config: a PerfModel stays valid past the argument's lifetime
  /// (callers routinely pass temporaries like `PerfModel(mcrConfig())`).
  explicit PerfModel(MachineConfig machine) : machine_(std::move(machine)) {}

  /// Ideal (noise-free) time of `fn` on one process out of `nprocs`.
  double idealSeconds(const FunctionWork& fn, int nprocs) const;

  /// Per-process times including noise. Deterministic for a given rng state.
  FunctionTiming run(const FunctionWork& fn, int nprocs, util::Rng& rng) const;

 private:
  MachineConfig machine_;
};

}  // namespace perftrack::sim
