#include "sim/smg_gen.h"

#include <cstdio>
#include <fstream>

#include "sim/perfmodel.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace perftrack::sim {

std::string SmgRunSpec::effectiveExecName() const {
  if (!exec_name.empty()) return exec_name;
  return "smg-" + util::toLower(machine.name) + "-np" + std::to_string(nprocs) + "-s" +
         std::to_string(seed);
}

const std::vector<std::string>& smgOutputMetrics() {
  static const std::vector<std::string> kMetrics = {
      "struct interface time", "SMG setup time",      "SMG solve time",
      "iterations",            "final relative norm", "setup wall MFLOPS",
      "solve wall MFLOPS",     "total wall time",
  };
  return kMetrics;
}

const std::vector<std::string>& pmapiCounters() {
  static const std::vector<std::string> kCounters = {
      "PM_CYC",        "PM_INST_CMPL", "PM_FPU0_CMPL", "PM_FPU1_CMPL",
      "PM_LD_MISS_L1", "PM_ST_MISS_L1", "PM_LSU_LDF",  "PM_TLB_MISS",
  };
  return kCounters;
}

const std::vector<std::string>& mpipOperations() {
  static const std::vector<std::string> kOps = {
      "Isend", "Irecv", "Waitall", "Allreduce", "Bcast", "Barrier", "Send", "Recv",
  };
  return kOps;
}

namespace {

struct Callsite {
  int id;
  std::string file;
  int line;
  std::string parent_function;  // caller
  std::string mpi_call;         // callee (MPI operation)
};

const std::vector<Callsite>& makeCallsites() {
  static const char* kFiles[] = {"smg_setup.c", "smg_solve.c", "smg_relax.c",
                                 "struct_communication.c", "cyclic_reduction.c"};
  static const char* kParents[] = {"hypre_SMGSetup",      "hypre_SMGSolve",
                                   "hypre_SMGRelax",      "hypre_StructCommunicate",
                                   "hypre_CyclicReduction"};
  // Callsites are a property of the SMG2000 *binary*, identical for every
  // run — otherwise per-run metric names would multiply across executions
  // (Table 1 reports a fixed 259 metrics for the whole SMG-UV dataset).
  // ~80 sites: each MPI op appears at ~10 places, which combined with the
  // 3 statistics per site and the benchmark/PMAPI metrics lands near the
  // paper's count.
  static const std::vector<Callsite> kSites = [] {
    util::Rng rng(424242);  // fixed: the "binary layout" seed
    std::vector<Callsite> sites;
    int id = 1;
    for (const std::string& op : mpipOperations()) {
      const int count = static_cast<int>(rng.uniformInt(9, 11));
      for (int i = 0; i < count; ++i) {
        const int f = static_cast<int>(rng.uniformInt(0, 4));
        sites.push_back({id++, kFiles[f], static_cast<int>(rng.uniformInt(40, 900)),
                         kParents[f], op});
      }
    }
    return sites;
  }();
  return kSites;
}

}  // namespace

GeneratedRun generateSmgRun(const SmgRunSpec& spec, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  util::Rng rng(spec.seed * 104729 + static_cast<std::uint64_t>(spec.nprocs));
  PerfModel model(spec.machine);
  const std::string exec = spec.effectiveExecName();
  GeneratedRun out;
  out.exec_name = exec;

  // Phase workloads: setup is latency-bound, solve is compute+bandwidth.
  FunctionWork setup;
  setup.work_mflop = 9000.0;
  setup.serial_fraction = 0.01;
  setup.comm_bytes_per_proc = 4.0e6;
  setup.messages_per_proc = 600;
  FunctionWork solve;
  solve.work_mflop = 80000.0;
  solve.serial_fraction = 0.004;
  solve.comm_bytes_per_proc = 2.5e7;
  solve.messages_per_proc = 2200;
  const FunctionTiming setup_t = model.run(setup, spec.nprocs, rng);
  const FunctionTiming solve_t = model.run(solve, spec.nprocs, rng);
  const double setup_max = setup_t.maximum();
  const double solve_max = solve_t.maximum();

  {
    const auto path = dir / "smg_stdout.txt";
    out.files.push_back(path);
    std::ofstream f(path);
    if (!f) throw util::PTError("cannot create " + path.string());
    f << "Running with these driver parameters:\n"
      << "  (nx, ny, nz)    = (" << 40 << ", " << 40 << ", " << 40 << ")\n"
      << "  (P, Q, R)       = (" << spec.nprocs << ", 1, 1)\n"
      << "  execution       = " << exec << "\n"
      << "  machine         = " << spec.machine.name << "\n"
      << "=============================================\n"
      << "Struct Interface:\n"
      << "  wall clock time = " << util::formatReal(0.04 + 0.001 * spec.nprocs)
      << " seconds\n"
      << "=============================================\n"
      << "SMG Setup:\n"
      << "  wall clock time = " << util::formatReal(setup_max) << " seconds\n"
      << "  wall MFLOPS     = " << util::formatReal(setup.work_mflop / setup_max)
      << "\n"
      << "=============================================\n"
      << "SMG Solve:\n"
      << "  wall clock time = " << util::formatReal(solve_max) << " seconds\n"
      << "  wall MFLOPS     = " << util::formatReal(solve.work_mflop / solve_max)
      << "\n"
      << "Iterations = " << 7 << "\n"
      << "Final Relative Residual Norm = "
      << util::formatReal(1e-7 * rng.uniform(0.5, 2.0)) << "\n"
      << "Total wall time = " << util::formatReal(setup_max + solve_max) << " seconds\n";

    if (spec.with_pmapi) {
      f << "=============================================\n"
        << "PMAPI hardware counter data (per task):\n";
      const double cycles_base = (setup_max + solve_max) *
                                 spec.machine.processor.clock_mhz * 1e6;
      for (int task = 0; task < spec.nprocs; ++task) {
        for (const std::string& counter : pmapiCounters()) {
          double scale = 1.0;
          if (counter == "PM_INST_CMPL") scale = 0.8;
          if (counter == "PM_FPU0_CMPL" || counter == "PM_FPU1_CMPL") scale = 0.2;
          if (counter == "PM_LD_MISS_L1" || counter == "PM_ST_MISS_L1") scale = 0.01;
          if (counter == "PM_LSU_LDF") scale = 0.25;
          if (counter == "PM_TLB_MISS") scale = 0.0004;
          const double v = cycles_base * scale * rng.uniform(0.9, 1.1);
          char line[128];
          std::snprintf(line, sizeof(line), "PMAPI task %d %s %.0f\n", task,
                        counter.c_str(), v);
          f << line;
        }
      }
    }
  }

  if (spec.with_mpip) {
    const auto path = dir / "smg_mpip.txt";
    out.files.push_back(path);
    std::ofstream f(path);
    if (!f) throw util::PTError("cannot create " + path.string());
    const auto& sites = makeCallsites();
    const double app_time = setup_max + solve_max;
    f << "@ mpiP\n"
      << "@ Command : smg2000 -n 40 40 40\n"
      << "@ Version : 2.8.1\n"
      << "@ MPI Task Assignment : 0 " << spec.machine.name << "0\n"
      << "@ Execution : " << exec << "\n"
      << "@--- MPI Time (seconds) " << std::string(40, '-') << "\n"
      << "Task    AppTime    MPITime     MPI%\n";
    std::vector<double> task_mpi(static_cast<std::size_t>(spec.nprocs));
    for (int task = 0; task < spec.nprocs; ++task) {
      task_mpi[task] = app_time * rng.uniform(0.12, 0.35);
      char line[128];
      std::snprintf(line, sizeof(line), "%4d %10.4g %10.4g %8.2f\n", task, app_time,
                    task_mpi[task], 100.0 * task_mpi[task] / app_time);
      f << line;
    }
    f << "@--- Callsites: " << sites.size() << " " << std::string(40, '-') << "\n"
      << " ID Lev File/Address        Line Parent_Funct             MPI_Call\n";
    for (const Callsite& site : sites) {
      char line[192];
      std::snprintf(line, sizeof(line), "%3d   0 %-19s %4d %-24s %s\n", site.id,
                    site.file.c_str(), site.line, site.parent_function.c_str(),
                    site.mpi_call.c_str());
      f << line;
    }
    f << "@--- Callsite Time statistics (all, milliseconds) "
      << std::string(30, '-') << "\n"
      << "Name          Site Rank   Count      Max     Mean      Min\n";
    for (const Callsite& site : sites) {
      const double site_share = rng.uniform(0.005, 0.08);
      for (int task = 0; task < spec.nprocs; ++task) {
        // mpiP only reports ranks that actually executed the callsite;
        // roughly a third of the ranks hit any given site in these runs.
        if (!rng.chance(0.33)) continue;
        const double mean_ms = task_mpi[task] * site_share * 1000.0 /
                               static_cast<double>(sites.size()) * 8.0;
        const double max_ms = mean_ms * rng.uniform(1.2, 3.0);
        const double min_ms = mean_ms * rng.uniform(0.2, 0.9);
        const int count = static_cast<int>(rng.uniformInt(50, 4000));
        char line[192];
        std::snprintf(line, sizeof(line), "%-13s %4d %4d %7d %8.3g %8.3g %8.3g\n",
                      site.mpi_call.c_str(), site.id, task, count, max_ms, mean_ms,
                      min_ms);
        f << line;
      }
    }
  }
  return out;
}

}  // namespace perftrack::sim
