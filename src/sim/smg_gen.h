// PerfTrack simulation: SMG2000 noise-study run generator (case study §4.2).
//
// The paper's second study loaded SMG2000 (an ASC Purple semicoarsening
// multigrid benchmark) data from BlueGene/L and UV, collected for the Ipek
// et al. noise/performance-prediction study. Three data kinds appear:
//   * the standard SMG2000 output — "only eight data values on the level of
//     the whole execution" (Figure 7),
//   * PMAPI hardware-counter data appended to the run output (Figure 7),
//   * an mpiP profile with per-callsite, per-rank breakdowns including the
//     calling function (Figure 8) — the data that motivated multi-resource-
//     set performance results.
//
// generateSmgRun() writes
//   smg_stdout.txt   SMG output (+ PMAPI counter section when enabled)
//   smg_mpip.txt     mpiP report (when enabled)
// using the analytic PerfModel for all timings.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/irs_gen.h"  // GeneratedRun
#include "sim/machines.h"

namespace perftrack::sim {

struct SmgRunSpec {
  MachineConfig machine;
  int nprocs = 64;
  bool with_mpip = false;   // UV runs carried mpiP profiles
  bool with_pmapi = false;  // and PMAPI hardware counters
  std::uint64_t seed = 1;
  std::string exec_name;  // empty = derived "smg-<machine>-np<P>-s<seed>"

  std::string effectiveExecName() const;
};

/// The eight whole-execution values of the standard SMG2000 output.
const std::vector<std::string>& smgOutputMetrics();

/// The PMAPI counters recorded per task (AIX Performance Monitor API).
const std::vector<std::string>& pmapiCounters();

/// MPI operations profiled by mpiP in these runs.
const std::vector<std::string>& mpipOperations();

/// Writes one SMG2000 run's output files into `dir`.
GeneratedRun generateSmgRun(const SmgRunSpec& spec, const std::filesystem::path& dir);

}  // namespace perftrack::sim
