#include "tools/irs_parser.h"

#include <fstream>
#include <set>

#include "collect/collect.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::tools {

using util::ParseError;

IrsRunHeader parseIrsStdout(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw util::PTError("cannot open " + path.string());
  IrsRunHeader header;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto kv = util::splitN(line, ':', 2);
    if (kv.size() != 2) continue;
    const std::string key(util::trim(kv[0]));
    const std::string value(util::trim(kv[1]));
    if (key == "Version") header.version = value;
    else if (key == "Execution") header.exec_name = value;
    else if (key == "Machine") header.machine = value;
    else if (key == "Concurrency") header.concurrency = value;
    else if (key == "Processes") {
      const auto n = util::parseInt(value);
      if (!n) throw ParseError("bad process count '" + value + "'", line_no);
      header.nprocs = static_cast<int>(*n);
    }
  }
  if (header.exec_name.empty() || header.nprocs == 0) {
    throw ParseError("IRS stdout missing Execution/Processes fields");
  }
  return header;
}

std::size_t convertIrsRun(const std::filesystem::path& dir,
                          const sim::MachineConfig& machine, ptdf::Writer& writer) {
  const IrsRunHeader header = parseIrsStdout(dir / "irs_stdout.txt");
  const std::string& exec = header.exec_name;
  const std::string app = "IRS";

  writer.comment("IRS run " + exec + " on " + machine.name);
  writer.application(app);
  writer.execution(exec, app);

  // Build + runtime captures (PTbuild/PTrun outputs).
  collect::emitBuildPtdf(writer, collect::parseBuildFile(dir / "irs_build.txt"), exec);
  collect::emitRunPtdf(writer, collect::parseRunFile(dir / "irs_env.txt"), exec);

  // The machine description is expected to be pre-loaded ("a full set of
  // descriptive machine data was already in our PerfTrack system"), but we
  // re-emit the partition spine so standalone files load too.
  writer.resource("/" + machine.grid_name, "grid");
  writer.resource(machine.machineResource(), "grid/machine");
  writer.resource(machine.partitionResource(), "grid/machine/partition");
  const std::string partition = machine.partitionResource();
  const std::string exec_root = "/" + exec;

  // --- per-function timing table -------------------------------------------
  std::ifstream timing(dir / "irs_timing.txt");
  if (!timing) throw util::PTError("cannot open " + (dir / "irs_timing.txt").string());
  const std::string build_root = "/IRS-" + header.version;
  writer.resource(build_root, "build");
  std::size_t results = 0;
  std::string line;
  std::size_t line_no = 0;
  std::set<std::string> defined_functions;
  while (std::getline(timing, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#' || trimmed.find(' ') == std::string::npos) {
      continue;
    }
    if (util::startsWith(trimmed, "IRS ")) continue;  // banner
    const auto fields = ptdf::splitFields(line);
    if (fields.size() != 6) {
      throw ParseError("bad IRS timing row (" + std::to_string(fields.size()) +
                           " fields)",
                       line_no);
    }
    const auto mf = util::split(fields[0], ':');
    if (mf.size() != 2) throw ParseError("bad function name " + fields[0], line_no);
    const std::string module_res = build_root + "/" + mf[0];
    const std::string func_res = module_res + "/" + mf[1];
    if (defined_functions.insert(func_res).second) {
      writer.resource(module_res, "build/module");
      writer.resource(func_res, "build/module/function");
    }
    static const char* kStats[] = {"aggregate", "average", "max", "min"};
    const bool time_metric = fields[1].find("time") != std::string::npos;
    const std::string units = time_metric ? "seconds" : "count";
    for (int s = 0; s < 4; ++s) {
      const auto value = util::parseReal(fields[2 + s]);
      if (!value) throw ParseError("bad value '" + fields[2 + s] + "'", line_no);
      writer.perfResult(exec,
                        {{{func_res, exec_root, partition}, core::FocusType::Primary}},
                        "IRS-benchmark", fields[1] + " (" + kStats[s] + ")", *value,
                        units);
      ++results;
    }
  }

  // --- whole-program summary --------------------------------------------------
  std::ifstream summary(dir / "irs_summary.txt");
  if (!summary) throw util::PTError("cannot open " + (dir / "irs_summary.txt").string());
  line_no = 0;
  while (std::getline(summary, line)) {
    ++line_no;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string metric(util::trim(line.substr(0, eq)));
    const auto value_fields = util::splitWhitespace(line.substr(eq + 1));
    if (value_fields.empty()) throw ParseError("bad summary line", line_no);
    const auto value = util::parseReal(value_fields[0]);
    if (!value) throw ParseError("bad summary value '" + value_fields[0] + "'", line_no);
    const std::string units = value_fields.size() > 1 ? value_fields[1] : "";
    writer.perfResult(exec, {{{exec_root, partition}, core::FocusType::Primary}},
                      "IRS-benchmark", metric, *value, units);
    ++results;
  }
  return results;
}

}  // namespace perftrack::tools
