// PerfTrack tool parsers: IRS benchmark output -> PTdf (case study §4.1).
#pragma once

#include <filesystem>
#include <string>

#include "ptdf/ptdf.h"
#include "sim/machines.h"

namespace perftrack::tools {

/// Metadata from the IRS stdout banner.
struct IrsRunHeader {
  std::string exec_name;
  std::string machine;
  std::string version;
  std::string concurrency;
  int nprocs = 0;
};

IrsRunHeader parseIrsStdout(const std::filesystem::path& path);

/// Converts one IRS run directory (the six files of sim::generateIrsRun)
/// into PTdf: the application/execution records, build + runtime captures
/// (via collect/), the shared IRS function resources, the machine link, and
/// one PerfResult per (function, metric, statistic) plus the whole-program
/// summary values.
///
/// Returns the number of PerfResult records written.
std::size_t convertIrsRun(const std::filesystem::path& dir,
                          const sim::MachineConfig& machine, ptdf::Writer& writer);

}  // namespace perftrack::tools
