#include "tools/paradyn_parser.h"

#include <fstream>
#include <limits>
#include <set>

#include "ptdf/ptdf.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::tools {

using util::ParseError;

MappedResource mapParadynResource(const std::string& paradyn_name,
                                  const std::string& exec_name,
                                  const std::string& app_tag) {
  const auto segments = util::split(paradyn_name.substr(1), '/');
  if (paradyn_name.empty() || paradyn_name.front() != '/' || segments.size() < 2) {
    throw ParseError("bad Paradyn resource '" + paradyn_name + "'");
  }
  MappedResource out;
  const std::string& root = segments[0];
  if (root == "Code") {
    // /Code/<module>/<function>. Dynamic modules (.so) go to the
    // environment hierarchy; static modules and DEFAULT_MODULE default to
    // build (it "is not always possible to determine" — paper §4.3).
    const std::string& module = segments.at(1);
    const bool dynamic = util::endsWith(module, ".so");
    const std::string hierarchy = dynamic ? "environment" : "build";
    const std::string prefix =
        "/" + app_tag + (dynamic ? "-env" : "-code");
    out.full_name = prefix + "/" + module;
    out.type_path = hierarchy + "/module";
    if (segments.size() >= 3) {
      out.full_name += "/" + segments[2];
      out.type_path += "/function";
    }
    return out;
  }
  if (root == "Machine") {
    // /Machine/<node>/<procname{pid}> -> execution/process named by pid;
    // the node becomes an attribute (paper: "machine nodes ... are stored
    // as resource attributes of the process resources").
    if (segments.size() == 2) {
      out.full_name = "/" + exec_name;
      out.type_path = "execution";
      out.node_attribute = segments[1];
      return out;
    }
    std::string proc = segments.at(2);
    // Normalize "irs{12345}" -> "irs_12345".
    for (char& c : proc) {
      if (c == '{') c = '_';
    }
    if (!proc.empty() && proc.back() == '}') proc.pop_back();
    out.full_name = "/" + exec_name + "/" + proc;
    out.type_path = "execution/process";
    out.node_attribute = segments[1];
    return out;
  }
  if (root == "SyncObject") {
    // New top-level hierarchy mirroring Paradyn's (Figure 11).
    out.full_name = "/syncObjects-" + exec_name;
    out.type_path = "syncObject";
    if (segments.size() >= 2) {
      out.full_name += "/" + segments[1];
      out.type_path = "syncObject/class";
    }
    if (segments.size() >= 3) {
      out.full_name += "/" + segments[2];
      out.type_path = "syncObject/class/object";
    }
    return out;
  }
  throw ParseError("unknown Paradyn hierarchy '" + root + "'");
}

namespace {

struct HistogramHeader {
  std::string metric;
  std::string focus;  // comma-separated Paradyn resource names
  int num_bins = 0;
  double bin_width = 0.0;
};

}  // namespace

std::size_t convertParadynRun(const std::filesystem::path& dir,
                              const std::string& exec_name,
                              const std::string& app_name, ptdf::Writer& writer,
                              BinMode mode) {
  writer.comment("Paradyn session " + exec_name);
  writer.application(app_name);
  writer.execution(exec_name, app_name);
  // The syncObject hierarchy is new to PerfTrack; register it explicitly
  // through the type-extension interface.
  writer.resourceType("syncObject/class/object");

  const std::string app_tag = app_name;
  std::set<std::string> defined;
  auto defineMapped = [&](const MappedResource& mapped) {
    if (defined.insert(mapped.full_name).second) {
      writer.resource(mapped.full_name, mapped.type_path);
      if (!mapped.node_attribute.empty()) {
        writer.resourceAttribute(mapped.full_name, "node", mapped.node_attribute);
      }
    }
  };

  // --- resources file: define every exported resource ----------------------
  {
    std::ifstream in(dir / "resources.txt");
    if (!in) throw util::PTError("cannot open " + (dir / "resources.txt").string());
    std::string line;
    while (std::getline(in, line)) {
      const std::string_view t = util::trim(line);
      if (t.empty() || t.front() == '#') continue;
      defineMapped(mapParadynResource(std::string(t), exec_name, app_tag));
    }
  }

  // --- time hierarchy: global phase root ------------------------------------
  const std::string phase_root = "/" + exec_name + "-time";
  writer.resource(phase_root, "time");
  writer.resourceAttribute(phase_root, "phase", "global");
  std::set<int> defined_bins;

  // --- histograms ------------------------------------------------------------
  std::ifstream index(dir / "index.txt");
  if (!index) throw util::PTError("cannot open " + (dir / "index.txt").string());
  std::size_t results = 0;
  std::string line;
  std::size_t index_line = 0;
  while (std::getline(index, line)) {
    ++index_line;
    const std::string_view t = util::trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = ptdf::splitFields(std::string(t));
    if (fields.size() != 3) throw ParseError("bad index entry", index_line);
    const std::string& hist_file = fields[0];

    std::ifstream hist(dir / hist_file);
    if (!hist) throw util::PTError("cannot open " + (dir / hist_file).string());
    HistogramHeader header;
    std::string hline;
    std::size_t hline_no = 0;
    // Header lines, then one value per bin.
    int bin = 0;
    std::vector<double> all_bins;  // HistogramResults mode: collected series
    while (std::getline(hist, hline)) {
      ++hline_no;
      const std::string_view ht = util::trim(hline);
      if (ht.empty() || ht.front() == '#') continue;
      if (util::startsWith(ht, "metric:")) {
        header.metric = std::string(util::trim(ht.substr(7)));
      } else if (util::startsWith(ht, "focus:")) {
        header.focus = std::string(util::trim(ht.substr(6)));
      } else if (util::startsWith(ht, "numBins:")) {
        header.num_bins = static_cast<int>(
            util::parseInt(util::trim(ht.substr(8))).value_or(0));
      } else if (util::startsWith(ht, "binWidth:")) {
        header.bin_width = util::parseReal(util::trim(ht.substr(9))).value_or(0.0);
      } else {
        // A bin value. 'nan' bins (instrumentation not yet inserted) are
        // not recorded as performance results.
        if (header.metric.empty() || header.focus.empty() || header.bin_width <= 0.0) {
          throw ParseError("histogram data before complete header", hline_no);
        }
        if (mode == BinMode::HistogramResults) {
          if (ht == "nan") {
            all_bins.push_back(std::numeric_limits<double>::quiet_NaN());
          } else {
            const auto value = util::parseReal(ht);
            if (!value) throw ParseError("bad bin value '" + std::string(ht) + "'",
                                         hline_no);
            all_bins.push_back(*value);
          }
        } else if (ht != "nan") {
          const auto value = util::parseReal(ht);
          if (!value) throw ParseError("bad bin value '" + std::string(ht) + "'",
                                       hline_no);
          // Bin resource, shared across histograms of this session.
          const std::string bin_res = phase_root + "/bin" + std::to_string(bin);
          if (defined_bins.insert(bin).second) {
            writer.resource(bin_res, "time/interval");
            writer.resourceAttribute(bin_res, "start time",
                                     util::formatReal(bin * header.bin_width));
            writer.resourceAttribute(bin_res, "end time",
                                     util::formatReal((bin + 1) * header.bin_width));
          }
          std::vector<std::string> context{bin_res};
          for (const std::string& pres : util::split(header.focus, ',')) {
            const MappedResource mapped = mapParadynResource(pres, exec_name, app_tag);
            defineMapped(mapped);  // tolerate foci missing from resources.txt
            context.push_back(mapped.full_name);
          }
          writer.perfResult(exec_name, {{context, core::FocusType::Primary}}, "Paradyn",
                            header.metric, *value, "seconds",
                            bin * header.bin_width, (bin + 1) * header.bin_width);
          ++results;
        }
        ++bin;
      }
    }
    if (mode == BinMode::HistogramResults) bin = static_cast<int>(all_bins.size());
    if (bin != header.num_bins) {
      throw ParseError(hist_file + ": expected " + std::to_string(header.num_bins) +
                       " bins, found " + std::to_string(bin));
    }
    if (mode == BinMode::HistogramResults) {
      // One complex result per metric-focus pair; the global phase resource
      // anchors it in the time hierarchy.
      std::vector<std::string> context{phase_root};
      for (const std::string& pres : util::split(header.focus, ',')) {
        const MappedResource mapped = mapParadynResource(pres, exec_name, app_tag);
        defineMapped(mapped);
        context.push_back(mapped.full_name);
      }
      writer.perfHistogram(exec_name, {{context, core::FocusType::Primary}}, "Paradyn",
                           header.metric, header.bin_width, "seconds", all_bins);
      ++results;
    }
  }
  return results;
}

}  // namespace perftrack::tools
