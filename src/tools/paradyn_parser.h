// PerfTrack tool parsers: Paradyn session exports -> PTdf (case study §4.3).
//
// The mapping follows the paper's Figure 11:
//   * Paradyn /Code/<module>/<function>  ->  PerfTrack build hierarchy when
//     the module is static (or DEFAULT_MODULE, where the real module is
//     unknowable), environment hierarchy when it is a dynamic library (.so),
//   * Paradyn /Machine/<node>/<proc{pid}> -> execution/process; the node is
//     stored as a resource attribute of the process,
//   * Paradyn /SyncObject/<class>/<id>    -> a new top-level "syncObject"
//     hierarchy created through the type-extension interface,
//   * Paradyn phases/bins -> the time hierarchy: a global-phase resource
//     with one time/interval resource per histogram bin, carrying start/end
//     attributes; 'nan' bins produce no performance result.
#pragma once

#include <filesystem>
#include <string>

#include "ptdf/ptdf.h"

namespace perftrack::tools {

/// Maps one Paradyn resource name to its PerfTrack (full_name, type_path).
/// `exec_name` scopes per-execution resources (processes, sync objects).
/// `app_tag` scopes code resources shared between executions of one binary.
struct MappedResource {
  std::string full_name;
  std::string type_path;
  std::string node_attribute;  // set for /Machine processes
};
MappedResource mapParadynResource(const std::string& paradyn_name,
                                  const std::string& exec_name,
                                  const std::string& app_tag);

/// How Paradyn histograms are represented in the store.
enum class BinMode {
  /// One PerfResult per non-nan bin, each contextualized by a time/interval
  /// resource — the prototype's §4.3 representation.
  PerBinResults,
  /// One PerfHistogram (complex result) per metric-focus pair — the §6
  /// future-work representation this implementation adds. Orders of
  /// magnitude fewer rows; see bench_paradyn_ingest for the ablation.
  HistogramResults,
};

/// Converts a Paradyn export directory (resources.txt, index.txt,
/// histogram_*.hist) into PTdf for execution `exec_name` of `app_name`.
/// Returns the number of result records written (non-nan bins in
/// PerBinResults mode; metric-focus pairs in HistogramResults mode).
std::size_t convertParadynRun(const std::filesystem::path& dir,
                              const std::string& exec_name,
                              const std::string& app_name, ptdf::Writer& writer,
                              BinMode mode = BinMode::PerBinResults);

}  // namespace perftrack::tools
