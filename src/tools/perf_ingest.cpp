// pt_perf_ingest implementation: bench-output parsers, the history ingester,
// and the DIFF-backed regression gate. See perf_ingest.h for the model.
#include "tools/perf_ingest.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "core/diag.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::tools::perf_ingest {

namespace {

// --- JSON parsing ------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw util::ParseError("JSON: " + what + " at offset " +
                           std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skipSpace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        Json v;
        v.type = Json::Type::String;
        v.text = parseString();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.type = Json::Type::Bool;
        if (consumeWord("true")) {
          v.boolean = true;
        } else if (consumeWord("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consumeWord("null")) fail("bad literal");
        return Json{};
      default: return parseNumber();
    }
  }

  Json parseObject() {
    expect('{');
    Json v;
    v.type = Json::Type::Object;
    if (consume('}')) return v;
    while (true) {
      skipSpace();
      std::string key = parseString();
      expect(':');
      v.members.emplace_back(std::move(key), parseValue());
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  Json parseArray() {
    expect('[');
    Json v;
    v.type = Json::Type::Array;
    if (consume(']')) return v;
    while (true) {
      v.items.push_back(parseValue());
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The bench writers emit ASCII only; decode BMP escapes to UTF-8
          // so the parser is still total over valid input.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    const auto parsed = util::parseReal(text_.substr(start, pos_ - start));
    if (!parsed) fail("bad number");
    Json v;
    v.type = Json::Type::Number;
    v.number = *parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::ParseError("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string baseName(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string dirName(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

/// Entry names become path segments of context resources: '/' would add
/// depth and '|' is the canonical-context join character, so both map to
/// ':'.
std::string sanitizeSegment(std::string name) {
  for (char& c : name) {
    if (c == '/' || c == '|') c = ':';
  }
  while (!name.empty() && name.front() == ':') name.erase(name.begin());
  return name.empty() ? std::string("unnamed") : name;
}

/// google-benchmark bookkeeping fields that vary per invocation without
/// describing performance — excluded from both names and measurements.
bool isGbenchNoise(const std::string& key) {
  return key == "family_index" || key == "per_family_instance_index" ||
         key == "repetition_index" || key == "repetitions" ||
         key == "iterations" || key == "threads";
}

/// Flat-array numeric fields that configure the workload rather than
/// measure it: folded into the entry name so differently-sized runs never
/// align as the same context.
bool isConfigField(const std::string& key) {
  static const std::set<std::string> kConfig = {
      "table_rows", "batch_rows", "threads", "clients",   "writers",
      "nprocs",     "families",   "foci",    "committers", "sessions"};
  return kConfig.count(key) > 0;
}

std::string formatConfigNumber(double value) {
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  return util::formatReal(value);
}

void parseGoogleBenchmark(const Json& root, BenchFile& out) {
  const Json* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->isArray()) {
    throw util::ParseError("google-benchmark file without a benchmarks array");
  }
  for (const Json& bench : benchmarks->items) {
    if (!bench.isObject()) continue;
    BenchEntry entry;
    const Json* name = bench.find("name");
    entry.name = sanitizeSegment(name != nullptr && name->isString()
                                     ? name->text
                                     : "unnamed");
    for (const auto& [key, value] : bench.members) {
      if (!value.isNumber() || isGbenchNoise(key)) continue;
      entry.measurements.push_back({key, value.number});
    }
    if (!entry.measurements.empty()) out.entries.push_back(std::move(entry));
  }
}

void parseFlatArray(const Json& root, BenchFile& out) {
  std::size_t index = 0;
  for (const Json& item : root.items) {
    ++index;
    if (!item.isObject()) continue;
    BenchEntry entry;
    std::vector<std::string> name_parts;
    for (const auto& [key, value] : item.members) {
      if (value.isString()) {
        name_parts.push_back(sanitizeSegment(value.text));
      } else if (value.type == Json::Type::Bool) {
        name_parts.push_back(key + "=" + (value.boolean ? "true" : "false"));
      } else if (value.isNumber() && isConfigField(key)) {
        name_parts.push_back(key + "=" + formatConfigNumber(value.number));
      } else if (value.isNumber()) {
        entry.measurements.push_back({key, value.number});
      }
    }
    entry.name = name_parts.empty() ? "entry" + std::to_string(index)
                                    : util::join(name_parts, ":");
    if (!entry.measurements.empty()) out.entries.push_back(std::move(entry));
  }
}

std::string unitsForMetric(const std::string& metric) {
  if (util::endsWith(metric, "_ms")) return "ms";
  if (util::endsWith(metric, "_ns")) return "ns";
  if (util::endsWith(metric, "_us")) return "us";
  if (util::endsWith(metric, "_kb")) return "kb";
  if (util::endsWith(metric, "_bytes")) return "bytes";
  if (metric == "real_time" || metric == "cpu_time") return "ns";
  return "";
}

// --- baseline table ----------------------------------------------------------

void ensureBaselineTable(dbal::Connection& conn) {
  conn.exec(
      "CREATE TABLE IF NOT EXISTS perf_baseline ("
      "  id INTEGER PRIMARY KEY,"
      "  application TEXT,"
      "  execution TEXT)");
  conn.exec(
      "CREATE UNIQUE INDEX IF NOT EXISTS pb_by_app ON perf_baseline "
      "(application)");
}

std::string baselineFor(dbal::Connection& conn, const std::string& app) {
  auto rs = conn.execPrepared(
      "SELECT execution FROM perf_baseline WHERE application = ?",
      {minidb::Value(app)});
  if (rs.rows.empty()) return {};
  return rs.rows[0][0].asText();
}

void setBaseline(dbal::Connection& conn, const std::string& app,
                 const std::string& exec, bool existed) {
  if (existed) {
    conn.execPrepared("UPDATE perf_baseline SET execution = ? WHERE application = ?",
                      {minidb::Value(exec), minidb::Value(app)});
  } else {
    conn.execPrepared(
        "INSERT INTO perf_baseline (application, execution) VALUES (?, ?)",
        {minidb::Value(app), minidb::Value(exec)});
  }
}

// --- JSON emit for the gate report -------------------------------------------

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const Json* Json::find(const std::string& key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json parseJson(std::string_view text) { return JsonParser(text).parse(); }

std::string applicationForPath(const std::string& path) {
  std::string name = baseName(path);
  if (util::startsWith(name, "BENCH_")) name.erase(0, 6);
  if (util::endsWith(name, ".json")) name.erase(name.size() - 5);
  return name.empty() ? "bench" : name;
}

BenchFile parseBenchFile(const std::string& path) {
  BenchFile out;
  out.application = applicationForPath(path);
  const Json root = parseJson(readFile(path));
  if (root.isObject() && root.find("benchmarks") != nullptr) {
    parseGoogleBenchmark(root, out);
  } else if (root.isArray()) {
    parseFlatArray(root, out);
  } else {
    throw util::ParseError(path + ": unrecognized bench JSON shape");
  }
  return out;
}

std::vector<Measurement> parsePromSidecar(const std::string& path) {
  std::vector<Measurement> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // Labelled samples (histogram buckets, per-le bounds) are not
    // comparable as scalars; only bare `name value` lines are ingested.
    if (trimmed.find('{') != std::string_view::npos) continue;
    const auto fields = util::splitWhitespace(trimmed);
    if (fields.size() < 2) continue;
    const auto value = util::parseReal(fields[1]);
    if (!value || !std::isfinite(*value)) continue;
    out.push_back({fields[0], *value});
  }
  return out;
}

std::string promSidecarForBenchPath(const std::string& path) {
  return dirName(path) + "METRICS_" + applicationForPath(path) + ".prom";
}

IngestStats ingestRun(core::PTDataStore& store,
                      const std::vector<std::string>& bench_paths,
                      const std::string& label) {
  if (label.empty()) throw util::ModelError("ingest label must not be empty");
  IngestStats stats;
  const auto existing_list = store.executions();
  const std::set<std::string> existing(existing_list.begin(),
                                       existing_list.end());
  store.addResourceType("benchRun/benchCase");
  for (const auto& path : bench_paths) {
    const BenchFile file = parseBenchFile(path);
    const std::string exec = file.application + "@" + label;
    if (existing.count(exec) > 0) {
      throw util::ModelError("execution already ingested: " + exec);
    }
    store.addExecution(exec, file.application);
    ++stats.files;
    ++stats.executions;

    auto record = [&](const std::string& entry_name,
                      const std::vector<Measurement>& measurements) {
      if (measurements.empty()) return;
      const std::string resource = "/" + exec + "/" + entry_name;
      store.addResource(resource, "benchRun/benchCase");
      const std::vector<core::ResourceSetSpec> context = {
          {{resource}, core::FocusType::Primary}};
      for (const auto& m : measurements) {
        store.addPerformanceResult(exec, context, "pt_perf_ingest", m.metric,
                                   m.value, unitsForMetric(m.metric));
        ++stats.results;
      }
    };

    for (const auto& entry : file.entries) {
      record(entry.name, entry.measurements);
    }
    record("metrics", parsePromSidecar(promSidecarForBenchPath(path)));
  }
  return stats;
}

std::string_view verdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::BaselineEstablished: return "baseline-established";
    case Verdict::Improvement: return "improvement";
    case Verdict::Stable: return "stable";
    case Verdict::MinorRegression: return "minor-regression";
    case Verdict::CriticalRegression: return "critical-regression";
  }
  return "unknown";
}

bool isTimeMetric(const std::string& metric) {
  return util::endsWith(metric, "_ms") || util::endsWith(metric, "_ns") ||
         util::endsWith(metric, "_us") || util::endsWith(metric, "_seconds") ||
         metric == "real_time" || metric == "cpu_time";
}

bool GateReport::hasCritical() const {
  return std::any_of(entries.begin(), entries.end(), [](const GateEntry& e) {
    return e.verdict == Verdict::CriticalRegression;
  });
}

std::string GateReport::toJsonLines() const {
  std::string out;
  for (const auto& e : entries) {
    out += "{\"label\": \"" + jsonEscape(label) + "\"";
    out += ", \"application\": \"" + jsonEscape(e.application) + "\"";
    out += ", \"verdict\": \"" + std::string(verdictName(e.verdict)) + "\"";
    out += ", \"baseline\": \"" + jsonEscape(e.baseline_exec) + "\"";
    out += ", \"current\": \"" + jsonEscape(e.current_exec) + "\"";
    if (!e.metric.empty()) {
      out += ", \"metric\": \"" + jsonEscape(e.metric) + "\"";
      out += ", \"context\": \"" + jsonEscape(e.context) + "\"";
      out += ", \"baseline_value\": " + util::formatReal(e.baseline_value);
      out += ", \"current_value\": " + util::formatReal(e.current_value);
      out += ", \"ratio\": " + util::formatReal(e.ratio);
    }
    out += ", \"baseline_updated\": ";
    out += e.baseline_updated ? "true" : "false";
    out += "}\n";
  }
  return out;
}

std::string GateReport::toText() const {
  std::string out = "perf gate: run " + label + "\n";
  for (const auto& e : entries) {
    out += "  " + e.application + ": " + std::string(verdictName(e.verdict));
    if (!e.metric.empty()) {
      out += "  " + e.metric + " [" + e.context + "]  " +
             util::formatReal(e.baseline_value) + " -> " +
             util::formatReal(e.current_value) + "  (x" +
             util::formatReal(e.ratio) + ")";
    }
    if (e.baseline_updated) out += "  [baseline -> " + e.current_exec + "]";
    out += "\n";
  }
  return out;
}

GateReport runGate(core::PTDataStore& store,
                   const std::vector<std::string>& bench_paths,
                   const std::string& label,
                   const GateThresholds& thresholds) {
  dbal::Connection& conn = store.connection();
  ensureBaselineTable(conn);
  ingestRun(store, bench_paths, label);

  GateReport report;
  report.label = label;
  // One gate entry per application, in the (sorted, de-duplicated) order of
  // the bench files.
  std::set<std::string> apps;
  for (const auto& path : bench_paths) apps.insert(applicationForPath(path));

  for (const auto& app : apps) {
    GateEntry entry;
    entry.application = app;
    entry.current_exec = app + "@" + label;
    entry.baseline_exec = baselineFor(conn, app);

    if (entry.baseline_exec.empty()) {
      entry.verdict = Verdict::BaselineEstablished;
      entry.baseline_updated = true;
      setBaseline(conn, app, entry.current_exec, /*existed=*/false);
      report.entries.push_back(std::move(entry));
      continue;
    }

    // All changed pairs (thresholds zero) — classification applies its own
    // bands below. Runs server-side over pt:// connections.
    core::diag::Request request;
    request.exec_a = entry.baseline_exec;
    request.exec_b = entry.current_exec;
    request.ratio_threshold = 0.0;
    request.abs_threshold = 0.0;
    const auto diff = conn.diff(request);

    const core::diag::Row* worst = nullptr;
    const core::diag::Row* best = nullptr;
    for (const auto& row : diff.rows) {
      if (!row.has_ratio || !isTimeMetric(row.metric)) continue;
      if (row.value_a < thresholds.min_baseline) continue;
      if (worst == nullptr || row.ratio > worst->ratio) worst = &row;
      if (best == nullptr || row.ratio < best->ratio) best = &row;
    }

    if (worst == nullptr) {
      entry.verdict = Verdict::Stable;
    } else if (worst->ratio > thresholds.critical) {
      entry.verdict = Verdict::CriticalRegression;
    } else if (worst->ratio > thresholds.minor) {
      entry.verdict = Verdict::MinorRegression;
    } else if (best->ratio < thresholds.improvement) {
      entry.verdict = Verdict::Improvement;
    } else {
      entry.verdict = Verdict::Stable;
    }

    const core::diag::Row* cite =
        entry.verdict == Verdict::Improvement ? best : worst;
    if (cite != nullptr) {
      entry.metric = cite->metric;
      entry.context = cite->context;
      entry.baseline_value = cite->value_a;
      entry.current_value = cite->value_b;
      entry.ratio = cite->ratio;
    }
    if (entry.verdict == Verdict::Improvement) {
      entry.baseline_updated = true;
      setBaseline(conn, app, entry.current_exec, /*existed=*/true);
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

std::vector<std::pair<std::string, std::string>> baselines(
    dbal::Connection& conn) {
  ensureBaselineTable(conn);
  auto rs = conn.exec(
      "SELECT application, execution FROM perf_baseline ORDER BY application");
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    out.emplace_back(row[0].asText(), row[1].asText());
  }
  return out;
}

}  // namespace perftrack::tools::perf_ingest
