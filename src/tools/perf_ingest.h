// pt_perf_ingest: the repo's own benchmark history as PerfTrack data.
//
// Parses the BENCH_*.json files that scripts/bench_smoke.sh leaves behind
// (both the google-benchmark schema — {"context":..., "benchmarks":[...]} —
// and the hand-rolled flat arrays the other bench binaries write) plus their
// METRICS_*.prom metric sidecars, and records them as PerfTrack executions:
//
//   bench file         -> application  (BENCH_cursor.json -> "cursor")
//   one ingest run     -> one execution per file, named "<app>@<label>"
//   bench entry/config -> context      (resource "/<exec>/<entry>", which
//                                       canonicalizes to "/$EXEC/<entry>",
//                                       so entries align across runs)
//   measurements       -> performance results (metric per numeric field)
//   prom sidecar       -> results under the "/<exec>/metrics" context
//
// On top of the stored history sits the regression gate: DIFF the current
// run against the per-application baseline execution (kept in a tool-owned
// perf_baseline table in the same store), classify each application as
// improvement / stable / minor-regression / critical-regression with
// diagon-style thresholds, auto-advance the baseline on improvement, and
// emit a machine-readable JSON-lines report. Everything goes through
// dbal::Connection, so ingest and gate run identically against a local
// perf_history.db and a live ptserverd (pt://host:port).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/datastore.h"
#include "dbal/connection.h"

namespace perftrack::tools::perf_ingest {

// --- minimal JSON reader -----------------------------------------------------

/// Just enough JSON for the bench formats: objects keep member order,
/// numbers are doubles. Parse errors throw util::ParseError.
struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;                            // Array
  std::vector<std::pair<std::string, Json>> members;  // Object, in file order

  bool isNumber() const { return type == Type::Number; }
  bool isString() const { return type == Type::String; }
  bool isArray() const { return type == Type::Array; }
  bool isObject() const { return type == Type::Object; }
  /// First member named `key`, or nullptr.
  const Json* find(const std::string& key) const;
};

Json parseJson(std::string_view text);

// --- bench-file model --------------------------------------------------------

struct Measurement {
  std::string metric;
  double value = 0.0;
};

/// One bench entry: a stable name (the context across runs) plus its
/// numeric measurements.
struct BenchEntry {
  std::string name;
  std::vector<Measurement> measurements;
};

struct BenchFile {
  std::string application;  // "BENCH_cursor.json" -> "cursor"
  std::vector<BenchEntry> entries;
};

/// Application name for a bench file path (basename minus the BENCH_ prefix
/// and .json suffix).
std::string applicationForPath(const std::string& path);

/// Parses one BENCH_*.json, auto-detecting the schema. Throws
/// util::ParseError on malformed input.
BenchFile parseBenchFile(const std::string& path);

/// Parses a Prometheus text-exposition sidecar: every label-free sample
/// line becomes a measurement (lines with labels — histogram buckets — are
/// skipped; they are per-bound, not comparable as scalars). Returns empty
/// for a missing file.
std::vector<Measurement> parsePromSidecar(const std::string& path);

/// The METRICS_*.prom path conventionally next to a BENCH_*.json.
std::string promSidecarForBenchPath(const std::string& path);

// --- ingest ------------------------------------------------------------------

struct IngestStats {
  std::size_t files = 0;
  std::size_t executions = 0;
  std::size_t results = 0;
};

/// Ingests one run of bench files (plus any prom sidecars found next to
/// them) under `label`: one execution "<app>@<label>" per file. Re-ingesting
/// an existing execution name throws util::ModelError (labels identify
/// runs).
IngestStats ingestRun(core::PTDataStore& store,
                      const std::vector<std::string>& bench_paths,
                      const std::string& label);

// --- regression gate ---------------------------------------------------------

/// diagon-style classification thresholds over time-like metrics
/// (lower-better: names ending _ms/_ns/_us/_seconds, real_time, cpu_time).
struct GateThresholds {
  double improvement = 0.90;  // ratio below: >10% faster
  double minor = 1.10;        // ratio above: >10% slower
  double critical = 1.20;     // ratio above: >20% slower
  /// Baseline values below this are ignored for classification (near-zero
  /// timings jitter far past any ratio threshold).
  double min_baseline = 0.05;
};

enum class Verdict {
  BaselineEstablished,
  Improvement,
  Stable,
  MinorRegression,
  CriticalRegression,
};

std::string_view verdictName(Verdict verdict);

/// True when `metric` is a lower-is-better duration.
bool isTimeMetric(const std::string& metric);

/// One application's gate outcome. For regressions the recorded pair is the
/// worst time-like ratio; for improvements, the best.
struct GateEntry {
  std::string application;
  std::string baseline_exec;  // empty when the baseline was just established
  std::string current_exec;
  Verdict verdict = Verdict::Stable;
  std::string metric;
  std::string context;
  double baseline_value = 0.0;
  double current_value = 0.0;
  double ratio = 0.0;
  bool baseline_updated = false;
};

struct GateReport {
  std::string label;
  std::vector<GateEntry> entries;

  bool hasCritical() const;
  /// One JSON object per line (machine-readable gate report).
  std::string toJsonLines() const;
  /// Human-readable summary table.
  std::string toText() const;
};

/// Ingests the run under `label`, then classifies every application against
/// its stored baseline via Connection::diff (so the comparison runs
/// server-side for pt:// connections). Establishes missing baselines and
/// advances them on improvement.
GateReport runGate(core::PTDataStore& store,
                   const std::vector<std::string>& bench_paths,
                   const std::string& label,
                   const GateThresholds& thresholds = {});

/// The stored (application, baseline execution) pairs, sorted.
std::vector<std::pair<std::string, std::string>> baselines(
    dbal::Connection& conn);

}  // namespace perftrack::tools::perf_ingest
