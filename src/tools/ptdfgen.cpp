#include "tools/ptdfgen.h"

#include <fstream>

#include "ptdf/ptdf.h"
#include "tools/irs_parser.h"
#include "tools/paradyn_parser.h"
#include "tools/smg_parser.h"
#include "util/error.h"
#include "util/strings.h"

namespace perftrack::tools {

using util::ParseError;

sim::MachineConfig machineByName(const std::string& name) {
  if (util::iequals(name, "frost")) return sim::frostConfig();
  if (util::iequals(name, "mcr")) return sim::mcrConfig();
  if (util::iequals(name, "bgl")) return sim::bglConfig();
  if (util::iequals(name, "uv")) return sim::uvConfig();
  throw util::PTError("unknown machine '" + name + "' (want frost|mcr|bgl|uv)");
}

std::vector<IndexEntry> parseIndexFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw util::PTError("cannot open index file: " + path.string());
  std::vector<IndexEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view t = util::trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = util::splitWhitespace(t);
    if (fields.size() < 3 || fields.size() > 4) {
      throw ParseError("index entry needs: kind dir machine [exec]", line_no);
    }
    IndexEntry entry;
    entry.kind = util::toLower(fields[0]);
    entry.dir = fields[1];
    entry.machine = fields[2];
    if (fields.size() == 4) entry.exec_name = fields[3];
    if (entry.kind != "irs" && entry.kind != "smg" && entry.kind != "paradyn") {
      throw ParseError("unknown run kind '" + entry.kind + "'", line_no);
    }
    if (entry.kind == "paradyn" && entry.exec_name.empty()) {
      throw ParseError("paradyn entries require an execution name", line_no);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

GenResult generateEntry(const IndexEntry& entry, const std::filesystem::path& out_dir) {
  std::filesystem::create_directories(out_dir);
  const sim::MachineConfig machine = machineByName(entry.machine);
  const std::string stem = entry.exec_name.empty()
                               ? entry.dir.filename().string()
                               : entry.exec_name;
  GenResult result;
  result.ptdf_file = out_dir / (stem + ".ptdf");
  std::ofstream out(result.ptdf_file);
  if (!out) throw util::PTError("cannot create " + result.ptdf_file.string());
  ptdf::Writer writer(out);
  if (entry.kind == "irs") {
    result.perf_results = convertIrsRun(entry.dir, machine, writer);
  } else if (entry.kind == "smg") {
    result.perf_results = convertSmgRun(entry.dir, machine, writer);
  } else {
    result.perf_results =
        convertParadynRun(entry.dir, entry.exec_name, "IRS", writer);
  }
  result.ptdf_lines = writer.linesWritten();
  return result;
}

std::vector<GenResult> generateFromIndex(const std::filesystem::path& index_file,
                                         const std::filesystem::path& out_dir) {
  std::vector<GenResult> results;
  for (const IndexEntry& entry : parseIndexFile(index_file)) {
    results.push_back(generateEntry(entry, out_dir));
  }
  return results;
}

}  // namespace perftrack::tools
