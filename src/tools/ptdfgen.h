// PerfTrack tool parsers: PTdfGen — batch conversion driver (paper §3.3).
//
// "PerfTrack includes a 'PTdfGen' script to generate PTdf for a directory
// full of files. The user creates an index file, containing a list of
// entries, one per execution." Our index format, one entry per line:
//   <kind> <run-dir> <machine> [exec-name]
// where kind is irs | smg | paradyn, machine is frost | mcr | bgl | uv, and
// run-dir holds one run's output files. '#' starts a comment.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "sim/machines.h"

namespace perftrack::tools {

struct IndexEntry {
  std::string kind;     // irs | smg | paradyn
  std::filesystem::path dir;
  std::string machine;  // frost | mcr | bgl | uv
  std::string exec_name;  // optional override / required for paradyn
};

/// Looks up one of the four case-study machines by (case-insensitive) name.
sim::MachineConfig machineByName(const std::string& name);

/// Parses a PTdfGen index file.
std::vector<IndexEntry> parseIndexFile(const std::filesystem::path& path);

struct GenResult {
  std::filesystem::path ptdf_file;
  std::size_t perf_results = 0;
  std::size_t ptdf_lines = 0;
};

/// Converts one index entry to a PTdf file in `out_dir`.
GenResult generateEntry(const IndexEntry& entry, const std::filesystem::path& out_dir);

/// Converts every entry of an index file; returns one GenResult per entry.
std::vector<GenResult> generateFromIndex(const std::filesystem::path& index_file,
                                         const std::filesystem::path& out_dir);

}  // namespace perftrack::tools
