#include "tools/smg_parser.h"

#include <fstream>
#include <set>

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::tools {

using util::ParseError;

namespace {

/// Shared preamble: application/execution records and the machine spine.
/// Returns the execution root resource name.
std::string emitSmgPreamble(ptdf::Writer& writer, const std::string& exec,
                            const sim::MachineConfig& machine, int nprocs) {
  writer.application("SMG2000");
  writer.execution(exec, "SMG2000");
  writer.resource("/" + machine.grid_name, "grid");
  writer.resource(machine.machineResource(), "grid/machine");
  writer.resource(machine.partitionResource(), "grid/machine/partition");
  const std::string exec_root = "/" + exec;
  writer.resource(exec_root, "execution");
  for (int p = 0; p < nprocs; ++p) {
    writer.resource(exec_root + "/p" + std::to_string(p), "execution/process");
  }
  return exec_root;
}

}  // namespace

std::size_t convertSmgStdout(const std::filesystem::path& path,
                             const sim::MachineConfig& machine, ptdf::Writer& writer) {
  std::ifstream in(path);
  if (!in) throw util::PTError("cannot open " + path.string());
  // First pass: header fields.
  std::string exec;
  int nprocs = 0;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  for (const std::string& l : lines) {
    const std::string_view t = util::trim(l);
    if (util::startsWith(t, "execution")) {
      const auto kv = util::splitN(t, '=', 2);
      if (kv.size() == 2) exec = std::string(util::trim(kv[1]));
    } else if (util::startsWith(t, "(P, Q, R)")) {
      const auto open = t.find('(');
      const auto close = t.find(')', open + 1);
      const auto paren = t.rfind('(');
      if (paren != std::string_view::npos && close != std::string_view::npos) {
        const auto nums = util::split(t.substr(paren + 1, t.size() - paren - 2), ',');
        int p = 1;
        for (const std::string& n : nums) {
          p *= static_cast<int>(util::parseInt(util::trim(n)).value_or(1));
        }
        nprocs = p;
      }
    } else if (util::startsWith(t, "PMAPI task")) {
      // PMAPI section tells us ranks even without (P,Q,R).
    }
  }
  if (exec.empty()) throw ParseError("SMG output missing execution field");
  if (nprocs == 0) nprocs = 1;

  writer.comment("SMG2000 run " + exec + " on " + machine.name);
  const std::string exec_root = emitSmgPreamble(writer, exec, machine, nprocs);
  const std::string partition = machine.partitionResource();

  std::size_t results = 0;
  std::string section;
  auto wholeExec = [&](const std::string& metric, double value,
                       const std::string& units) {
    writer.perfResult(exec, {{{exec_root, partition}, core::FocusType::Primary}},
                      "SMG2000", metric, value, units);
    ++results;
  };
  std::size_t line_no = 0;
  for (const std::string& l : lines) {
    ++line_no;
    const std::string_view t = util::trim(l);
    if (util::startsWith(t, "Struct Interface")) section = "struct interface";
    else if (util::startsWith(t, "SMG Setup")) section = "SMG setup";
    else if (util::startsWith(t, "SMG Solve")) section = "SMG solve";
    if (util::startsWith(t, "wall clock time")) {
      const auto kv = util::splitN(t, '=', 2);
      const auto fields = util::splitWhitespace(kv.at(1));
      wholeExec(section + " time", util::parseReal(fields.at(0)).value(), "seconds");
    } else if (util::startsWith(t, "wall MFLOPS")) {
      const auto kv = util::splitN(t, '=', 2);
      wholeExec(section + " wall MFLOPS",
                util::parseReal(util::trim(kv.at(1))).value(), "MFLOPS");
    } else if (util::startsWith(t, "Iterations")) {
      const auto kv = util::splitN(t, '=', 2);
      wholeExec("iterations", util::parseReal(util::trim(kv.at(1))).value(), "count");
    } else if (util::startsWith(t, "Final Relative Residual Norm")) {
      const auto kv = util::splitN(t, '=', 2);
      wholeExec("final relative residual norm",
                util::parseReal(util::trim(kv.at(1))).value(), "");
    } else if (util::startsWith(t, "Total wall time")) {
      const auto kv = util::splitN(t, '=', 2);
      const auto fields = util::splitWhitespace(kv.at(1));
      wholeExec("total wall time", util::parseReal(fields.at(0)).value(), "seconds");
    } else if (util::startsWith(t, "PMAPI task")) {
      // "PMAPI task <rank> <counter> <value>"
      const auto fields = util::splitWhitespace(t);
      if (fields.size() != 5) throw ParseError("bad PMAPI line", line_no);
      const auto rank = util::parseInt(fields[2]);
      const auto value = util::parseReal(fields[4]);
      if (!rank || !value) throw ParseError("bad PMAPI line", line_no);
      writer.perfResult(exec,
                        {{{exec_root + "/p" + std::to_string(*rank), partition},
                          core::FocusType::Primary}},
                        "PMAPI", fields[3], *value, "count");
      ++results;
    }
  }
  return results;
}

std::size_t convertMpip(const std::filesystem::path& path,
                        const sim::MachineConfig& machine, ptdf::Writer& writer) {
  std::ifstream in(path);
  if (!in) throw util::PTError("cannot open " + path.string());
  std::string line;
  std::string exec;
  enum class Section { None, TaskTime, Callsites, SiteStats };
  Section section = Section::None;

  struct Callsite {
    std::string file;
    int line = 0;
    std::string parent;
    std::string mpi_call;
  };
  std::map<int, Callsite> sites;
  struct TaskRow {
    int task;
    double app_time;
    double mpi_time;
  };
  std::vector<TaskRow> tasks;
  struct StatRow {
    int site;
    int rank;
    double count;
    double max_ms;
    double mean_ms;
    double min_ms;
    std::string name;
  };
  std::vector<StatRow> stats;

  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view t = util::trim(line);
    if (t.empty()) continue;
    if (t.front() == '@') {
      if (t.find("Execution :") != std::string_view::npos) {
        exec = std::string(util::trim(t.substr(t.find(':') + 1)));
      } else if (t.find("MPI Time") != std::string_view::npos) {
        section = Section::TaskTime;
      } else if (t.find("Callsites:") != std::string_view::npos) {
        section = Section::Callsites;
      } else if (t.find("Callsite Time statistics") != std::string_view::npos) {
        section = Section::SiteStats;
      } else {
        section = Section::None;
      }
      continue;
    }
    const auto fields = util::splitWhitespace(t);
    switch (section) {
      case Section::TaskTime: {
        if (fields.size() != 4 || !util::parseInt(fields[0])) continue;  // header
        tasks.push_back({static_cast<int>(*util::parseInt(fields[0])),
                         util::parseReal(fields[1]).value_or(0.0),
                         util::parseReal(fields[2]).value_or(0.0)});
        break;
      }
      case Section::Callsites: {
        if (fields.size() != 6 || !util::parseInt(fields[0])) continue;  // header
        Callsite site;
        site.file = fields[2];
        site.line = static_cast<int>(util::parseInt(fields[3]).value_or(0));
        site.parent = fields[4];
        site.mpi_call = fields[5];
        sites[static_cast<int>(*util::parseInt(fields[0]))] = site;
        break;
      }
      case Section::SiteStats: {
        if (fields.size() != 7 || !util::parseInt(fields[1])) continue;  // header
        stats.push_back({static_cast<int>(util::parseInt(fields[1]).value_or(0)),
                         static_cast<int>(util::parseInt(fields[2]).value_or(0)),
                         util::parseReal(fields[3]).value_or(0.0),
                         util::parseReal(fields[4]).value_or(0.0),
                         util::parseReal(fields[5]).value_or(0.0),
                         util::parseReal(fields[6]).value_or(0.0), fields[0]});
        break;
      }
      case Section::None:
        break;
    }
  }
  if (exec.empty()) throw ParseError("mpiP report missing '@ Execution :' header");

  writer.comment("mpiP profile for " + exec);
  const int nprocs = static_cast<int>(tasks.size());
  const std::string exec_root = emitSmgPreamble(writer, exec, machine, nprocs);
  const std::string partition = machine.partitionResource();

  std::size_t results = 0;
  // Per-task MPI/app time.
  for (const TaskRow& task : tasks) {
    const std::string proc = exec_root + "/p" + std::to_string(task.task);
    writer.perfResult(exec, {{{proc, partition}, core::FocusType::Primary}}, "mpiP",
                      "application time", task.app_time, "seconds");
    writer.perfResult(exec, {{{proc, partition}, core::FocusType::Primary}}, "mpiP",
                      "MPI time", task.mpi_time, "seconds");
    results += 2;
  }

  // Callsite resources: caller = build function, callee = MPI operation in
  // the environment (libmpi) hierarchy.
  writer.resource("/SMG2000-code", "build");
  writer.resource("/libmpi", "environment");
  std::set<std::string> defined;
  auto callerResource = [&](const Callsite& site) {
    const std::string module = "/SMG2000-code/" + site.file;
    const std::string fn = module + "/" + site.parent;
    if (defined.insert(fn).second) {
      writer.resource(module, "build/module");
      writer.resource(fn, "build/module/function");
    }
    return fn;
  };
  auto calleeResource = [&](const Callsite& site) {
    const std::string fn = "/libmpi/MPI_" + site.mpi_call;
    if (defined.insert(fn).second) {
      writer.resource(fn, "environment/module");
    }
    return fn;
  };

  for (const StatRow& row : stats) {
    const auto site_it = sites.find(row.site);
    if (site_it == sites.end()) {
      throw ParseError("mpiP stats reference unknown callsite " +
                       std::to_string(row.site));
    }
    const Callsite& site = site_it->second;
    const std::string caller = callerResource(site);
    const std::string callee = calleeResource(site);
    const std::string proc = exec_root + "/p" + std::to_string(row.rank);
    // Two resource sets: caller (parent) and callee (child) — no loss of
    // granularity for "time spent in each function according to the
    // calling function".
    const std::vector<core::ResourceSetSpec> sets = {
        {{caller, proc, partition}, core::FocusType::Parent},
        {{callee, proc, partition}, core::FocusType::Child},
    };
    const std::string site_tag = " @" + site.file + ":" + std::to_string(site.line);
    writer.perfResult(exec, sets, "mpiP", site.mpi_call + " mean time" + site_tag,
                      row.mean_ms, "ms");
    writer.perfResult(exec, sets, "mpiP", site.mpi_call + " max time" + site_tag,
                      row.max_ms, "ms");
    writer.perfResult(exec, sets, "mpiP", site.mpi_call + " count" + site_tag, row.count,
                      "calls");
    results += 3;
  }
  return results;
}

std::size_t convertSmgRun(const std::filesystem::path& dir,
                          const sim::MachineConfig& machine, ptdf::Writer& writer) {
  std::size_t results = convertSmgStdout(dir / "smg_stdout.txt", machine, writer);
  const auto mpip = dir / "smg_mpip.txt";
  if (std::filesystem::exists(mpip)) {
    results += convertMpip(mpip, machine, writer);
  }
  return results;
}

}  // namespace perftrack::tools
