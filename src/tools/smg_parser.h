// PerfTrack tool parsers: SMG2000 / PMAPI / mpiP output -> PTdf (§4.2).
#pragma once

#include <filesystem>
#include <string>

#include "ptdf/ptdf.h"
#include "sim/machines.h"

namespace perftrack::tools {

/// Converts the standard SMG2000 output (plus an embedded PMAPI counter
/// section, if present) into PTdf. The eight benchmark values become
/// whole-execution results from tool "SMG2000"; PMAPI lines become
/// per-process counter results from tool "PMAPI".
/// Returns the number of PerfResult records written.
std::size_t convertSmgStdout(const std::filesystem::path& path,
                             const sim::MachineConfig& machine, ptdf::Writer& writer);

/// Converts an mpiP report into PTdf. Per-task MPI times become
/// per-process results; per-callsite rows become results with TWO resource
/// sets — the calling function (parent) and the MPI operation (child) —
/// the §4.2 extension "to record the caller and callee for each value, so
/// we have no loss of granularity".
/// Returns the number of PerfResult records written.
std::size_t convertMpip(const std::filesystem::path& path,
                        const sim::MachineConfig& machine, ptdf::Writer& writer);

/// Converts a full SMG run directory (smg_stdout.txt [+ smg_mpip.txt]).
std::size_t convertSmgRun(const std::filesystem::path& dir,
                          const sim::MachineConfig& machine, ptdf::Writer& writer);

}  // namespace perftrack::tools
