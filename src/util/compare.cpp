#include "util/compare.h"

#include "util/error.h"
#include "util/strings.h"

namespace perftrack::util {

bool comparePredicate(const std::string& lhs, const std::string& comparator,
                      const std::string& rhs) {
  if (comparator == "contains") return lhs.find(rhs) != std::string::npos;
  int c = 0;
  const auto ln = parseReal(lhs);
  const auto rn = parseReal(rhs);
  if (ln && rn) {
    c = *ln < *rn ? -1 : (*ln > *rn ? 1 : 0);
  } else {
    c = lhs.compare(rhs);
    c = c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (comparator == "=" || comparator == "==") return c == 0;
  if (comparator == "!=" || comparator == "<>") return c != 0;
  if (comparator == "<") return c < 0;
  if (comparator == "<=") return c <= 0;
  if (comparator == ">") return c > 0;
  if (comparator == ">=") return c >= 0;
  throw ModelError("unknown comparator '" + comparator + "'");
}

}  // namespace perftrack::util
