// Shared predicate comparator for PerfTrack's attribute filters and result
// tables (one grammar everywhere, per the paper's attribute-selection and
// table-filter dialogs).
#pragma once

#include <string>

namespace perftrack::util {

/// True when `lhs comparator rhs` holds. "contains" is substring match;
/// "=", "==", "!=", "<>", "<", "<=", ">", ">=" compare numerically when both
/// sides parse as numbers, lexicographically otherwise. Throws ModelError on
/// an unknown comparator.
bool comparePredicate(const std::string& lhs, const std::string& comparator,
                      const std::string& rhs);

}  // namespace perftrack::util
