#include "util/csv.h"

#include "util/error.h"

namespace perftrack::util {

std::string csvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void writeCsvRow(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out.put(',');
    out << csvEscape(fields[i]);
  }
  out.put('\n');
}

std::vector<std::string> parseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace perftrack::util
