// PerfTrack utility library: CSV reading and writing.
//
// Used by the query-session export path (the paper's "store data in a format
// suitable for spreadsheet programs to import") and by benchmark harnesses.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace perftrack::util {

/// Quotes a field per RFC 4180 when it contains a comma, quote, or newline.
std::string csvEscape(std::string_view field);

/// Writes one CSV row (fields escaped as needed) followed by '\n'.
void writeCsvRow(std::ostream& out, const std::vector<std::string>& fields);

/// Parses one CSV line into fields, honoring RFC 4180 quoting.
/// Throws ParseError on an unterminated quoted field.
std::vector<std::string> parseCsvLine(std::string_view line);

}  // namespace perftrack::util
