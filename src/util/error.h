// PerfTrack utility library: error types.
//
// All PerfTrack components report recoverable failures either through
// util::Result<T> (preferred on hot paths) or by throwing util::PTError
// (preferred at API boundaries where a caller mistake is unrecoverable).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace perftrack::util {

/// Root exception type for every error raised by PerfTrack libraries.
class PTError : public std::runtime_error {
 public:
  explicit PTError(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Raised by the minidb SQL front-end on malformed statements.
class SqlError : public PTError {
 public:
  explicit SqlError(std::string message) : PTError(std::move(message)) {}
};

/// Raised by the minidb storage layer (page, heap, B+-tree, catalog).
class StorageError : public PTError {
 public:
  explicit StorageError(std::string message) : PTError(std::move(message)) {}
};

/// Raised when parsing external data (PTdf files, tool output) fails.
class ParseError : public PTError {
 public:
  ParseError(std::string message, std::size_t line = 0)
      : PTError(line == 0 ? std::move(message)
                          : "line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// 1-based source line of the failure, or 0 when unknown.
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Raised by the core model on semantic violations (duplicate full resource
/// names, unknown types, malformed filters).
class ModelError : public PTError {
 public:
  explicit ModelError(std::string message) : PTError(std::move(message)) {}
};

}  // namespace perftrack::util
