#include "util/rng.h"

#include <cmath>

namespace perftrack::util {

double Rng::normal(double mean, double stddev) {
  // Box–Muller transform; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::exponential(double lambda) {
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

}  // namespace perftrack::util
