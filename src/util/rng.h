// PerfTrack utility library: deterministic random number generation.
//
// All simulated workloads must be reproducible run-to-run, so every generator
// takes an explicit seed and uses this engine (splitmix64 seeding a
// xoshiro256** core) instead of std::random_device.
#pragma once

#include <cstdint>

namespace perftrack::util {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % range);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Standard normal via Box–Muller (one value per call; the pair's second
  /// value is discarded to keep the generator stateless across calls).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate parameter lambda (> 0).
  double exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace perftrack::util
