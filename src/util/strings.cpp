#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace perftrack::util {

std::vector<std::string> split(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitN(std::string_view input, char sep, std::size_t max_fields) {
  std::vector<std::string> out;
  if (max_fields == 0) return out;
  std::size_t start = 0;
  while (out.size() + 1 < max_fields) {
    std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(input.substr(start));
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    std::size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::int64_t> parseInt(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parseReal(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string formatReal(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

std::string sqlQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('\'');
  for (char c : text) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

}  // namespace perftrack::util
