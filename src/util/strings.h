// PerfTrack utility library: string helpers used across all modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace perftrack::util {

/// Splits `input` at every occurrence of `sep`. Adjacent separators produce
/// empty fields; an empty input yields a single empty field.
std::vector<std::string> split(std::string_view input, char sep);

/// Splits on `sep` but keeps at most `max_fields` fields: the final field
/// receives the remainder of the string verbatim.
std::vector<std::string> splitN(std::string_view input, char sep, std::size_t max_fields);

/// Splits on runs of whitespace, discarding empty fields.
std::vector<std::string> splitWhitespace(std::string_view input);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view input);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// ASCII-only lowercase conversion.
std::string toLower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Parses a signed 64-bit integer; returns nullopt on any trailing garbage.
std::optional<std::int64_t> parseInt(std::string_view text);

/// Parses a double; returns nullopt on any trailing garbage or empty input.
std::optional<double> parseReal(std::string_view text);

/// Formats a double the way PTdf and report tables expect: up to 6 significant
/// fractional digits, no trailing zeros, integral values without a point.
std::string formatReal(double value);

/// Escapes a string for embedding in a single-quoted SQL literal.
std::string sqlQuote(std::string_view text);

}  // namespace perftrack::util
