#include "util/tempdir.h"

#include <atomic>
#include <system_error>

#include "util/error.h"

namespace perftrack::util {

namespace {
std::atomic<std::uint64_t> g_counter{0};
}  // namespace

TempDir::TempDir(const std::string& prefix) {
  const auto base = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto candidate =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(g_counter.fetch_add(1)));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw PTError("TempDir: could not create a unique temporary directory");
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort; ignore errors
}

}  // namespace perftrack::util
