// PerfTrack utility library: RAII temporary directory for tests and benches.
#pragma once

#include <filesystem>
#include <string>

namespace perftrack::util {

/// Creates a unique directory under the system temp path and removes it (and
/// its contents) on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "perftrack");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

  /// Convenience: path to a file inside the directory.
  std::filesystem::path file(const std::string& name) const { return path_ / name; }

 private:
  std::filesystem::path path_;
};

}  // namespace perftrack::util
