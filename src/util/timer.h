// PerfTrack utility library: wall-clock timing for load/query measurements.
#pragma once

#include <chrono>

namespace perftrack::util {

/// Simple monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace perftrack::util
