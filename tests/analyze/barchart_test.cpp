#include "analyze/barchart.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::analyze {
namespace {

TEST(BarChart, RendersTitleUnitsAndValues) {
  BarChart chart;
  chart.title = "demo";
  chart.value_units = "seconds";
  chart.categories = {"np=8", "np=16"};
  chart.series = {{"min", {1.0, 0.5}}, {"max", {2.0, 1.0}}};
  const std::string text = chart.render(20);
  EXPECT_NE(text.find("demo (seconds)"), std::string::npos);
  EXPECT_NE(text.find("np=8"), std::string::npos);
  EXPECT_NE(text.find("min"), std::string::npos);
  EXPECT_NE(text.find(" 2\n"), std::string::npos);
}

TEST(BarChart, BarsScaleToMaxValue) {
  BarChart chart;
  chart.title = "t";
  chart.categories = {"a"};
  chart.series = {{"s", {10.0}}, {"half", {5.0}}};
  const std::string text = chart.render(40);
  // The 10.0 bar is 40 chars; the 5.0 bar is 20.
  EXPECT_NE(text.find(std::string(40, '#')), std::string::npos);
  EXPECT_NE(text.find("|" + std::string(20, '#') + " 5"), std::string::npos);
}

TEST(BarChart, ZeroValuesRenderEmptyBars) {
  BarChart chart;
  chart.title = "t";
  chart.categories = {"a"};
  chart.series = {{"s", {0.0}}};
  const std::string text = chart.render(30);
  EXPECT_NE(text.find("| 0"), std::string::npos);
}

TEST(BarChart, MismatchedSeriesLengthThrows) {
  BarChart chart;
  chart.title = "t";
  chart.categories = {"a", "b"};
  chart.series = {{"s", {1.0}}};
  EXPECT_THROW(chart.render(), util::ModelError);
}

TEST(BarChart, EmptyChartRendersHeaderOnly) {
  BarChart chart;
  chart.title = "empty";
  const std::string text = chart.render();
  EXPECT_EQ(text, "empty\n");
}

}  // namespace
}  // namespace perftrack::analyze
