#include "analyze/compare.h"

#include <gtest/gtest.h>

namespace perftrack::analyze {
namespace {

class CompareTest : public ::testing::Test {
 protected:
  CompareTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    // Two runs of the same code with per-run execution resources and a
    // shared build function — the canonical comparison setting.
    for (const char* exec : {"runA", "runB"}) {
      store_.addExecution(exec, "app");
      const std::string root = std::string("/") + exec;
      store_.addResource(root + "/p0", "execution/process");
      store_.addResource("/app-build/m.c/solve", "build/module/function");
      store_.addResource("/app-build/m.c/setup", "build/module/function");
      const double scale = exec == std::string("runA") ? 1.0 : 2.0;
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/solve", root + "/p0"}, core::FocusType::Primary}},
          "tool", "wall time", 10.0 * scale, "s");
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/setup", root + "/p0"}, core::FocusType::Primary}},
          "tool", "wall time", 1.0, "s");
    }
    // A result only runA has.
    store_.addPerformanceResult(
        "runA", {{{"/app-build/m.c/solve"}, core::FocusType::Primary}}, "tool",
        "exclusive metric", 5.0, "s");
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(CompareTest, ComparableContextCanonicalizesExecutionPrefix) {
  const auto idsA = store_.resultsForExecution("runA");
  const auto idsB = store_.resultsForExecution("runB");
  const auto recA = store_.getResult(idsA[0]);
  const auto recB = store_.getResult(idsB[0]);
  EXPECT_EQ(comparableContext(store_, recA), comparableContext(store_, recB));
  EXPECT_NE(comparableContext(store_, recA).find("$EXEC"), std::string::npos);
}

TEST_F(CompareTest, MatchedRowsAndUnmatchedCounts) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  EXPECT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.unmatched_a, 1u);  // the exclusive metric
  EXPECT_EQ(report.unmatched_b, 0u);
}

TEST_F(CompareTest, DifferenceAndRatio) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  bool saw_solve = false;
  for (const ComparisonRow& row : report.rows) {
    if (row.context.find("solve") != std::string::npos) {
      saw_solve = true;
      EXPECT_DOUBLE_EQ(row.value_a, 10.0);
      EXPECT_DOUBLE_EQ(row.value_b, 20.0);
      EXPECT_DOUBLE_EQ(row.difference(), 10.0);
      EXPECT_DOUBLE_EQ(*row.ratio(), 2.0);
    }
  }
  EXPECT_TRUE(saw_solve);
}

TEST_F(CompareTest, DivergentFiltersByThreshold) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  const auto big = report.divergent(0.5);  // only the 2x row
  ASSERT_EQ(big.size(), 1u);
  EXPECT_DOUBLE_EQ(big[0].difference(), 10.0);
  const auto all = report.divergent(0.0);
  // setup row (ratio exactly 1.0) is not divergent even at threshold 0.
  EXPECT_EQ(all.size(), 1u);
}

TEST_F(CompareTest, ZeroBaselineYieldsNoRatio) {
  ComparisonRow row{"m", "c", 0.0, 5.0};
  EXPECT_FALSE(row.ratio().has_value());
  EXPECT_DOUBLE_EQ(row.difference(), 5.0);
}

TEST_F(CompareTest, ReportTextMentionsEverything) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  const std::string text = report.toText();
  EXPECT_NE(text.find("runA vs runB"), std::string::npos);
  EXPECT_NE(text.find("matched results:   2"), std::string::npos);
  EXPECT_NE(text.find("x2"), std::string::npos);
}

TEST_F(CompareTest, ZeroSharedContextsMatchesNothing) {
  // Two fresh executions whose results live on disjoint shared resources:
  // nothing aligns, everything is unmatched, and the report still renders.
  store_.addExecution("soloA", "app");
  store_.addExecution("soloB", "app");
  store_.addResource("/machX", "grid/machine");
  store_.addResource("/machY", "grid/machine");
  store_.addPerformanceResult("soloA", {{{"/machX"}, core::FocusType::Primary}},
                              "tool", "wall time", 3.0, "s");
  store_.addPerformanceResult("soloB", {{{"/machY"}, core::FocusType::Primary}},
                              "tool", "wall time", 4.0, "s");
  const ComparisonReport report = compareExecutions(store_, "soloA", "soloB");
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.unmatched_a, 1u);
  EXPECT_EQ(report.unmatched_b, 1u);
  EXPECT_TRUE(report.divergent(0.0).empty());
  EXPECT_NE(report.toText().find("matched results:   0"), std::string::npos);
}

TEST_F(CompareTest, MetricPresentOnOneSideOnlyStaysUnmatched) {
  // Same context on both sides, but the metric differs: metric is part of
  // the match key, so these must not be compared against each other.
  store_.addExecution("mA", "app");
  store_.addExecution("mB", "app");
  store_.addResource("/shared", "grid/machine");
  store_.addPerformanceResult("mA", {{{"/shared"}, core::FocusType::Primary}},
                              "tool", "cache misses", 100.0);
  store_.addPerformanceResult("mB", {{{"/shared"}, core::FocusType::Primary}},
                              "tool", "tlb misses", 90.0);
  const ComparisonReport report = compareExecutions(store_, "mA", "mB");
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.unmatched_a, 1u);
  EXPECT_EQ(report.unmatched_b, 1u);
}

TEST_F(CompareTest, ZeroBaselineRowSurvivesDivergentFilter) {
  // A zero-valued baseline has no ratio; divergent() must classify it by
  // difference instead of crashing or silently dropping it.
  store_.addExecution("zA", "app");
  store_.addExecution("zB", "app");
  store_.addResource("/zmach", "grid/machine");
  store_.addPerformanceResult("zA", {{{"/zmach"}, core::FocusType::Primary}},
                              "tool", "page faults", 0.0);
  store_.addPerformanceResult("zB", {{{"/zmach"}, core::FocusType::Primary}},
                              "tool", "page faults", 25.0);
  const ComparisonReport report = compareExecutions(store_, "zA", "zB");
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.rows[0].ratio().has_value());
  const auto divergent = report.divergent(0.1);
  ASSERT_EQ(divergent.size(), 1u);
  EXPECT_DOUBLE_EQ(divergent[0].difference(), 25.0);
}

TEST_F(CompareTest, SelfComparisonIsClean) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runA");
  EXPECT_EQ(report.unmatched_a, 0u);
  EXPECT_EQ(report.unmatched_b, 0u);
  for (const ComparisonRow& row : report.rows) {
    EXPECT_DOUBLE_EQ(row.difference(), 0.0);
  }
}

}  // namespace
}  // namespace perftrack::analyze
