#include "analyze/compare.h"

#include <gtest/gtest.h>

namespace perftrack::analyze {
namespace {

class CompareTest : public ::testing::Test {
 protected:
  CompareTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    // Two runs of the same code with per-run execution resources and a
    // shared build function — the canonical comparison setting.
    for (const char* exec : {"runA", "runB"}) {
      store_.addExecution(exec, "app");
      const std::string root = std::string("/") + exec;
      store_.addResource(root + "/p0", "execution/process");
      store_.addResource("/app-build/m.c/solve", "build/module/function");
      store_.addResource("/app-build/m.c/setup", "build/module/function");
      const double scale = exec == std::string("runA") ? 1.0 : 2.0;
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/solve", root + "/p0"}, core::FocusType::Primary}},
          "tool", "wall time", 10.0 * scale, "s");
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/setup", root + "/p0"}, core::FocusType::Primary}},
          "tool", "wall time", 1.0, "s");
    }
    // A result only runA has.
    store_.addPerformanceResult(
        "runA", {{{"/app-build/m.c/solve"}, core::FocusType::Primary}}, "tool",
        "exclusive metric", 5.0, "s");
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(CompareTest, ComparableContextCanonicalizesExecutionPrefix) {
  const auto idsA = store_.resultsForExecution("runA");
  const auto idsB = store_.resultsForExecution("runB");
  const auto recA = store_.getResult(idsA[0]);
  const auto recB = store_.getResult(idsB[0]);
  EXPECT_EQ(comparableContext(store_, recA), comparableContext(store_, recB));
  EXPECT_NE(comparableContext(store_, recA).find("$EXEC"), std::string::npos);
}

TEST_F(CompareTest, MatchedRowsAndUnmatchedCounts) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  EXPECT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.unmatched_a, 1u);  // the exclusive metric
  EXPECT_EQ(report.unmatched_b, 0u);
}

TEST_F(CompareTest, DifferenceAndRatio) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  bool saw_solve = false;
  for (const ComparisonRow& row : report.rows) {
    if (row.context.find("solve") != std::string::npos) {
      saw_solve = true;
      EXPECT_DOUBLE_EQ(row.value_a, 10.0);
      EXPECT_DOUBLE_EQ(row.value_b, 20.0);
      EXPECT_DOUBLE_EQ(row.difference(), 10.0);
      EXPECT_DOUBLE_EQ(*row.ratio(), 2.0);
    }
  }
  EXPECT_TRUE(saw_solve);
}

TEST_F(CompareTest, DivergentFiltersByThreshold) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  const auto big = report.divergent(0.5);  // only the 2x row
  ASSERT_EQ(big.size(), 1u);
  EXPECT_DOUBLE_EQ(big[0].difference(), 10.0);
  const auto all = report.divergent(0.0);
  // setup row (ratio exactly 1.0) is not divergent even at threshold 0.
  EXPECT_EQ(all.size(), 1u);
}

TEST_F(CompareTest, ZeroBaselineYieldsNoRatio) {
  ComparisonRow row{"m", "c", 0.0, 5.0};
  EXPECT_FALSE(row.ratio().has_value());
  EXPECT_DOUBLE_EQ(row.difference(), 5.0);
}

TEST_F(CompareTest, ReportTextMentionsEverything) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runB");
  const std::string text = report.toText();
  EXPECT_NE(text.find("runA vs runB"), std::string::npos);
  EXPECT_NE(text.find("matched results:   2"), std::string::npos);
  EXPECT_NE(text.find("x2"), std::string::npos);
}

TEST_F(CompareTest, SelfComparisonIsClean) {
  const ComparisonReport report = compareExecutions(store_, "runA", "runA");
  EXPECT_EQ(report.unmatched_a, 0u);
  EXPECT_EQ(report.unmatched_b, 0u);
  for (const ComparisonRow& row : report.rows) {
    EXPECT_DOUBLE_EQ(row.difference(), 0.0);
  }
}

}  // namespace
}  // namespace perftrack::analyze
