#include "analyze/loadbalance.h"

#include <gtest/gtest.h>

namespace perftrack::analyze {
namespace {

class LoadBalanceTest : public ::testing::Test {
 protected:
  LoadBalanceTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    store_.addResource("/app-build/m.c/kernel", "build/module/function");
    // Three executions at growing process counts with widening min/max gap.
    int np = 8;
    double min_t = 8.0;
    for (int i = 0; i < 3; ++i) {
      const std::string exec = "run-np" + std::to_string(np);
      store_.addExecution(exec, "app");
      store_.addResource("/" + exec, "execution");
      store_.addResourceAttribute("/" + exec, "nprocs", std::to_string(np));
      const double max_t = min_t * (1.0 + 0.1 * (i + 1));
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/kernel", "/" + exec}, core::FocusType::Primary}},
          "tool", "wall time (min)", min_t, "s");
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/kernel", "/" + exec}, core::FocusType::Primary}},
          "tool", "wall time (max)", max_t, "s");
      // Distractor metric that must not leak into the study.
      store_.addPerformanceResult(
          exec, {{{"/app-build/m.c/kernel", "/" + exec}, core::FocusType::Primary}},
          "tool", "CPU time (max)", 99.0, "s");
      np *= 2;
      min_t /= 2.0;
    }
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(LoadBalanceTest, PointsSortedByProcessCount) {
  const auto points = loadBalanceStudy(store_, "/app-build/m.c/kernel", "wall time");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].nprocs, 8);
  EXPECT_EQ(points[1].nprocs, 16);
  EXPECT_EQ(points[2].nprocs, 32);
}

TEST_F(LoadBalanceTest, MinMaxPairedPerExecution) {
  const auto points = loadBalanceStudy(store_, "/app-build/m.c/kernel", "wall time");
  EXPECT_DOUBLE_EQ(points[0].min_value, 8.0);
  EXPECT_DOUBLE_EQ(points[0].max_value, 8.8);
  EXPECT_NEAR(points[0].imbalance(), 1.1, 1e-9);
  EXPECT_NEAR(points[2].imbalance(), 1.3, 1e-9);
}

TEST_F(LoadBalanceTest, ImbalanceGrowsAcrossPoints) {
  const auto points = loadBalanceStudy(store_, "/app-build/m.c/kernel", "wall time");
  EXPECT_LT(points[0].imbalance(), points[2].imbalance());
}

TEST_F(LoadBalanceTest, UnknownFunctionYieldsNoPoints) {
  EXPECT_TRUE(loadBalanceStudy(store_, "/app-build/m.c/ghost", "wall time").empty());
}

TEST_F(LoadBalanceTest, DistractorMetricIgnored) {
  // CPU-time rows must not contaminate the wall-time study.
  const auto points = loadBalanceStudy(store_, "/app-build/m.c/kernel", "wall time");
  for (const auto& point : points) {
    EXPECT_LT(point.max_value, 10.0);
  }
}

TEST_F(LoadBalanceTest, ChartHasOneCategoryPerPointAndTwoSeries) {
  const auto points = loadBalanceStudy(store_, "/app-build/m.c/kernel", "wall time");
  const BarChart chart = loadBalanceChart(points, "kernel", "seconds");
  ASSERT_EQ(chart.categories.size(), 3u);
  EXPECT_EQ(chart.categories[0], "np=8");
  ASSERT_EQ(chart.series.size(), 2u);
  EXPECT_EQ(chart.series[0].label, "min");
  EXPECT_EQ(chart.series[1].label, "max");
  EXPECT_DOUBLE_EQ(chart.series[1].values[0], 8.8);
  // Renders without throwing.
  EXPECT_FALSE(chart.render().empty());
}

}  // namespace
}  // namespace perftrack::analyze
