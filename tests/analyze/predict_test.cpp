#include "analyze/predict.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::analyze {
namespace {

class PredictTest : public ::testing::Test {
 protected:
  PredictTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    addRun("run-np8", 8, 16.0);
    addRun("run-np32", 32, 4.4);  // slightly worse than ideal 4.0
  }

  void addRun(const std::string& exec, int nprocs, double seconds) {
    store_.addExecution(exec, "app");
    store_.addResource("/" + exec, "execution");
    store_.addResourceAttribute("/" + exec, "nprocs", std::to_string(nprocs));
    store_.addResource("/" + exec + "/p0", "execution/process");
    store_.addResource("/app-build/m.c/solve", "build/module/function");
    store_.addPerformanceResult(
        exec,
        {{{"/app-build/m.c/solve", "/" + exec, "/" + exec + "/p0"},
          core::FocusType::Primary}},
        "tool", "wall time", seconds, "s");
    store_.addPerformanceResult(
        exec,
        {{{"/app-build/m.c/solve", "/" + exec, "/" + exec + "/p0"},
          core::FocusType::Primary}},
        "tool", "FP ops", 1e9, "count");
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(PredictTest, LinearModelScalesTimeOnly) {
  const auto model = linearScalingModel();
  EXPECT_DOUBLE_EQ(model("wall time", 16.0, 8, 32), 4.0);
  EXPECT_DOUBLE_EQ(model("CPU time (max)", 10.0, 8, 16), 5.0);
  EXPECT_DOUBLE_EQ(model("FP ops", 1e9, 8, 32), 1e9);  // counters unchanged
}

TEST_F(PredictTest, AmdahlModelBoundsScaling) {
  const auto model = amdahlScalingModel(0.1);
  // With 10% serial work, 8 -> infinite procs can't go below ~0.1/0.2125.
  const double predicted = model("wall time", 1.0, 8, 1 << 20);
  EXPECT_GT(predicted, 0.45);
  EXPECT_LT(predicted, 0.5);
  // No serial fraction = linear.
  EXPECT_NEAR(amdahlScalingModel(0.0)("wall time", 16.0, 8, 32), 4.0, 1e-12);
}

TEST_F(PredictTest, PredictedExecutionMaterializedInStore) {
  const std::string pred =
      predictExecution(store_, "run-np8", 32, linearScalingModel());
  EXPECT_EQ(pred, "run-np8-pred-np32");
  // It is a first-class execution with results from the model tool.
  const auto ids = store_.resultsForExecution(pred);
  ASSERT_EQ(ids.size(), 2u);
  for (std::int64_t id : ids) {
    const auto rec = store_.getResult(id);
    EXPECT_EQ(rec.tool, "PerfTrack-model");
    if (rec.metric == "wall time") {
      EXPECT_DOUBLE_EQ(rec.value, 4.0);
    }
    if (rec.metric == "FP ops") {
      EXPECT_DOUBLE_EQ(rec.value, 1e9);
    }
  }
  // Root resource carries provenance.
  const auto root = store_.findResource("/" + pred);
  ASSERT_TRUE(root.has_value());
  bool saw_provenance = false;
  for (const auto& attr : store_.attributesOf(*root)) {
    if (attr.name == "predicted from" && attr.value == "run-np8") saw_provenance = true;
  }
  EXPECT_TRUE(saw_provenance);
}

TEST_F(PredictTest, PredictionContextsRerootPerExecutionResources) {
  const std::string pred =
      predictExecution(store_, "run-np8", 32, linearScalingModel());
  const auto rec = store_.getResult(store_.resultsForExecution(pred).at(0));
  bool saw_shared = false;
  bool saw_rerooted = false;
  for (core::ResourceId id : rec.contexts.at(0)) {
    const auto info = store_.resourceInfo(id);
    if (info.full_name == "/app-build/m.c/solve") saw_shared = true;
    if (info.full_name == "/" + pred + "/p0") saw_rerooted = true;
  }
  EXPECT_TRUE(saw_shared);
  EXPECT_TRUE(saw_rerooted);
}

TEST_F(PredictTest, PredictionErrorComparesAgainstActual) {
  const ComparisonReport report = predictionError(
      store_, "run-np8", "run-np32", 32, linearScalingModel());
  ASSERT_EQ(report.rows.size(), 2u);
  for (const ComparisonRow& row : report.rows) {
    if (row.metric == "wall time") {
      // Predicted 4.0, actual 4.4: the model under-predicts by 10%.
      EXPECT_DOUBLE_EQ(row.value_a, 4.0);
      EXPECT_DOUBLE_EQ(row.value_b, 4.4);
      EXPECT_NEAR(*row.ratio(), 1.1, 1e-9);
    }
  }
  EXPECT_EQ(report.unmatched_a, 0u);
}

TEST_F(PredictTest, DuplicatePredictionNameThrows) {
  predictExecution(store_, "run-np8", 32, linearScalingModel());
  EXPECT_THROW(predictExecution(store_, "run-np8", 32, linearScalingModel()),
               util::ModelError);
  // A distinct label keeps the second model's results separate.
  EXPECT_NO_THROW(
      predictExecution(store_, "run-np8", 32, amdahlScalingModel(0.01), "amdahl"));
}

TEST_F(PredictTest, MissingBaselineThrows) {
  EXPECT_THROW(predictExecution(store_, "ghost", 32, linearScalingModel()),
               util::ModelError);
}

TEST_F(PredictTest, BaselineWithoutNprocsThrows) {
  store_.addExecution("no-nprocs", "app");
  store_.addResource("/no-nprocs", "execution");
  store_.addPerformanceResult("no-nprocs", {{{"/no-nprocs"}, core::FocusType::Primary}},
                              "tool", "wall time", 1.0, "s");
  EXPECT_THROW(predictExecution(store_, "no-nprocs", 32, linearScalingModel()),
               util::ModelError);
}

}  // namespace
}  // namespace perftrack::analyze
