#include "analyze/scaling.h"

#include <gtest/gtest.h>

namespace perftrack::analyze {
namespace {

class ScalingTest : public ::testing::Test {
 protected:
  ScalingTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    // Near-linear scaling with a small efficiency loss at high p.
    addRun("app", 8, 80.0);
    addRun("app", 16, 41.0);
    addRun("app", 32, 22.0);
    addRun("other", 8, 500.0);  // different application: must not leak in
  }

  void addRun(const std::string& app, int nprocs, double seconds) {
    const std::string exec = app + "-np" + std::to_string(nprocs);
    store_.addExecution(exec, app);
    store_.addResource("/" + exec, "execution");
    store_.addResourceAttribute("/" + exec, "nprocs", std::to_string(nprocs));
    store_.addPerformanceResult(exec, {{{"/" + exec}, core::FocusType::Primary}},
                                "tool", "total wall time", seconds, "seconds");
    store_.addPerformanceResult(exec, {{{"/" + exec}, core::FocusType::Primary}},
                                "tool", "peak memory", 100.0, "MB");
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(ScalingTest, PointsSortedAndScopedToApplication) {
  const auto points = scalingStudy(store_, "app", "total wall time");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].nprocs, 8);
  EXPECT_EQ(points[2].nprocs, 32);
  for (const auto& point : points) {
    EXPECT_NE(point.execution, "other-np8");
  }
}

TEST_F(ScalingTest, SpeedupAndEfficiencyRelativeToSmallestRun) {
  const auto points = scalingStudy(store_, "app", "total wall time");
  EXPECT_DOUBLE_EQ(points[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  EXPECT_NEAR(points[1].speedup, 80.0 / 41.0, 1e-9);
  EXPECT_NEAR(points[1].efficiency, (80.0 / 41.0) * 8.0 / 16.0, 1e-9);
  EXPECT_NEAR(points[2].efficiency, (80.0 / 22.0) * 8.0 / 32.0, 1e-9);
  EXPECT_LT(points[2].efficiency, 1.0);  // sublinear, as constructed
}

TEST_F(ScalingTest, UnknownMetricOrAppYieldsEmpty) {
  EXPECT_TRUE(scalingStudy(store_, "app", "no such metric").empty());
  EXPECT_TRUE(scalingStudy(store_, "ghost", "total wall time").empty());
}

TEST_F(ScalingTest, TableRendersAllRows) {
  const auto points = scalingStudy(store_, "app", "total wall time");
  const std::string table = scalingTable(points, "app scaling");
  EXPECT_NE(table.find("app scaling"), std::string::npos);
  EXPECT_NE(table.find("np"), std::string::npos);
  EXPECT_NE(table.find("32"), std::string::npos);
  EXPECT_NE(table.find("100.0%"), std::string::npos);  // base efficiency
}

TEST_F(ScalingTest, ChartHasMeasuredAndIdealSeries) {
  const auto points = scalingStudy(store_, "app", "total wall time");
  const BarChart chart = scalingChart(points, "app scaling");
  ASSERT_EQ(chart.series.size(), 2u);
  EXPECT_EQ(chart.series[0].label, "measured");
  EXPECT_EQ(chart.series[1].label, "ideal");
  // Ideal halves with every doubling from the np=8 base.
  EXPECT_DOUBLE_EQ(chart.series[1].values[0], 80.0);
  EXPECT_DOUBLE_EQ(chart.series[1].values[1], 40.0);
  EXPECT_DOUBLE_EQ(chart.series[1].values[2], 20.0);
  EXPECT_FALSE(chart.render().empty());
}

}  // namespace
}  // namespace perftrack::analyze
