#include "analyze/session_shell.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace perftrack::analyze {
namespace {

class SessionShellTest : public ::testing::Test {
 protected:
  SessionShellTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    store_.addResource("/G/Frost/batch/n0/p0", "grid/machine/partition/node/processor");
    store_.addResourceAttribute("/G/Frost", "os", "AIX");
    for (const char* exec : {"run-a", "run-b"}) {
      store_.addExecution(exec, "app");
      const std::string root = std::string("/") + exec;
      store_.addResource(root, "execution");
      store_.addResource("/code/m.c/solve", "build/module/function");
      store_.addPerformanceResult(
          exec, {{{"/code/m.c/solve", root, "/G/Frost/batch/n0/p0"},
                  core::FocusType::Primary}},
          "tool", "wall time", exec == std::string("run-a") ? 10.0 : 5.0, "s");
    }
  }

  std::string run(const std::string& script, std::size_t expected_failures = 0) {
    std::istringstream in(script);
    std::ostringstream out;
    const std::size_t failures = runSessionScript(store_, in, out);
    EXPECT_EQ(failures, expected_failures) << out.str();
    return out.str();
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(SessionShellTest, ParseFamilySpecForms) {
  EXPECT_EQ(parseFamilySpec("type=grid/machine").describe(), "type=grid/machine (N)");
  EXPECT_EQ(parseFamilySpec("name=Frost").describe(), "name=Frost (D)");
  EXPECT_EQ(parseFamilySpec("name=Frost:N").describe(), "name=Frost (N)");
  EXPECT_EQ(parseFamilySpec("type=time:B").describe(), "type=time (B)");
  EXPECT_EQ(parseFamilySpec("attr=os=AIX").describe(), "attrs[os=AIX] (N)");
  EXPECT_EQ(parseFamilySpec("attr=clock>100:D").describe(), "attrs[clock>100] (D)");
  EXPECT_THROW(parseFamilySpec("nonsense"), util::ModelError);
  EXPECT_THROW(parseFamilySpec("attr=no-operator"), util::ModelError);
  EXPECT_THROW(parseFamilySpec("what=x"), util::ModelError);
}

TEST_F(SessionShellTest, BrowseCommands) {
  const std::string out = run(
      "types\n"
      "top grid\n"
      "children /G/Frost\n"
      "attrs /G/Frost\n");
  EXPECT_NE(out.find("grid/machine/partition/node/processor"), std::string::npos);
  EXPECT_NE(out.find("/G [grid]"), std::string::npos);
  EXPECT_NE(out.find("/G/Frost/batch [grid/machine/partition]"), std::string::npos);
  EXPECT_NE(out.find("os = AIX (string)"), std::string::npos);
}

TEST_F(SessionShellTest, FullQueryWorkflow) {
  const std::string out = run(
      "# the Figure 3/4 workflow\n"
      "family name=Frost\n"
      "family type=build/module/function\n"
      "counts\n"
      "run\n"
      "columns\n"
      "addcol execution\n"
      "sort value desc\n"
      "show\n"
      "csv\n");
  EXPECT_NE(out.find("family 0: name=Frost (D)"), std::string::npos);
  EXPECT_NE(out.find("total: 2"), std::string::npos);
  EXPECT_NE(out.find("retrieved 2 results"), std::string::npos);
  EXPECT_NE(out.find("execution,metric,tool,value,units,execution"),
            std::string::npos);
  // desc sort puts run-a (10s) before run-b (5s) in the CSV.
  const auto pos_a = out.find("run-a,wall time");
  const auto pos_b = out.find("run-b,wall time");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

TEST_F(SessionShellTest, CountsReactToExpandAndRemove) {
  const std::string out = run(
      "family name=Frost:N\n"
      "counts\n"
      "expand 0 D\n"
      "counts\n"
      "family name=/no/such/thing:N\n"
      "counts\n"
      "remove 1\n"
      "counts\n");
  // N: machine-level only -> 0; D: subtree -> 2; impossible family -> 0;
  // removed -> back to 2.
  EXPECT_NE(out.find("(name=Frost (N)): 0"), std::string::npos);
  EXPECT_NE(out.find("(name=Frost (D)): 2"), std::string::npos);
  const auto first_total2 = out.find("total: 2");
  ASSERT_NE(first_total2, std::string::npos);
  EXPECT_NE(out.find("total: 0", first_total2), std::string::npos);
  EXPECT_NE(out.rfind("total: 2"), first_total2);
}

TEST_F(SessionShellTest, FilterAndChart) {
  const std::string out = run(
      "run\n"
      "filter value > 7\n"
      "addcol execution\n"
      "chart execution value\n");
  EXPECT_NE(out.find("1 rows remain"), std::string::npos);
  EXPECT_NE(out.find("value by execution"), std::string::npos);
  EXPECT_NE(out.find("run-a"), std::string::npos);
}

TEST_F(SessionShellTest, ErrorsAreReportedAndCounted) {
  const std::string out = run(
      "bogus command here\n"
      "show\n"          // no table yet
      "attrs /missing\n"
      "run\n",          // still works afterwards
      /*expected_failures=*/3);
  EXPECT_NE(out.find("error: unknown command"), std::string::npos);
  EXPECT_NE(out.find("error: no current table"), std::string::npos);
  EXPECT_NE(out.find("error: no resource named /missing"), std::string::npos);
  EXPECT_NE(out.find("retrieved 2 results"), std::string::npos);
}

TEST_F(SessionShellTest, CommentsAndBlankLinesIgnored) {
  const std::string out = run("\n# nothing but comments\n\n   \n");
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace perftrack::analyze
