#include "collect/collect.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/datastore.h"
#include "sim/irs_gen.h"
#include "sim/machines.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::collect {
namespace {

/// Generates a real capture pair via the IRS generator.
class CollectTest : public ::testing::Test {
 protected:
  CollectTest() {
    sim::IrsRunSpec spec{sim::frostConfig(), 8, "MPI/OpenMP", 3, ""};
    run_ = sim::generateIrsRun(spec, dir_.path());
  }

  util::TempDir dir_;
  sim::GeneratedRun run_;
};

TEST_F(CollectTest, ParseBuildFileFields) {
  const BuildInfo info = parseBuildFile(dir_.file("irs_build.txt"));
  EXPECT_EQ(info.application, "IRS");
  EXPECT_EQ(info.compiler, "xlc");  // Frost is AIX
  EXPECT_EQ(info.compiler_version, "6.0.0.8");
  EXPECT_NE(info.compiler_flags.find("-O3"), std::string::npos);
  EXPECT_EQ(info.mpi_wrapper, "mpcc");
  ASSERT_EQ(info.static_libs.size(), 2u);
  EXPECT_EQ(info.static_libs[0].name, "libhypre.a");
  EXPECT_EQ(info.static_libs[0].version, "1.8.4");
}

TEST_F(CollectTest, ParseRunFileFields) {
  const RunInfo info = parseRunFile(dir_.file("irs_env.txt"));
  EXPECT_EQ(info.machine, "Frost");
  EXPECT_EQ(info.nprocs, 8);
  EXPECT_EQ(info.nthreads, 4);  // MPI/OpenMP run
  EXPECT_EQ(info.concurrency, "MPI/OpenMP");
  EXPECT_EQ(info.input_deck, "irs_3d_std.in");
  EXPECT_EQ(info.env_vars.at("OMP_NUM_THREADS"), "4");
  ASSERT_EQ(info.dynamic_libs.size(), 3u);
  EXPECT_EQ(info.dynamic_libs[0].path, "/usr/lib/libmpi.so");
  EXPECT_EQ(info.dynamic_libs[0].kind, "MPI");
  EXPECT_EQ(info.dynamic_libs[0].timestamp, "2005-01-07T12:00:00");
}

TEST_F(CollectTest, MalformedCapturesThrow) {
  const auto bad = dir_.file("bad.txt");
  {
    std::ofstream out(bad);
    out << "not a key value line\n";
  }
  EXPECT_THROW(parseBuildFile(bad), util::ParseError);
  EXPECT_THROW(parseRunFile(bad), util::ParseError);
  EXPECT_THROW(parseBuildFile(dir_.file("missing.txt")), util::PTError);
}

TEST_F(CollectTest, UnknownKeysRejected) {
  const auto weird = dir_.file("weird.txt");
  {
    std::ofstream out(weird);
    out << "mystery_key=value\n";
  }
  EXPECT_THROW(parseBuildFile(weird), util::ParseError);
  EXPECT_THROW(parseRunFile(weird), util::ParseError);
}

TEST_F(CollectTest, EmitBuildPtdfLoadsIntoStore) {
  const BuildInfo info = parseBuildFile(dir_.file("irs_build.txt"));
  std::ostringstream out;
  ptdf::Writer writer(out);
  emitBuildPtdf(writer, info, run_.exec_name);

  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  std::istringstream in(out.str());
  ptdf::load(store, in);

  const auto build = store.findResource("/build-" + run_.exec_name);
  ASSERT_TRUE(build.has_value());
  const auto attrs = store.attributesOf(*build);
  bool saw_flags = false;
  bool saw_compiler_link = false;
  for (const auto& attr : attrs) {
    if (attr.name == "compiler flags") saw_flags = true;
    if (attr.attr_type == "resource" && attr.value == "/xlc") saw_compiler_link = true;
  }
  EXPECT_TRUE(saw_flags);
  EXPECT_TRUE(saw_compiler_link);  // compiler is an attribute of the build
  // Static libraries became build/module resources.
  EXPECT_TRUE(store.findResource("/build-" + run_.exec_name + "/libhypre.a").has_value());
  // Compiler resource with version attribute.
  const auto compiler = store.findResource("/xlc");
  ASSERT_TRUE(compiler.has_value());
  EXPECT_EQ(store.attributesOf(*compiler).at(0).value, "6.0.0.8");
}

TEST_F(CollectTest, EmitRunPtdfLoadsIntoStore) {
  const RunInfo info = parseRunFile(dir_.file("irs_env.txt"));
  std::ostringstream out;
  ptdf::Writer writer(out);
  emitRunPtdf(writer, info, run_.exec_name);

  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  std::istringstream in(out.str());
  ptdf::load(store, in);

  // Execution hierarchy: root + 8 processes x 4 threads.
  const auto root = store.findResource("/" + run_.exec_name);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(store.childrenOf(*root).size(), 8u);
  const auto p0 = store.findResource("/" + run_.exec_name + "/p0");
  ASSERT_TRUE(p0.has_value());
  EXPECT_EQ(store.childrenOf(*p0).size(), 4u);  // threads
  // Environment hierarchy: one module per dynamic library.
  const auto env = store.findResource("/env-" + run_.exec_name);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(store.childrenOf(*env).size(), 3u);
  // Input deck + operating system resources linked via constraints.
  EXPECT_TRUE(store.findResource("/irs_3d_std.in").has_value());
  EXPECT_TRUE(store.findResource("/AIX").has_value());
  const auto linked = store.constraintsOf(*root);
  EXPECT_EQ(linked.size(), 2u);  // inputDeck + operatingSystem
}

TEST_F(CollectTest, SingleThreadedRunHasNoThreadResources) {
  RunInfo info = parseRunFile(dir_.file("irs_env.txt"));
  info.nthreads = 1;
  std::ostringstream out;
  ptdf::Writer writer(out);
  emitRunPtdf(writer, info, "st-run");
  EXPECT_EQ(out.str().find("execution/process/thread"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::collect
