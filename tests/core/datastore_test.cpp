#include "core/datastore.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace perftrack::core {
namespace {

class DataStoreTest : public ::testing::Test {
 protected:
  DataStoreTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST_F(DataStoreTest, InitializeLoadsBaseTypes) {
  EXPECT_TRUE(store_.hasResourceType("grid"));
  EXPECT_TRUE(store_.hasResourceType("grid/machine/partition/node/processor"));
  EXPECT_TRUE(store_.hasResourceType("time/interval"));
  EXPECT_TRUE(store_.hasResourceType("application"));
  EXPECT_FALSE(store_.hasResourceType("nonsense"));
  // 5 hierarchies (4+5+4+3+2 = 18 paths) + 8 single-level = 26 type rows.
  EXPECT_EQ(store_.stats().resource_types, 26);
}

TEST_F(DataStoreTest, InitializeIsIdempotent) {
  store_.initialize();
  EXPECT_EQ(store_.stats().resource_types, 26);
}

TEST_F(DataStoreTest, TypeExtensionAddsNewHierarchy) {
  // §4.3: a new top-level hierarchy for Paradyn's syncObject.
  store_.addResourceType("syncObject/message/communicator");
  EXPECT_TRUE(store_.hasResourceType("syncObject"));
  EXPECT_TRUE(store_.hasResourceType("syncObject/message"));
  const auto children = store_.childTypes("syncObject");
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "syncObject/message");
}

TEST_F(DataStoreTest, TypeExtensionDeepensExistingHierarchy) {
  // §2.1: extend Time with a phase level under interval.
  store_.addResourceType("time/interval/phase");
  EXPECT_TRUE(store_.hasResourceType("time/interval/phase"));
  const auto children = store_.childTypes("time/interval");
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "time/interval/phase");
}

TEST_F(DataStoreTest, RootTypesListedUnderEmptyPath) {
  const auto roots = store_.childTypes("");
  EXPECT_NE(std::find(roots.begin(), roots.end(), "grid"), roots.end());
  EXPECT_NE(std::find(roots.begin(), roots.end(), "application"), roots.end());
}

TEST_F(DataStoreTest, AddResourceCreatesAncestors) {
  const ResourceId id = store_.addResource("/SingleMachineFrost/Frost/batch/frost121/p0",
                                           "grid/machine/partition/node/processor");
  EXPECT_GT(id, 0);
  // All four ancestors were created with prefix types.
  const auto frost = store_.findResource("/SingleMachineFrost/Frost");
  ASSERT_TRUE(frost.has_value());
  EXPECT_EQ(store_.resourceInfo(*frost).type_path, "grid/machine");
  const auto batch = store_.findResource("/SingleMachineFrost/Frost/batch");
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(store_.resourceInfo(*batch).type_path, "grid/machine/partition");
}

TEST_F(DataStoreTest, AddResourceIsIdempotent) {
  const ResourceId a = store_.addResource("/Frost/batch", "grid/machine/partition");
  const ResourceId b = store_.addResource("/Frost/batch", "grid/machine/partition");
  EXPECT_EQ(a, b);
  EXPECT_EQ(store_.resourcesNamed("batch").size(), 1u);
}

TEST_F(DataStoreTest, ResourceDeeperThanTypeRejected) {
  EXPECT_THROW(store_.addResource("/a/b/c", "time/interval"), util::ModelError);
}

TEST_F(DataStoreTest, ClosureTablesPopulated) {
  const ResourceId p0 = store_.addResource("/G/M/B/N/P", "grid/machine/partition/node/processor");
  const auto ancestors = store_.ancestorsOf(p0);
  EXPECT_EQ(ancestors.size(), 4u);
  const auto g = store_.findResource("/G");
  ASSERT_TRUE(g.has_value());
  const auto descendants = store_.descendantsOf(*g);
  EXPECT_EQ(descendants.size(), 4u);
  EXPECT_NE(std::find(descendants.begin(), descendants.end(), p0), descendants.end());
}

TEST_F(DataStoreTest, AddResourceRegistersNewTypePaths) {
  // addResource routes through the type-extension interface, so a resource
  // with a novel type path implicitly registers that path.
  store_.addResource("/sessionX/bin42", "paradynPhase/bin");
  EXPECT_TRUE(store_.hasResourceType("paradynPhase/bin"));
  EXPECT_EQ(store_.resourceInfo(*store_.findResource("/sessionX/bin42")).type_path,
            "paradynPhase/bin");
}

TEST_F(DataStoreTest, ResourcesNamedAcrossMachines) {
  store_.addResource("/GridX/Frost/batch", "grid/machine/partition");
  store_.addResource("/GridX/MCR/batch", "grid/machine/partition");
  const auto batches = store_.resourcesNamed("batch");
  EXPECT_EQ(batches.size(), 2u);
}

TEST_F(DataStoreTest, AttributesStoredAndListed) {
  store_.addResource("/G/M/B/N/P", "grid/machine/partition/node/processor");
  store_.addResourceAttribute("/G/M/B/N/P", "vendor", "IBM");
  store_.addResourceAttribute("/G/M/B/N/P", "clock MHz", "375");
  const auto id = *store_.findResource("/G/M/B/N/P");
  const auto attrs = store_.attributesOf(id);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].name, "clock MHz");
  EXPECT_EQ(attrs[0].value, "375");
  EXPECT_EQ(attrs[1].name, "vendor");
  EXPECT_EQ(attrs[1].attr_type, "string");
}

TEST_F(DataStoreTest, AttributeOnUnknownResourceThrows) {
  EXPECT_THROW(store_.addResourceAttribute("/missing", "a", "b"), util::ModelError);
}

TEST_F(DataStoreTest, ResourceConstraintLinksResources) {
  store_.addResource("/Exec1/proc8", "execution/process");
  store_.addResource("/G/M/B/node16", "grid/machine/partition/node");
  store_.addResourceConstraint("/Exec1/proc8", "/G/M/B/node16");
  const auto pid = *store_.findResource("/Exec1/proc8");
  const auto linked = store_.constraintsOf(pid);
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(store_.resourceInfo(linked[0]).full_name, "/G/M/B/node16");
  // The constraint also appears as an attribute of type 'resource'.
  const auto attrs = store_.attributesOf(pid);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].attr_type, "resource");
  EXPECT_EQ(attrs[0].value, "/G/M/B/node16");
}

TEST_F(DataStoreTest, ExecutionsRequireApplication) {
  store_.addExecution("run-001", "IRS");
  const auto execs = store_.executions();
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0], "run-001");
  // Re-adding is idempotent.
  store_.addExecution("run-001", "IRS");
  EXPECT_EQ(store_.executions().size(), 1u);
  EXPECT_EQ(store_.stats().executions, 1);
}

TEST_F(DataStoreTest, PerformanceResultRoundTrip) {
  store_.addExecution("run-001", "IRS");
  store_.addResource("/run-001/p0", "execution/process");
  store_.addResource("/IRSbuild/main.c/foo", "build/module/function");
  const auto id = store_.addPerformanceResult(
      "run-001",
      {{{"/run-001/p0", "/IRSbuild/main.c/foo"}, FocusType::Primary}},
      "IRS-benchmark", "wall time", 12.5, "seconds");
  const PerfResultRecord rec = store_.getResult(id);
  EXPECT_EQ(rec.execution, "run-001");
  EXPECT_EQ(rec.application, "IRS");
  EXPECT_EQ(rec.metric, "wall time");
  EXPECT_EQ(rec.tool, "IRS-benchmark");
  EXPECT_DOUBLE_EQ(rec.value, 12.5);
  EXPECT_EQ(rec.units, "seconds");
  ASSERT_EQ(rec.contexts.size(), 1u);
  EXPECT_EQ(rec.contexts[0].size(), 2u);
}

TEST_F(DataStoreTest, MultiContextResult) {
  // §4.2: mpiP caller/callee requires multiple resource sets per result.
  store_.addExecution("run-002", "SMG2000");
  store_.addResource("/B/smg.c/caller", "build/module/function");
  store_.addResource("/B/smg.c/callee", "build/module/function");
  const auto id = store_.addPerformanceResult(
      "run-002",
      {{{"/B/smg.c/caller"}, FocusType::Parent}, {{"/B/smg.c/callee"}, FocusType::Child}},
      "mpiP", "MPI time", 3.0, "seconds");
  const PerfResultRecord rec = store_.getResult(id);
  EXPECT_EQ(rec.contexts.size(), 2u);
}

TEST_F(DataStoreTest, IdenticalContextsShareFocus) {
  store_.addExecution("run-003", "IRS");
  store_.addResource("/run-003/p0", "execution/process");
  store_.addPerformanceResult("run-003", {{{"/run-003/p0"}, FocusType::Primary}},
                              "tool", "metric A", 1.0);
  store_.addPerformanceResult("run-003", {{{"/run-003/p0"}, FocusType::Primary}},
                              "tool", "metric B", 2.0);
  // Two results, one shared focus (paper §2.2: "a single context can apply
  // to multiple performance results").
  const StoreStats s = store_.stats();
  EXPECT_EQ(s.performance_results, 2);
  EXPECT_EQ(s.foci, 1);
}

TEST_F(DataStoreTest, ResultWithUnknownExecutionThrows) {
  store_.addResource("/r", "time");
  EXPECT_THROW(store_.addPerformanceResult("ghost", {{{"/r"}, FocusType::Primary}},
                                           "t", "m", 1.0),
               util::ModelError);
}

TEST_F(DataStoreTest, ResultWithUnknownResourceThrows) {
  store_.addExecution("run", "app");
  EXPECT_THROW(store_.addPerformanceResult("run", {{{"/ghost"}, FocusType::Primary}},
                                           "t", "m", 1.0),
               util::ModelError);
}

TEST_F(DataStoreTest, ResultWithNoContextThrows) {
  store_.addExecution("run", "app");
  EXPECT_THROW(store_.addPerformanceResult("run", {}, "t", "m", 1.0), util::ModelError);
}

TEST_F(DataStoreTest, ResultsForExecution) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  store_.addResource("/runA/p0", "execution/process");
  store_.addResource("/runB/p0", "execution/process");
  store_.addPerformanceResult("runA", {{{"/runA/p0"}, FocusType::Primary}}, "t", "m", 1.0);
  store_.addPerformanceResult("runA", {{{"/runA/p0"}, FocusType::Primary}}, "t", "m2", 2.0);
  store_.addPerformanceResult("runB", {{{"/runB/p0"}, FocusType::Primary}}, "t", "m", 3.0);
  EXPECT_EQ(store_.resultsForExecution("runA").size(), 2u);
  EXPECT_EQ(store_.resultsForExecution("runB").size(), 1u);
}

TEST_F(DataStoreTest, FocusTypeNames) {
  EXPECT_EQ(focusTypeName(FocusType::Primary), "primary");
  EXPECT_EQ(focusTypeFromName("sender"), FocusType::Sender);
  EXPECT_EQ(focusTypeFromName("RECEIVER"), FocusType::Receiver);
  EXPECT_THROW(focusTypeFromName("bogus"), util::ModelError);
}

TEST_F(DataStoreTest, StatsCountEverything) {
  store_.addExecution("run", "app");
  store_.addResource("/run/p0", "execution/process");
  store_.addResourceAttribute("/run/p0", "a", "1");
  store_.addPerformanceResult("run", {{{"/run/p0"}, FocusType::Primary}}, "t", "m", 1.0);
  const StoreStats s = store_.stats();
  EXPECT_EQ(s.resources, 2);  // /run and /run/p0
  EXPECT_EQ(s.attributes, 1);
  EXPECT_EQ(s.metrics, 1);
  EXPECT_EQ(s.executions, 1);
  EXPECT_EQ(s.performance_results, 1);
  EXPECT_GT(s.size_bytes, 0u);
}

}  // namespace
}  // namespace perftrack::core
