// Tests for PTDataStore::deleteExecution — removing one run and its owned
// data while preserving everything shared.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/datastore.h"
#include "ptdf/ptdf.h"
#include "sim/irs_gen.h"
#include "tools/irs_parser.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/tempdir.h"

namespace perftrack::core {
namespace {

class DeleteExecutionTest : public ::testing::Test {
 protected:
  DeleteExecutionTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    util::TempDir workspace("delete-exec");
    // Two real IRS runs sharing machine and build-function resources.
    for (int seed = 1; seed <= 2; ++seed) {
      const auto dir = workspace.file("run" + std::to_string(seed));
      sim::generateIrsRun({sim::frostConfig(), 4, "MPI",
                           static_cast<std::uint64_t>(seed), ""},
                          dir);
      std::ostringstream out;
      ptdf::Writer writer(out);
      tools::convertIrsRun(dir, sim::frostConfig(), writer);
      std::istringstream in(out.str());
      ptdf::load(store_, in);
    }
    execs_ = store_.executions();
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
  std::vector<std::string> execs_;
};

TEST_F(DeleteExecutionTest, RemovesResultsAndFoci) {
  ASSERT_EQ(execs_.size(), 2u);
  const auto keep_results = store_.resultsForExecution(execs_[1]).size();
  store_.deleteExecution(execs_[0]);
  EXPECT_EQ(store_.executions(), std::vector<std::string>{execs_[1]});
  EXPECT_EQ(store_.resultsForExecution(execs_[1]).size(), keep_results);
  // No orphaned foci or focus links for the deleted run.
  EXPECT_EQ(conn_->queryInt("SELECT COUNT(*) FROM focus f JOIN execution e "
                            "ON f.execution_id = e.id WHERE e.name = " +
                            util::sqlQuote(execs_[0])),
            0);
}

TEST_F(DeleteExecutionTest, RemovesPerExecutionResourceSubtrees) {
  store_.deleteExecution(execs_[0]);
  EXPECT_FALSE(store_.findResource("/" + execs_[0]).has_value());
  EXPECT_FALSE(store_.findResource("/build-" + execs_[0]).has_value());
  EXPECT_FALSE(store_.findResource("/env-" + execs_[0]).has_value());
  EXPECT_FALSE(store_.findResource("/" + execs_[0] + "/p0").has_value());
}

TEST_F(DeleteExecutionTest, KeepsSharedResources) {
  store_.deleteExecution(execs_[0]);
  // Machine description and build functions are shared with the survivor.
  EXPECT_TRUE(store_.findResource("/SingleMachineFrost/Frost/batch").has_value());
  EXPECT_TRUE(store_.findResource("/IRS-1.4/irscg.c/cgsolve").has_value());
  EXPECT_TRUE(store_.findResource("/" + execs_[1]).has_value());
}

TEST_F(DeleteExecutionTest, SurvivorRemainsFullyQueryable) {
  store_.deleteExecution(execs_[0]);
  const auto ids = store_.resultsForExecution(execs_[1]);
  ASSERT_FALSE(ids.empty());
  const auto rec = store_.getResult(ids.front());
  EXPECT_EQ(rec.execution, execs_[1]);
  EXPECT_FALSE(rec.contexts.empty());
}

TEST_F(DeleteExecutionTest, WithResourcesFalseKeepsSubtrees) {
  store_.deleteExecution(execs_[0], /*with_resources=*/false);
  EXPECT_TRUE(store_.findResource("/" + execs_[0]).has_value());
  EXPECT_TRUE(store_.resultsForExecution(execs_[1]).size() > 0);
  EXPECT_EQ(store_.executions().size(), 1u);
}

TEST_F(DeleteExecutionTest, UnknownExecutionThrows) {
  EXPECT_THROW(store_.deleteExecution("ghost"), util::ModelError);
}

TEST_F(DeleteExecutionTest, VacuumAfterDeleteEnablesReuse) {
  store_.deleteExecution(execs_[0]);
  conn_->database().vacuum();
  store_.clearCache();
  const auto size_after = conn_->sizeBytes();
  // Re-load a similar run: the store should grow little past the vacuumed
  // size because freed pages are reused.
  util::TempDir workspace("delete-exec-reload");
  const auto dir = workspace.file("run3");
  sim::generateIrsRun({sim::frostConfig(), 4, "MPI", 3, ""}, dir);
  std::ostringstream out;
  ptdf::Writer writer(out);
  tools::convertIrsRun(dir, sim::frostConfig(), writer);
  std::istringstream in(out.str());
  ptdf::load(store_, in);
  EXPECT_LE(conn_->sizeBytes(), size_after + 64 * 8192);
  EXPECT_EQ(store_.executions().size(), 2u);
}

}  // namespace
}  // namespace perftrack::core
