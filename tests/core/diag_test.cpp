// core::diag — the comparison-based diagnosis engine (DESIGN.md §5.10):
// $EXEC canonicalization, context alignment, divergence thresholds, ranked
// contributions, top-K, and the edge cases the gate depends on (zero shared
// contexts, one-sided metrics, zero baselines).
#include "core/diag.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/datastore.h"
#include "dbal/connection.h"
#include "util/error.h"

namespace perftrack::core::diag {
namespace {

class DiagTest : public ::testing::Test {
 protected:
  DiagTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
  }

  /// One scalar result for `exec` in a single-resource primary context.
  void addResult(const std::string& exec, const std::string& resource,
                 const std::string& metric, double value) {
    store_.addPerformanceResult(exec, {{{resource}, FocusType::Primary}},
                                "tool", metric, value);
  }

  Report diff(const std::string& a, const std::string& b,
              std::uint32_t top_k = 0, double ratio = 0.10, double abs = 0.0) {
    Request request;
    request.exec_a = a;
    request.exec_b = b;
    request.top_k = top_k;
    request.ratio_threshold = ratio;
    request.abs_threshold = abs;
    return conn_->diff(request);
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST(CanonicalResourceNameTest, ReplacesExecutionInLeadingSegment) {
  EXPECT_EQ(canonicalResourceName("irs-np8", "/irs-np8/p0"), "/$EXEC/p0");
  EXPECT_EQ(canonicalResourceName("irs-np8", "/build-irs-np8/m.c"),
            "/build-$EXEC/m.c");
  EXPECT_EQ(canonicalResourceName("irs-np8", "/irs-np8"), "/$EXEC");
}

TEST(CanonicalResourceNameTest, LeavesUnrelatedNamesAlone) {
  EXPECT_EQ(canonicalResourceName("irs-np8", "/frost/batch/n1"),
            "/frost/batch/n1");
  // Only the leading segment canonicalizes: deeper matches stay verbatim.
  EXPECT_EQ(canonicalResourceName("irs-np8", "/frost/irs-np8"),
            "/frost/irs-np8");
  EXPECT_EQ(canonicalResourceName("", "/frost"), "/frost");
  EXPECT_EQ(canonicalResourceName("x", "/"), "/");
}

TEST_F(DiagTest, AlignsAcrossPerExecutionResourceNames) {
  for (const char* exec : {"runA", "runB"}) {
    store_.addExecution(exec, "app");
    const std::string root = std::string("/") + exec;
    store_.addResource(root + "/p0", "execution/process");
    addResult(exec, root + "/p0", "wall_ms",
              exec == std::string("runA") ? 100.0 : 250.0);
  }
  const Report report = diff("runA", "runB");
  EXPECT_EQ(report.stats.results_a, 1u);
  EXPECT_EQ(report.stats.results_b, 1u);
  EXPECT_EQ(report.stats.aligned, 1u);
  EXPECT_EQ(report.stats.only_a, 0u);
  EXPECT_EQ(report.stats.only_b, 0u);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].metric, "wall_ms");
  EXPECT_EQ(report.rows[0].context, "/$EXEC/p0");
  EXPECT_DOUBLE_EQ(report.rows[0].ratio, 2.5);
  EXPECT_DOUBLE_EQ(report.rows[0].contribution_pct, 100.0);
}

TEST_F(DiagTest, ZeroSharedContextsAlignsNothing) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  store_.addResource("/machX", "grid/machine");
  store_.addResource("/machY", "grid/machine");
  addResult("runA", "/machX", "wall_ms", 10.0);
  addResult("runB", "/machY", "wall_ms", 20.0);
  const Report report = diff("runA", "runB");
  EXPECT_EQ(report.stats.aligned, 0u);
  EXPECT_EQ(report.stats.only_a, 1u);
  EXPECT_EQ(report.stats.only_b, 1u);
  EXPECT_EQ(report.stats.divergent, 0u);
  EXPECT_TRUE(report.rows.empty());
  EXPECT_NE(report.toText().find("ranked explanations: (none)"),
            std::string::npos);
}

TEST_F(DiagTest, MetricOnOneSideOnlyCountsAsUnmatched) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  store_.addResource("/mach", "grid/machine");
  addResult("runA", "/mach", "wall_ms", 10.0);
  addResult("runA", "/mach", "cache_misses", 500.0);  // A only
  addResult("runB", "/mach", "wall_ms", 10.0);
  const Report report = diff("runA", "runB");
  EXPECT_EQ(report.stats.aligned, 1u);
  EXPECT_EQ(report.stats.only_a, 1u);
  EXPECT_EQ(report.stats.only_b, 0u);
  EXPECT_EQ(report.stats.divergent, 0u);  // the matched pair is unchanged
}

TEST_F(DiagTest, ZeroBaselineDivergesWithoutRatio) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  store_.addResource("/mach", "grid/machine");
  addResult("runA", "/mach", "page_faults", 0.0);
  addResult("runB", "/mach", "page_faults", 40.0);
  const Report report = diff("runA", "runB");
  EXPECT_EQ(report.stats.zero_baseline, 1u);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.rows[0].has_ratio);
  EXPECT_NE(report.toText().find("zero baseline"), std::string::npos);

  // Both sides zero: no change, not divergent.
  addResult("runA", "/mach", "swaps", 0.0);
  addResult("runB", "/mach", "swaps", 0.0);
  const Report again = diff("runA", "runB");
  EXPECT_EQ(again.stats.zero_baseline, 2u);
  EXPECT_EQ(again.stats.divergent, 1u);  // still just page_faults
}

TEST_F(DiagTest, ThresholdsGateDivergence) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  store_.addResource("/mach", "grid/machine");
  addResult("runA", "/mach", "wall_ms", 100.0);
  addResult("runB", "/mach", "wall_ms", 108.0);  // +8%
  EXPECT_TRUE(diff("runA", "runB", 0, 0.10).rows.empty());
  EXPECT_EQ(diff("runA", "runB", 0, 0.05).rows.size(), 1u);
  // The absolute floor cuts the same pair (|delta| = 8).
  EXPECT_TRUE(diff("runA", "runB", 0, 0.05, 10.0).rows.empty());
}

TEST_F(DiagTest, RanksByContributionAndAppliesTopK) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  for (const char* r : {"/m0", "/m1", "/m2"}) {
    store_.addResource(r, "grid/machine");
  }
  addResult("runA", "/m0", "wall_ms", 10.0);
  addResult("runB", "/m0", "wall_ms", 70.0);  // delta 60
  addResult("runA", "/m1", "wall_ms", 10.0);
  addResult("runB", "/m1", "wall_ms", 40.0);  // delta 30
  addResult("runA", "/m2", "wall_ms", 10.0);
  addResult("runB", "/m2", "wall_ms", 20.0);  // delta 10

  const Report full = diff("runA", "runB");
  ASSERT_EQ(full.rows.size(), 3u);
  EXPECT_EQ(full.rows[0].context, "/m0");
  EXPECT_EQ(full.rows[1].context, "/m1");
  EXPECT_EQ(full.rows[2].context, "/m2");
  EXPECT_DOUBLE_EQ(full.rows[0].contribution_pct, 60.0);
  EXPECT_DOUBLE_EQ(full.rows[1].contribution_pct, 30.0);
  EXPECT_DOUBLE_EQ(full.rows[2].contribution_pct, 10.0);

  const Report top = diff("runA", "runB", 2);
  EXPECT_EQ(top.rows.size(), 2u);
  EXPECT_EQ(top.stats.divergent, 3u);  // stats count every divergence
  EXPECT_NE(top.toText().find("(top 2 of 3)"), std::string::npos);
}

TEST_F(DiagTest, ToRowsMatchesColumns) {
  store_.addExecution("runA", "app");
  store_.addExecution("runB", "app");
  store_.addResource("/mach", "grid/machine");
  addResult("runA", "/mach", "wall_ms", 10.0);
  addResult("runB", "/mach", "wall_ms", 30.0);
  const Report report = diff("runA", "runB");
  const auto rows = report.toRows();
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), Report::columns().size());
  EXPECT_EQ(rows[0][0].asInt(), 1);             // rank
  EXPECT_EQ(rows[0][1].asText(), "wall_ms");    // metric
  EXPECT_DOUBLE_EQ(rows[0][5].asReal(), 20.0);  // delta
  EXPECT_DOUBLE_EQ(rows[0][6].asReal(), 3.0);   // ratio
}

TEST_F(DiagTest, UnknownExecutionThrowsModelError) {
  store_.addExecution("runA", "app");
  EXPECT_THROW(diff("runA", "nope"), util::ModelError);
  EXPECT_THROW(diff("nope", "runA"), util::ModelError);
}

TEST_F(DiagTest, SelfDiffIsClean) {
  store_.addExecution("runA", "app");
  store_.addResource("/mach", "grid/machine");
  addResult("runA", "/mach", "wall_ms", 12.0);
  const Report report = diff("runA", "runA");
  EXPECT_EQ(report.stats.aligned, 1u);
  EXPECT_EQ(report.stats.divergent, 0u);
  EXPECT_TRUE(report.rows.empty());
}

}  // namespace
}  // namespace perftrack::core::diag
