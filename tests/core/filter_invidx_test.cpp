// Randomized differential test of the core resource matcher: every query
// runs twice — once on the inverted-index fast path, once with the switch
// off (legacy SQL) — and the outputs must be byte-identical. Also covers
// the documented edge cases (empty families, single-focus stores, DML and
// rollback invalidation) and the top-K / count-only variants against the
// full materialization.
#include "core/filter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace perftrack::core {
namespace {

/// A randomized store: `machines` machines x `nodes` nodes x `procs`
/// processors, with attributes on machines and one result per processor
/// per execution.
class FuzzStore {
 public:
  FuzzStore(util::Rng& rng, int machines, int nodes, int procs)
      : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    for (int m = 0; m < machines; ++m) {
      const std::string machine = "/G" + std::to_string(m) + "/M" + std::to_string(m);
      store_.addResource(machine, "grid/machine");
      store_.addResourceAttribute(machine, "os", rng.uniformInt(0, 1) ? "AIX" : "Linux");
      store_.addResourceAttribute(machine, "nodes", std::to_string(nodes));
      for (int n = 0; n < nodes; ++n) {
        for (int p = 0; p < procs; ++p) {
          store_.addResource(machine + "/batch/n" + std::to_string(n) + "/p" +
                                 std::to_string(p),
                             "grid/machine/partition/node/processor");
        }
      }
    }
    const std::string exec = "run-0";
    store_.addExecution(exec, "APP");
    for (int m = 0; m < machines; ++m) {
      const std::string machine = "/G" + std::to_string(m) + "/M" + std::to_string(m);
      for (int n = 0; n < nodes; ++n) {
        for (int p = 0; p < procs; ++p) {
          const std::string proc = machine + "/batch/n" + std::to_string(n) + "/p" +
                                   std::to_string(p);
          store_.addPerformanceResult(exec, {{{proc}, FocusType::Primary}}, "tool",
                                      "cpu time", rng.uniform(0.1, 10.0), "s");
        }
      }
      store_.addPerformanceResult(exec, {{{machine}, FocusType::Primary}}, "tool",
                                  "total time", rng.uniform(1.0, 100.0), "s");
    }
  }

  dbal::Connection& conn() { return *conn_; }
  PTDataStore& store() { return store_; }

 private:
  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

ResourceFilter randomFilter(util::Rng& rng, int machines) {
  const auto expansion = static_cast<Expansion>(rng.uniformInt(0, 3));
  switch (rng.uniformInt(0, 4)) {
    case 0:
      return ResourceFilter::byType(
          rng.uniformInt(0, 1) ? "grid/machine" : "grid/machine/partition/node/processor",
          expansion);
    case 1: {
      const auto m = rng.uniformInt(0, machines - 1);
      return ResourceFilter::byName("M" + std::to_string(m), expansion);
    }
    case 2: {
      const auto m = rng.uniformInt(0, machines - 1);
      return ResourceFilter::byName("M" + std::to_string(m) + "/batch", expansion);
    }
    case 3:
      return ResourceFilter::byAttributes(
          {{"os", "=", rng.uniformInt(0, 1) ? "AIX" : "Linux"}}, "", expansion);
    default:
      return ResourceFilter::byAttributes({{"nodes", ">=", "1"}}, "grid/machine",
                                          expansion);
  }
}

/// Runs fn() with invidx on and off; returns {fast, legacy}.
template <typename Fn>
auto bothWays(dbal::Connection& conn, Fn&& fn) {
  conn.setInvidxEnabled(true);
  auto fast = fn();
  conn.setInvidxEnabled(false);
  auto legacy = fn();
  conn.setInvidxEnabled(true);
  return std::make_pair(std::move(fast), std::move(legacy));
}

TEST(FilterInvidxFuzz, FamiliesAndMatchesAgreeWithLegacy) {
  util::Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    FuzzStore fixture(rng, /*machines=*/3, /*nodes=*/3, /*procs=*/2);
    for (int query = 0; query < 12; ++query) {
      PrFilter pr;
      const int nfam = static_cast<int>(rng.uniformInt(1, 3));
      for (int f = 0; f < nfam; ++f) pr.families.push_back(randomFilter(rng, 3));

      std::vector<std::vector<ResourceId>> fast_families, legacy_families;
      for (const ResourceFilter& f : pr.families) {
        const auto [fast, legacy] = bothWays(fixture.conn(), [&] {
          return evaluateFamily(fixture.store(), f);
        });
        EXPECT_EQ(fast, legacy) << f.describe();
        fast_families.push_back(fast);
        legacy_families.push_back(legacy);
      }

      const auto [fast, legacy] = bothWays(fixture.conn(), [&] {
        return matchResults(fixture.store(), fast_families);
      });
      EXPECT_EQ(fast, legacy);

      // Count and top-K agree with the full materialization.
      EXPECT_EQ(matchResultCount(fixture.store(), fast_families), fast.size());
      const std::size_t k = static_cast<std::size_t>(rng.uniformInt(0, 5));
      const auto topk = matchResultsTopK(fixture.store(), fast_families, k);
      const std::size_t expect_n = std::min(k, fast.size());
      ASSERT_EQ(topk.size(), expect_n);
      EXPECT_TRUE(std::equal(topk.begin(), topk.end(), fast.begin()));
    }
  }
}

TEST(FilterInvidxFuzz, EmptyFamiliesMatchEverything) {
  util::Rng rng(7);
  FuzzStore fixture(rng, 2, 2, 2);
  const auto [fast, legacy] = bothWays(fixture.conn(), [&] {
    return matchResults(fixture.store(), {});
  });
  EXPECT_EQ(fast, legacy);
  EXPECT_FALSE(fast.empty());
  EXPECT_EQ(matchResultCount(fixture.store(), {}), fast.size());
  EXPECT_EQ(matchResultsTopK(fixture.store(), {}, 3),
            std::vector<std::int64_t>(fast.begin(), fast.begin() + 3));
}

TEST(FilterInvidxFuzz, EmptyFamilyMatchesNothing) {
  util::Rng rng(8);
  FuzzStore fixture(rng, 2, 2, 2);
  const std::vector<std::vector<ResourceId>> families = {{}};
  const auto [fast, legacy] = bothWays(fixture.conn(), [&] {
    return matchResults(fixture.store(), families);
  });
  EXPECT_EQ(fast, legacy);
  EXPECT_TRUE(fast.empty());
  EXPECT_EQ(matchResultCount(fixture.store(), families), 0u);
  EXPECT_TRUE(matchResultsTopK(fixture.store(), families, 5).empty());
}

TEST(FilterInvidxFuzz, SingleFocusStore) {
  auto conn = dbal::Connection::open(":memory:");
  PTDataStore store(*conn);
  store.initialize();
  store.addResource("/G/M", "grid/machine");
  store.addExecution("r", "A");
  store.addPerformanceResult("r", {{{"/G/M"}, FocusType::Primary}}, "t", "m", 1.0);
  const auto family = evaluateFamily(store, ResourceFilter::byName("M", Expansion::None));
  ASSERT_EQ(family.size(), 1u);
  conn->setInvidxEnabled(true);
  const auto fast = matchResults(store, {family});
  conn->setInvidxEnabled(false);
  const auto legacy = matchResults(store, {family});
  EXPECT_EQ(fast, legacy);
  EXPECT_EQ(fast.size(), 1u);
}

TEST(FilterInvidxFuzz, DmlAndRollbackInvalidateIndexes) {
  util::Rng rng(9);
  FuzzStore fixture(rng, 2, 2, 2);
  PTDataStore& store = fixture.store();
  dbal::Connection& conn = fixture.conn();
  conn.setInvidxEnabled(true);

  const auto family =
      evaluateFamily(store, ResourceFilter::byName("M0", Expansion::Descendants));
  const auto before = matchResults(store, {family});
  ASSERT_FALSE(before.empty());

  // New result on an existing machine focus: visible on the next match.
  store.addPerformanceResult("run-0", {{{"/G0/M0"}, FocusType::Primary}}, "tool",
                             "extra", 5.0, "s");
  const auto with_extra = matchResults(store, {family});
  EXPECT_EQ(with_extra.size(), before.size() + 1);
  conn.setInvidxEnabled(false);
  EXPECT_EQ(matchResults(store, {family}), with_extra);
  conn.setInvidxEnabled(true);

  // A rolled-back insert must not leak into the index.
  conn.begin();
  store.addPerformanceResult("run-0", {{{"/G0/M0"}, FocusType::Primary}}, "tool",
                             "phantom", 6.0, "s");
  EXPECT_EQ(matchResults(store, {family}).size(), with_extra.size() + 1);
  conn.rollback();
  EXPECT_EQ(matchResults(store, {family}), with_extra);
}

}  // namespace
}  // namespace perftrack::core
