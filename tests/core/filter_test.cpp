#include "core/filter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace perftrack::core {
namespace {

/// Fixture with a small two-machine, two-execution store mirroring the
/// paper's Frost/MCR examples.
class FilterTest : public ::testing::Test {
 protected:
  FilterTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    // Machines: Frost with batch partition and 2 nodes x 2 processors,
    // MCR with batch partition and 1 node x 2 processors.
    for (const char* p : {"/GFrost/Frost/batch/n0/p0", "/GFrost/Frost/batch/n0/p1",
                          "/GFrost/Frost/batch/n1/p0", "/GFrost/Frost/batch/n1/p1"}) {
      store_.addResource(p, "grid/machine/partition/node/processor");
    }
    for (const char* p : {"/GMCR/MCR/batch/n0/p0", "/GMCR/MCR/batch/n0/p1"}) {
      store_.addResource(p, "grid/machine/partition/node/processor");
    }
    store_.addResourceAttribute("/GFrost/Frost", "os", "AIX");
    store_.addResourceAttribute("/GMCR/MCR", "os", "Linux");
    store_.addResourceAttribute("/GFrost/Frost", "nodes", "128");
    store_.addResourceAttribute("/GMCR/MCR", "nodes", "1152");

    store_.addExecution("frost-run", "IRS");
    store_.addExecution("mcr-run", "IRS");
    store_.addResource("/frost-run/p0", "execution/process");
    store_.addResource("/mcr-run/p0", "execution/process");

    // One result per processor, plus one machine-level result per machine.
    for (const char* p : {"/GFrost/Frost/batch/n0/p0", "/GFrost/Frost/batch/n0/p1",
                          "/GFrost/Frost/batch/n1/p0", "/GFrost/Frost/batch/n1/p1"}) {
      store_.addPerformanceResult("frost-run", {{{p, "/frost-run/p0"}, FocusType::Primary}},
                                  "tool", "cpu time", 1.0, "s");
    }
    for (const char* p : {"/GMCR/MCR/batch/n0/p0", "/GMCR/MCR/batch/n0/p1"}) {
      store_.addPerformanceResult("mcr-run", {{{p, "/mcr-run/p0"}, FocusType::Primary}},
                                  "tool", "cpu time", 2.0, "s");
    }
    store_.addPerformanceResult("frost-run", {{{"/GFrost/Frost"}, FocusType::Primary}},
                                "tool", "total time", 10.0, "s");
    store_.addPerformanceResult("mcr-run", {{{"/GMCR/MCR"}, FocusType::Primary}},
                                "tool", "total time", 20.0, "s");
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST_F(FilterTest, ByTypeSelectsAllOfType) {
  const auto family = evaluateFamily(store_, ResourceFilter::byType(
                                                 "grid/machine/partition/node/processor"));
  EXPECT_EQ(family.size(), 6u);
}

TEST_F(FilterTest, ByTypeMachineLevelOnly) {
  // "A user might do this to get only machine-level measurements."
  const auto family = evaluateFamily(store_, ResourceFilter::byType("grid/machine"));
  EXPECT_EQ(family.size(), 2u);
  // Machine-level family alone matches only the 2 total-time results.
  EXPECT_EQ(familyMatchCount(store_, family), 2u);
}

TEST_F(FilterTest, ByFullNameExact) {
  const auto family = evaluateFamily(
      store_, ResourceFilter::byName("/GFrost/Frost/batch/n0/p0", Expansion::None));
  EXPECT_EQ(family.size(), 1u);
}

TEST_F(FilterTest, ByBaseNameMatchesAcrossMachines) {
  // "batch" refers to the batch partition of any machine (paper §2.1).
  const auto family =
      evaluateFamily(store_, ResourceFilter::byName("batch", Expansion::None));
  EXPECT_EQ(family.size(), 2u);
}

TEST_F(FilterTest, ByPartialPathRestrictsParent) {
  // "Frost/batch": only resources whose names end with Frost/batch (Fig 3).
  const auto family =
      evaluateFamily(store_, ResourceFilter::byName("Frost/batch", Expansion::None));
  ASSERT_EQ(family.size(), 1u);
  EXPECT_EQ(store_.resourceInfo(family[0]).full_name, "/GFrost/Frost/batch");
}

TEST_F(FilterTest, DescendantExpansionPullsSubtree) {
  // Choosing "Frost" with the default D flag also selects partitions,
  // nodes, and processors (paper §3.2).
  const auto family =
      evaluateFamily(store_, ResourceFilter::byName("Frost", Expansion::Descendants));
  // Frost + batch + 2 nodes + 4 processors = 8.
  EXPECT_EQ(family.size(), 8u);
}

TEST_F(FilterTest, AncestorExpansion) {
  const auto family = evaluateFamily(
      store_, ResourceFilter::byName("/GFrost/Frost/batch/n0/p0", Expansion::Ancestors));
  EXPECT_EQ(family.size(), 5u);  // self + 4 ancestors
}

TEST_F(FilterTest, BothExpansion) {
  const auto family = evaluateFamily(
      store_, ResourceFilter::byName("/GFrost/Frost/batch", Expansion::Both));
  EXPECT_EQ(family.size(), 9u);  // self + 2 up + 6 down
}

TEST_F(FilterTest, NoExpansionByDefaultForType) {
  const auto family = evaluateFamily(store_, ResourceFilter::byType("grid/machine"));
  EXPECT_EQ(family.size(), 2u);
}

TEST_F(FilterTest, AttributeEquality) {
  const auto family = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"os", "=", "AIX"}}));
  ASSERT_EQ(family.size(), 1u);
  EXPECT_EQ(store_.resourceInfo(family[0]).full_name, "/GFrost/Frost");
}

TEST_F(FilterTest, AttributeNumericComparison) {
  const auto family = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"nodes", ">", "200"}}));
  ASSERT_EQ(family.size(), 1u);
  EXPECT_EQ(store_.resourceInfo(family[0]).full_name, "/GMCR/MCR");
}

TEST_F(FilterTest, AttributeConjunction) {
  const auto both = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"os", "=", "AIX"}, {"nodes", "<", "200"}}));
  EXPECT_EQ(both.size(), 1u);
  const auto none = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"os", "=", "AIX"}, {"nodes", ">", "200"}}));
  EXPECT_TRUE(none.empty());
}

TEST_F(FilterTest, AttributeContains) {
  const auto family = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"os", "contains", "inu"}}));
  ASSERT_EQ(family.size(), 1u);
  EXPECT_EQ(store_.resourceInfo(family[0]).full_name, "/GMCR/MCR");
}

TEST_F(FilterTest, AttributeFilterRequiresPredicates) {
  EXPECT_THROW(evaluateFamily(store_, ResourceFilter::byAttributes({})),
               util::ModelError);
}

TEST_F(FilterTest, UnknownComparatorThrows) {
  EXPECT_THROW(evaluateFamily(store_, ResourceFilter::byAttributes(
                                          {{"os", "~~", "AIX"}})),
               util::ModelError);
}

TEST_F(FilterTest, PrFilterIntersectsFamilies) {
  // Family 1: anything under Frost. Family 2: process resources.
  PrFilter filter;
  filter.families.push_back(ResourceFilter::byName("Frost", Expansion::Descendants));
  filter.families.push_back(ResourceFilter::byType("execution/process"));
  const auto results = queryResults(store_, filter);
  // The 4 per-processor frost results have both a Frost descendant and a
  // process in context; the machine-level result has no process resource.
  EXPECT_EQ(results.size(), 4u);
}

TEST_F(FilterTest, PrFilterEmptyMatchesEverything) {
  EXPECT_EQ(queryResults(store_, PrFilter{}).size(), 8u);
}

TEST_F(FilterTest, PrFilterWithEmptyFamilyMatchesNothing) {
  PrFilter filter;
  filter.families.push_back(ResourceFilter::byName("/no/such/resource", Expansion::None));
  EXPECT_TRUE(queryResults(store_, filter).empty());
}

TEST_F(FilterTest, MatchSemanticsRequireEveryFamily) {
  // Frost-machine family AND MCR-machine family: no context contains both.
  PrFilter filter;
  filter.families.push_back(ResourceFilter::byName("Frost", Expansion::None));
  filter.families.push_back(ResourceFilter::byName("MCR", Expansion::None));
  EXPECT_TRUE(queryResults(store_, filter).empty());
}

TEST_F(FilterTest, DescribeRendersReadably) {
  EXPECT_EQ(ResourceFilter::byType("grid/machine").describe(), "type=grid/machine (N)");
  EXPECT_EQ(ResourceFilter::byName("Frost").describe(), "name=Frost (D)");
  const auto f = ResourceFilter::byAttributes({{"os", "=", "AIX"}}, "grid/machine");
  EXPECT_EQ(f.describe(), "attrs[os=AIX] type=grid/machine (N)");
}

TEST_F(FilterTest, AttributeFilterRestrictedByType) {
  // Attach the same attribute name to a non-machine resource.
  store_.addResource("/osAIX", "operatingSystem");
  store_.addResourceAttribute("/osAIX", "os", "AIX");
  const auto unrestricted = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"os", "=", "AIX"}}));
  EXPECT_EQ(unrestricted.size(), 2u);
  const auto restricted = evaluateFamily(
      store_, ResourceFilter::byAttributes({{"os", "=", "AIX"}}, "grid/machine"));
  ASSERT_EQ(restricted.size(), 1u);
  EXPECT_EQ(store_.resourceInfo(restricted[0]).full_name, "/GFrost/Frost");
}

}  // namespace
}  // namespace perftrack::core
