// Tests for complex (histogram) performance results — the §6 extension.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/datastore.h"
#include "ptdf/export.h"
#include "ptdf/ptdf.h"
#include "util/error.h"

namespace perftrack::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

class HistogramTest : public ::testing::Test {
 protected:
  HistogramTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    store_.addExecution("run", "app");
    store_.addResource("/run", "execution");
    store_.addResource("/app-code/m.c/fn", "build/module/function");
  }

  std::int64_t addHistogram(const std::vector<double>& bins, double width = 0.2) {
    return store_.addHistogramResult(
        "run", {{{"/run", "/app-code/m.c/fn"}, FocusType::Primary}}, "Paradyn", "cpu",
        bins, width, "seconds");
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST_F(HistogramTest, StoresAndRetrievesBins) {
  const auto id = addHistogram({1.0, 2.0, 3.0});
  const auto hist = store_.getHistogram(id);
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->num_bins, 3);
  EXPECT_DOUBLE_EQ(hist->bin_width, 0.2);
  ASSERT_EQ(hist->bins.size(), 3u);
  EXPECT_EQ(hist->bins[0], (std::pair{0, 1.0}));
  EXPECT_EQ(hist->bins[2], (std::pair{2, 3.0}));
}

TEST_F(HistogramTest, ScalarValueIsSumOverBins) {
  const auto id = addHistogram({1.0, kNaN, 3.0});
  EXPECT_DOUBLE_EQ(store_.getResult(id).value, 4.0);
  // Result time span covers the whole series.
  EXPECT_DOUBLE_EQ(store_.getResult(id).end_time, 3 * 0.2);
}

TEST_F(HistogramTest, NanBinsAreNotStored) {
  const auto id = addHistogram({kNaN, kNaN, 5.0, kNaN});
  const auto hist = store_.getHistogram(id);
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->num_bins, 4);  // geometry remembers the full length
  ASSERT_EQ(hist->bins.size(), 1u);
  EXPECT_EQ(hist->bins[0].first, 2);
}

TEST_F(HistogramTest, ScalarResultHasNoHistogram) {
  const auto id = store_.addPerformanceResult(
      "run", {{{"/run"}, FocusType::Primary}}, "t", "m", 1.0);
  EXPECT_FALSE(store_.getHistogram(id).has_value());
}

TEST_F(HistogramTest, AllNanRejected) {
  EXPECT_THROW(addHistogram({kNaN, kNaN}), util::ModelError);
}

TEST_F(HistogramTest, NonPositiveBinWidthRejected) {
  EXPECT_THROW(addHistogram({1.0}, 0.0), util::ModelError);
  EXPECT_THROW(addHistogram({1.0}, -1.0), util::ModelError);
}

TEST_F(HistogramTest, HistogramResultsAreQueryable) {
  // A complex result is still a performance result: pr-filters see it.
  addHistogram({1.0, 2.0});
  const auto ids = store_.resultsForExecution("run");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(store_.getResult(ids[0]).tool, "Paradyn");
}

TEST_F(HistogramTest, PtdfRoundTripPreservesHistogram) {
  addHistogram({1.5, kNaN, 2.5}, 0.5);
  std::ostringstream out;
  ptdf::Writer writer(out);
  ptdf::exportStore(store_, writer);
  EXPECT_NE(out.str().find("PerfHistogram"), std::string::npos);
  EXPECT_NE(out.str().find("1.5,nan,2.5"), std::string::npos);

  auto conn2 = dbal::Connection::open(":memory:");
  PTDataStore copy(*conn2);
  copy.initialize();
  std::istringstream in(out.str());
  const auto stats = ptdf::load(copy, in);
  EXPECT_EQ(stats.histograms, 1u);
  const auto ids = copy.resultsForExecution("run");
  ASSERT_EQ(ids.size(), 1u);
  const auto hist = copy.getHistogram(ids[0]);
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->num_bins, 3);
  EXPECT_DOUBLE_EQ(hist->bin_width, 0.5);
  ASSERT_EQ(hist->bins.size(), 2u);
  EXPECT_DOUBLE_EQ(hist->bins[1].second, 2.5);
}

TEST_F(HistogramTest, LoaderRejectsMalformedHistogramRecords) {
  auto tryLoad = [&](const std::string& line) {
    auto conn2 = dbal::Connection::open(":memory:");
    PTDataStore fresh(*conn2);
    fresh.initialize();
    std::istringstream in("Application a\nExecution e a\nResource /e execution\n" +
                          line + "\n");
    ptdf::load(fresh, in);
  };
  EXPECT_THROW(tryLoad("PerfHistogram e /e(primary) t m 0 s 1,2"), util::ParseError);
  EXPECT_THROW(tryLoad("PerfHistogram e /e(primary) t m 0.5 s 1,bogus"),
               util::ParseError);
  EXPECT_THROW(tryLoad("PerfHistogram e /e(primary) t m 0.5 s"), util::ParseError);
  EXPECT_NO_THROW(tryLoad("PerfHistogram e /e(primary) t m 0.5 s 1,nan,2"));
}

}  // namespace
}  // namespace perftrack::core
