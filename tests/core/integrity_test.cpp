#include "core/integrity.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "ptdf/ptdf.h"
#include "sim/irs_gen.h"
#include "tools/irs_parser.h"
#include "util/tempdir.h"

namespace perftrack::core {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  IntegrityTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
  }

  void loadIrsRun() {
    util::TempDir workspace("integrity");
    const auto dir = workspace.file("run");
    sim::generateIrsRun({sim::frostConfig(), 4, "MPI", 8, ""}, dir);
    std::ostringstream out;
    ptdf::Writer writer(out);
    tools::convertIrsRun(dir, sim::frostConfig(), writer);
    std::istringstream in(out.str());
    ptdf::load(store_, in);
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST_F(IntegrityTest, FreshStoreIsConsistent) {
  EXPECT_TRUE(verifyStore(store_).empty());
}

TEST_F(IntegrityTest, LoadedStoreIsConsistent) {
  loadIrsRun();
  const auto problems = verifyStore(store_);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST_F(IntegrityTest, ConsistentAfterDeleteAndVacuum) {
  loadIrsRun();
  store_.deleteExecution(store_.executions().at(0));
  conn_->database().vacuum();
  store_.clearCache();
  const auto problems = verifyStore(store_);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST_F(IntegrityTest, DetectsDanglingFocusMember) {
  loadIrsRun();
  conn_->exec("INSERT INTO focus_has_resource (focus_id, resource_id, focus_type) "
              "VALUES (1, 999999, 'primary')");
  const auto problems = verifyStore(store_);
  ASSERT_FALSE(problems.empty());
  bool mentioned = false;
  for (const auto& p : problems) {
    if (p.find("missing resources") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(IntegrityTest, DetectsCorruptClosureTable) {
  loadIrsRun();
  conn_->exec("DELETE FROM resource_has_ancestor WHERE resource_id IN "
              "(SELECT MAX(id) FROM resource_item)");
  const auto problems = verifyStore(store_);
  bool mentioned = false;
  for (const auto& p : problems) {
    if (p.find("resource_has_ancestor") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(IntegrityTest, DetectsOrphanedResult) {
  loadIrsRun();
  conn_->exec("DELETE FROM performance_result_has_focus WHERE result_id IN "
              "(SELECT MIN(id) FROM performance_result)");
  const auto problems = verifyStore(store_);
  bool mentioned = false;
  for (const auto& p : problems) {
    if (p.find("no context") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(IntegrityTest, DetectsBrokenParentLink) {
  store_.addResource("/a/b", "grid/machine");
  conn_->exec("UPDATE resource_item SET parent_id = 424242 WHERE full_name = '/a/b'");
  const auto problems = verifyStore(store_);
  bool mentioned = false;
  for (const auto& p : problems) {
    if (p.find("dangling parent_id") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(IntegrityTest, MinidbLayerDetectsIndexDamage) {
  loadIrsRun();
  minidb::Database& db = conn_->database();
  ASSERT_TRUE(db.verifyIntegrity().empty());
  // Surgically remove one index entry behind the database's back.
  const minidb::IndexDef* index = db.catalog().findIndex("ri_by_full_name");
  ASSERT_NE(index, nullptr);
  minidb::BTree tree(db.pager(), index->root);
  ASSERT_FALSE(tree.begin().done());
  tree.erase(tree.begin().key());
  const auto problems = db.verifyIntegrity();
  ASSERT_FALSE(problems.empty());
  bool mentioned = false;
  for (const auto& p : problems) {
    if (p.find("ri_by_full_name") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

}  // namespace
}  // namespace perftrack::core
