// Property-based tests of the core model: for randomized resource forests
// and result populations, the closure tables, filter expansions, and
// pr-filter semantics must agree with brute-force reference computations.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "core/filter.h"
#include "util/rng.h"

namespace perftrack::core {
namespace {

struct Forest {
  std::unique_ptr<dbal::Connection> conn;
  std::unique_ptr<PTDataStore> store;
  std::vector<std::string> resource_names;  // all created full names
  std::vector<std::string> executions;
};

/// Builds a random grid forest plus random per-execution results whose
/// contexts pick random resources.
Forest makeForest(std::uint64_t seed) {
  Forest forest;
  forest.conn = dbal::Connection::open(":memory:");
  forest.store = std::make_unique<PTDataStore>(*forest.conn);
  forest.store->initialize();
  util::Rng rng(seed);

  const int grids = 2;
  for (int g = 0; g < grids; ++g) {
    const std::string grid = "/grid" + std::to_string(g);
    const int machines = static_cast<int>(rng.uniformInt(1, 3));
    for (int m = 0; m < machines; ++m) {
      const std::string machine = grid + "/mach" + std::to_string(m);
      const int nodes = static_cast<int>(rng.uniformInt(1, 4));
      for (int n = 0; n < nodes; ++n) {
        const std::string node = machine + "/batch/node" + std::to_string(n);
        const int procs = static_cast<int>(rng.uniformInt(1, 3));
        for (int p = 0; p < procs; ++p) {
          const std::string proc = node + "/p" + std::to_string(p);
          forest.store->addResource(proc, "grid/machine/partition/node/processor");
          forest.resource_names.push_back(proc);
        }
        forest.resource_names.push_back(node);
      }
      forest.resource_names.push_back(machine);
      forest.resource_names.push_back(grid + "/mach" + std::to_string(m) + "/batch");
    }
    forest.resource_names.push_back(grid);
  }

  const int execs = 3;
  for (int e = 0; e < execs; ++e) {
    const std::string exec = "exec" + std::to_string(e);
    forest.store->addExecution(exec, "app");
    forest.executions.push_back(exec);
    const int results = static_cast<int>(rng.uniformInt(5, 25));
    for (int r = 0; r < results; ++r) {
      // Context: 1-3 random resources.
      std::set<std::string> context;
      const int size = static_cast<int>(rng.uniformInt(1, 3));
      for (int c = 0; c < size; ++c) {
        context.insert(forest.resource_names[rng.uniformInt(
            0, static_cast<std::int64_t>(forest.resource_names.size()) - 1)]);
      }
      ResourceSetSpec spec;
      spec.resource_names.assign(context.begin(), context.end());
      forest.store->addPerformanceResult(exec, {spec}, "tool",
                                         "metric" + std::to_string(r % 4),
                                         rng.uniform(0.0, 10.0));
    }
  }
  return forest;
}

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelProperty, ClosureTablesMatchBruteForceTraversal) {
  Forest forest = makeForest(GetParam());
  PTDataStore& store = *forest.store;
  for (const std::string& name : forest.resource_names) {
    const ResourceId id = store.findResource(name).value();
    // Brute-force descendants via childrenOf recursion.
    std::set<ResourceId> expected;
    std::function<void(ResourceId)> walk = [&](ResourceId rid) {
      for (const ResourceInfo& child : store.childrenOf(rid)) {
        expected.insert(child.id);
        walk(child.id);
      }
    };
    walk(id);
    auto actual = store.descendantsOf(id);
    std::set<ResourceId> actual_set(actual.begin(), actual.end());
    EXPECT_EQ(actual_set, expected) << name;
    // Ancestors: count equals path depth - 1.
    const auto depth = std::count(name.begin(), name.end(), '/');
    EXPECT_EQ(store.ancestorsOf(id).size(), static_cast<std::size_t>(depth - 1))
        << name;
  }
}

TEST_P(ModelProperty, ExpansionFlagsComposeCorrectly) {
  Forest forest = makeForest(GetParam());
  PTDataStore& store = *forest.store;
  const std::string& name = forest.resource_names.front();
  const ResourceId id = store.findResource(name).value();

  const auto none = evaluateFamily(store, ResourceFilter::byName(name, Expansion::None));
  const auto desc =
      evaluateFamily(store, ResourceFilter::byName(name, Expansion::Descendants));
  const auto anc =
      evaluateFamily(store, ResourceFilter::byName(name, Expansion::Ancestors));
  const auto both = evaluateFamily(store, ResourceFilter::byName(name, Expansion::Both));

  EXPECT_EQ(none, std::vector<ResourceId>{id});
  // D = self + descendants; A = self + ancestors; B = union of A and D.
  EXPECT_EQ(desc.size(), 1 + store.descendantsOf(id).size());
  EXPECT_EQ(anc.size(), 1 + store.ancestorsOf(id).size());
  std::set<ResourceId> union_ad(desc.begin(), desc.end());
  union_ad.insert(anc.begin(), anc.end());
  EXPECT_EQ(both.size(), union_ad.size());
  // Every family is sorted and duplicate-free.
  for (const auto& family : {none, desc, anc, both}) {
    EXPECT_TRUE(std::is_sorted(family.begin(), family.end()));
    EXPECT_EQ(std::adjacent_find(family.begin(), family.end()), family.end());
  }
}

TEST_P(ModelProperty, MatchedResultsSatisfyFilterSemantics) {
  Forest forest = makeForest(GetParam());
  PTDataStore& store = *forest.store;
  // Two-family filter: a random machine's subtree and a random processor.
  util::Rng rng(GetParam() * 31 + 7);
  const std::string& any = forest.resource_names[rng.uniformInt(
      0, static_cast<std::int64_t>(forest.resource_names.size()) - 1)];
  PrFilter filter;
  filter.families.push_back(ResourceFilter::byName(any, Expansion::Descendants));

  std::vector<std::vector<ResourceId>> families;
  families.push_back(evaluateFamily(store, filter.families[0]));
  const auto matched = queryResults(store, filter);

  // Verify against the definition: result matches iff SOME context has a
  // resource in EVERY family.
  std::set<std::int64_t> expected;
  for (const std::string& exec : forest.executions) {
    for (std::int64_t id : store.resultsForExecution(exec)) {
      const PerfResultRecord rec = store.getResult(id);
      for (const auto& context : rec.contexts) {
        bool all_families = true;
        for (const auto& family : families) {
          bool any_hit = false;
          for (ResourceId rid : context) {
            if (std::binary_search(family.begin(), family.end(), rid)) {
              any_hit = true;
              break;
            }
          }
          if (!any_hit) {
            all_families = false;
            break;
          }
        }
        if (all_families) {
          expected.insert(id);
          break;
        }
      }
    }
  }
  EXPECT_EQ(std::set<std::int64_t>(matched.begin(), matched.end()), expected);
}

TEST_P(ModelProperty, AddingFamiliesNeverWidensResults) {
  Forest forest = makeForest(GetParam());
  PTDataStore& store = *forest.store;
  PrFilter narrow;
  narrow.families.push_back(ResourceFilter::byType("grid/machine", Expansion::Descendants));
  const auto one = queryResults(store, narrow);
  narrow.families.push_back(
      ResourceFilter::byType("grid/machine/partition/node/processor", Expansion::None));
  const auto two = queryResults(store, narrow);
  EXPECT_LE(two.size(), one.size());
  // Every result matched by the tighter filter is matched by the looser one.
  for (std::int64_t id : two) {
    EXPECT_TRUE(std::binary_search(one.begin(), one.end(), id));
  }
}

TEST_P(ModelProperty, StatsAgreeWithEnumeration) {
  Forest forest = makeForest(GetParam());
  PTDataStore& store = *forest.store;
  std::size_t total = 0;
  for (const std::string& exec : forest.executions) {
    total += store.resultsForExecution(exec).size();
  }
  EXPECT_EQ(static_cast<std::size_t>(store.stats().performance_results), total);
  EXPECT_EQ(store.executions().size(), forest.executions.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Values(3u, 17u, 256u, 4096u));

}  // namespace
}  // namespace perftrack::core
