#include "core/query_session.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace perftrack::core {
namespace {

class QuerySessionTest : public ::testing::Test {
 protected:
  QuerySessionTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    // IRS runs on Frost at 2 process counts; per-function results.
    for (const char* p : {"/GF/Frost/batch/n0/p0", "/GF/Frost/batch/n0/p1"}) {
      store_.addResource(p, "grid/machine/partition/node/processor");
    }
    store_.addResourceAttribute("/GF/Frost", "os", "AIX");
    for (const char* exec : {"irs-np2", "irs-np4"}) {
      store_.addExecution(exec, "IRS");
      const std::string root = std::string("/") + exec;
      store_.addResource(root + "/p0", "execution/process");
      store_.addResource("/IRS-build/irs.c/solve", "build/module/function");
      store_.addResource("/IRS-build/irs.c/setup", "build/module/function");
      for (const char* fn : {"solve", "setup"}) {
        store_.addPerformanceResult(
            exec,
            {{{"/IRS-build/irs.c/" + std::string(fn), root + "/p0",
               "/GF/Frost/batch/n0/p0"},
              FocusType::Primary}},
            "IRS-benchmark", std::string(fn) + " time",
            exec == std::string("irs-np2") ? 10.0 : 6.0, "seconds");
      }
    }
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST_F(QuerySessionTest, BrowseTypesAndResources) {
  QuerySession session(store_);
  const auto types = session.resourceTypes();
  EXPECT_FALSE(types.empty());
  const auto tops = session.topLevelResources("grid");
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0].full_name, "/GF");
  const auto children = session.childrenOf(tops[0].id);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].name, "Frost");
}

TEST_F(QuerySessionTest, AttributeNamesForType) {
  QuerySession session(store_);
  const auto names = session.attributeNamesForType("grid/machine");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "os");
  EXPECT_TRUE(session.attributeNamesForType("time").empty());
}

TEST_F(QuerySessionTest, LiveMatchCounts) {
  QuerySession session(store_);
  const auto fam = session.addFamily(ResourceFilter::byName("Frost", Expansion::Descendants));
  EXPECT_EQ(session.familyMatchCount(fam), 4u);
  const auto fam2 =
      session.addFamily(ResourceFilter::byName("/IRS-build/irs.c/solve", Expansion::None));
  EXPECT_EQ(session.familyMatchCount(fam2), 2u);
  EXPECT_EQ(session.totalMatchCount(), 2u);  // intersection
}

TEST_F(QuerySessionTest, ChangingExpansionChangesCounts) {
  QuerySession session(store_);
  const auto fam = session.addFamily(ResourceFilter::byName("Frost", Expansion::None));
  EXPECT_EQ(session.familyMatchCount(fam), 0u);  // no machine-level results here
  session.setExpansion(fam, Expansion::Descendants);
  EXPECT_EQ(session.familyMatchCount(fam), 4u);
}

TEST_F(QuerySessionTest, RemoveFamilyWidensQuery) {
  QuerySession session(store_);
  session.addFamily(ResourceFilter::byName("Frost", Expansion::Descendants));
  session.addFamily(ResourceFilter::byName("/IRS-build/irs.c/solve", Expansion::None));
  EXPECT_EQ(session.totalMatchCount(), 2u);
  session.removeFamily(1);
  EXPECT_EQ(session.totalMatchCount(), 4u);
  EXPECT_THROW(session.removeFamily(5), util::ModelError);
}

TEST_F(QuerySessionTest, RunReturnsRowsWithContext) {
  QuerySession session(store_);
  session.addFamily(ResourceFilter::byName("/IRS-build/irs.c/solve", Expansion::None));
  ResultTable table = session.run();
  ASSERT_EQ(table.size(), 2u);
  for (const ResultRow& row : table.rows()) {
    EXPECT_EQ(row.metric, "solve time");
    EXPECT_EQ(row.tool, "IRS-benchmark");
    EXPECT_EQ(row.context_resources.size(), 3u);
  }
}

TEST_F(QuerySessionTest, FreeResourceTypesExcludeConstantColumns) {
  QuerySession session(store_);
  session.addFamily(ResourceFilter::byName("/IRS-build/irs.c/solve", Expansion::None));
  ResultTable table = session.run();
  const auto free = table.freeResourceTypes();
  // The per-execution process resources differ (/irs-np2/p0 vs /irs-np4/p0),
  // so execution/process is a free resource; the function and the processor
  // are identical on every row and therefore hidden (paper §3.2: types whose
  // names are identical for all listed results are not offered).
  EXPECT_NE(std::find(free.begin(), free.end(), "execution/process"), free.end());
  EXPECT_EQ(std::find(free.begin(), free.end(),
                      "grid/machine/partition/node/processor"),
            free.end());
  EXPECT_EQ(std::find(free.begin(), free.end(), "build/module/function"), free.end());
}

TEST_F(QuerySessionTest, AddColumnFillsValues) {
  QuerySession session(store_);
  session.addFamily(ResourceFilter::byName("/IRS-build/irs.c/solve", Expansion::None));
  ResultTable table = session.run();
  table.addColumn("execution/process");
  ASSERT_EQ(table.extraColumns().size(), 1u);
  std::set<std::string> values;
  for (const ResultRow& row : table.rows()) {
    values.insert(row.extra_columns.at("execution/process"));
  }
  EXPECT_EQ(values, (std::set<std::string>{"irs-np2/p0", "irs-np4/p0"}));
  // Re-adding the same column is a no-op.
  table.addColumn("execution/process");
  EXPECT_EQ(table.extraColumns().size(), 1u);
}

TEST_F(QuerySessionTest, SortAndFilterRows) {
  QuerySession session(store_);
  ResultTable table = session.run();  // all 4 results
  table.sortBy("value", /*descending=*/true);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_DOUBLE_EQ(table.rows()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(table.rows()[3].value, 6.0);
  table.filterRows("value", ">", "8");
  EXPECT_EQ(table.size(), 2u);
  table.filterRows("metric", "contains", "solve");
  EXPECT_EQ(table.size(), 1u);
}

TEST_F(QuerySessionTest, CsvExportRoundTrips) {
  QuerySession session(store_);
  session.addFamily(ResourceFilter::byName("/IRS-build/irs.c/solve", Expansion::None));
  ResultTable table = session.run();
  table.addColumn("execution/process");
  std::ostringstream out;
  table.toCsv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("execution,metric,tool,value,units,execution/process"),
            std::string::npos);
  EXPECT_NE(csv.find("solve time"), std::string::npos);
  EXPECT_NE(csv.find("irs-np4/p0"), std::string::npos);
}

TEST_F(QuerySessionTest, TextRenderingContainsData) {
  QuerySession session(store_);
  ResultTable table = session.run();
  const std::string text = table.toText();
  EXPECT_NE(text.find("metric"), std::string::npos);
  EXPECT_NE(text.find("IRS-benchmark"), std::string::npos);
}

TEST_F(QuerySessionTest, UnknownColumnThrows) {
  QuerySession session(store_);
  ResultTable table = session.run();
  EXPECT_THROW(table.sortBy("bogus"), util::ModelError);
  EXPECT_THROW(table.filterRows("bogus", "=", "1"), util::ModelError);
}

}  // namespace
}  // namespace perftrack::core
