#include "core/reports.h"

#include <gtest/gtest.h>

namespace perftrack::core {
namespace {

class ReportsTest : public ::testing::Test {
 protected:
  ReportsTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    store_.addExecution("run-1", "IRS");
    store_.addResource("/G/Frost/batch/n0/p0", "grid/machine/partition/node/processor");
    store_.addPerformanceResult("run-1", {{{"/G/Frost/batch/n0/p0"}, FocusType::Primary}},
                                "tool", "cpu time", 5.0, "seconds");
    store_.addPerformanceResult("run-1", {{{"/G/Frost/batch/n0/p0"}, FocusType::Primary}},
                                "tool", "flops", 1e9, "ops");
  }

  std::unique_ptr<dbal::Connection> conn_;
  PTDataStore store_;
};

TEST_F(ReportsTest, ExecutionReportListsRunsAndCounts) {
  const std::string report = executionReport(store_);
  EXPECT_NE(report.find("run-1"), std::string::npos);
  EXPECT_NE(report.find("app=IRS"), std::string::npos);
  EXPECT_NE(report.find("results=2"), std::string::npos);
}

TEST_F(ReportsTest, StoreReportShowsCounts) {
  const std::string report = storeReport(store_);
  EXPECT_NE(report.find("performance results: 2"), std::string::npos);
  EXPECT_NE(report.find("executions:          1"), std::string::npos);
}

TEST_F(ReportsTest, ResourceTreeShowsHierarchy) {
  const std::string report = resourceTreeReport(store_, "grid");
  EXPECT_NE(report.find("G [grid]"), std::string::npos);
  EXPECT_NE(report.find("Frost [grid/machine]"), std::string::npos);
  EXPECT_NE(report.find("p0 [grid/machine/partition/node/processor]"), std::string::npos);
}

TEST_F(ReportsTest, ResourceTreeRespectsDepthLimit) {
  const std::string report = resourceTreeReport(store_, "grid", /*max_depth=*/2);
  EXPECT_NE(report.find("Frost"), std::string::npos);
  EXPECT_EQ(report.find("batch"), std::string::npos);
}

TEST_F(ReportsTest, MetricReportListsUsage) {
  const std::string report = metricReport(store_);
  EXPECT_NE(report.find("cpu time (seconds)"), std::string::npos);
  EXPECT_NE(report.find("flops (ops)"), std::string::npos);
  EXPECT_NE(report.find("results=1"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::core
