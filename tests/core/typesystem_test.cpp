#include "core/typesystem.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::core {
namespace {

TEST(TypeSystem, BaseHierarchiesMatchFigureTwo) {
  const auto& h = baseHierarchicalTypes();
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0], "build/module/function/codeBlock");
  EXPECT_EQ(h[1], "grid/machine/partition/node/processor");
  EXPECT_EQ(h[2], "environment/module/function/codeBlock");
  EXPECT_EQ(h[3], "execution/process/thread");
  EXPECT_EQ(h[4], "time/interval");
}

TEST(TypeSystem, BaseSingleLevelTypesMatchFigureTwo) {
  const auto& s = baseSingleLevelTypes();
  ASSERT_EQ(s.size(), 8u);
  for (const char* expected : {"application", "compiler", "preprocessor", "inputDeck",
                               "submission", "operatingSystem", "metric",
                               "performanceTool"}) {
    EXPECT_NE(std::find(s.begin(), s.end(), expected), s.end()) << expected;
  }
}

TEST(TypeSystem, SplitTypePath) {
  const auto segs = splitTypePath("grid/machine/partition");
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], "grid");
  EXPECT_EQ(segs[2], "partition");
  EXPECT_EQ(splitTypePath("application").size(), 1u);
}

TEST(TypeSystem, SplitTypePathRejectsMalformed) {
  EXPECT_THROW(splitTypePath(""), util::ModelError);
  EXPECT_THROW(splitTypePath("a//b"), util::ModelError);
  EXPECT_THROW(splitTypePath("a/"), util::ModelError);
}

TEST(TypeSystem, SplitResourceName) {
  const auto segs = splitResourceName("/SingleMachineFrost/Frost/batch/frost121/p0");
  ASSERT_EQ(segs.size(), 5u);
  EXPECT_EQ(segs[0], "SingleMachineFrost");
  EXPECT_EQ(segs[4], "p0");
}

TEST(TypeSystem, SplitResourceNameRejectsMalformed) {
  EXPECT_THROW(splitResourceName("noleadingslash"), util::ModelError);
  EXPECT_THROW(splitResourceName("/"), util::ModelError);
  EXPECT_THROW(splitResourceName("/a//b"), util::ModelError);
  EXPECT_THROW(splitResourceName(""), util::ModelError);
}

TEST(TypeSystem, JoinRoundTrips) {
  const std::string name = "/Frost/batch/n1";
  EXPECT_EQ(joinResourceName(splitResourceName(name)), name);
}

TEST(TypeSystem, TypeBaseName) {
  EXPECT_EQ(typeBaseName("grid/machine/partition"), "partition");
  EXPECT_EQ(typeBaseName("application"), "application");
}

}  // namespace
}  // namespace perftrack::core
