// dbal::Connection::query(): streaming cursors through the statement cache.
// The interesting cases are the interactions with caching — a cursor must
// keep its plan alive across LRU eviction and DDL-triggered cache clears,
// and two interleaved cursors on the same SQL text must not share bindings.
#include <gtest/gtest.h>

#include "dbal/connection.h"
#include "util/error.h"

namespace perftrack::dbal {
namespace {

using minidb::Value;

class DbalCursorTest : public ::testing::Test {
 protected:
  DbalCursorTest() : conn_(Connection::open(":memory:")) {
    conn_->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, v REAL)");
    conn_->exec("INSERT INTO t (grp, v) VALUES "
                "('a', 1.0), ('b', 2.0), ('a', 3.0), ('c', 4.0), ('b', 5.0)");
  }

  std::vector<std::int64_t> drainInts(Cursor cur) {
    std::vector<std::int64_t> out;
    minidb::Row row;
    while (cur.next(row)) out.push_back(row[0].asInt());
    return out;
  }

  std::unique_ptr<Connection> conn_;
};

TEST_F(DbalCursorTest, QueryStreamsAndMatchesExec) {
  const auto rs = conn_->exec("SELECT id FROM t WHERE grp = 'a' ORDER BY id");
  auto cur = conn_->query("SELECT id FROM t WHERE grp = 'a' ORDER BY id");
  EXPECT_EQ(cur.columns(), rs.columns);
  std::vector<std::int64_t> expected;
  for (const auto& row : rs.rows) expected.push_back(row[0].asInt());
  EXPECT_EQ(drainInts(std::move(cur)), expected);
}

TEST_F(DbalCursorTest, QueryWithParamsBindsInOrder) {
  auto cur = conn_->query("SELECT id FROM t WHERE grp = ? AND v > ? ORDER BY id",
                          {Value("b"), Value(1.5)});
  EXPECT_EQ(drainInts(std::move(cur)), (std::vector<std::int64_t>{2, 5}));
  // The unparameterized overload refuses SQL with placeholders.
  EXPECT_THROW(conn_->query("SELECT id FROM t WHERE grp = ?"), util::SqlError);
}

TEST_F(DbalCursorTest, CursorGoesThroughStatementCache) {
  conn_->clearStatementCache();
  const auto before = conn_->statementCacheStats();
  { auto cur = conn_->query("SELECT id FROM t"); }
  { auto cur = conn_->query("SELECT id FROM t"); }
  const auto after = conn_->statementCacheStats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST_F(DbalCursorTest, InterleavedCursorsOnSameSqlDoNotShareBindings) {
  // First cursor holds the cached statement; the second compiles a fresh
  // uncached one, so stepping them alternately stays correct.
  auto a = conn_->query("SELECT id FROM t WHERE grp = ? ORDER BY id", {Value("a")});
  auto b = conn_->query("SELECT id FROM t WHERE grp = ? ORDER BY id", {Value("b")});
  minidb::Row ra, rb;
  std::vector<std::int64_t> got_a, got_b;
  while (true) {
    const bool ma = a.next(ra);
    const bool mb = b.next(rb);
    if (ma) got_a.push_back(ra[0].asInt());
    if (mb) got_b.push_back(rb[0].asInt());
    if (!ma && !mb) break;
  }
  EXPECT_EQ(got_a, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(got_b, (std::vector<std::int64_t>{2, 5}));
}

TEST_F(DbalCursorTest, CursorSurvivesLruEviction) {
  conn_->setStatementCacheCapacity(1);
  auto cur = conn_->query("SELECT id FROM t ORDER BY id");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  // Evict the cursor's statement from the one-slot cache mid-scan.
  conn_->exec("SELECT COUNT(*) FROM t WHERE grp = 'a'");
  std::vector<std::int64_t> rest;
  while (cur.next(row)) rest.push_back(row[0].asInt());
  EXPECT_EQ(rest, (std::vector<std::int64_t>{2, 3, 4, 5}));
}

TEST_F(DbalCursorTest, DdlWhileCursorOpenThrowsAndScanContinues) {
  auto cur = conn_->query("SELECT id FROM t ORDER BY id");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_THROW(conn_->exec("CREATE INDEX t_by_grp ON t (grp)"), util::StorageError);
  std::vector<std::int64_t> rest;
  while (cur.next(row)) rest.push_back(row[0].asInt());
  EXPECT_EQ(rest, (std::vector<std::int64_t>{2, 3, 4, 5}));
  // Cursor exhausted => the guard is lifted and the DDL goes through.
  conn_->exec("CREATE INDEX t_by_grp ON t (grp)");
  EXPECT_EQ(drainInts(conn_->query("SELECT id FROM t WHERE grp = 'a' ORDER BY id")),
            (std::vector<std::int64_t>{1, 3}));
}

TEST_F(DbalCursorTest, EarlyCloseAllowsWritesAgain) {
  auto cur = conn_->query("SELECT id FROM t");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_THROW(conn_->exec("DELETE FROM t WHERE grp = 'c'"), util::StorageError);
  cur.close();
  EXPECT_FALSE(cur.isOpen());
  conn_->exec("DELETE FROM t WHERE grp = 'c'");
  EXPECT_EQ(conn_->queryInt("SELECT COUNT(*) FROM t"), 4);
}

TEST_F(DbalCursorTest, ExplainStreamsPlanRows) {
  auto cur = conn_->query("EXPLAIN SELECT * FROM t WHERE id = 3");
  ASSERT_EQ(cur.columns().size(), 1u);
  EXPECT_EQ(cur.columns()[0], "plan");
  std::string text;
  minidb::Row row;
  while (cur.next(row)) text += row[0].asText() + "\n";
  EXPECT_NE(text.find("USING INDEX"), std::string::npos) << text;
}

}  // namespace
}  // namespace perftrack::dbal
