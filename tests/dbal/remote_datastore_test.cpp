// The paper's workflows, remote: a full PTDataStore driven over a
// ptserverd session must behave exactly like one over a local connection.
// Also holds the busy-statement regression tests for BOTH backends:
// exec()/execPrepared() on a statement whose cursor is mid-stream must take
// the fresh-statement fallback, never re-enter the streaming statement.
#include "core/datastore.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dbal/connection.h"
#include "dbal/remote.h"
#include "minidb/database.h"
#include "server/server.h"
#include "util/error.h"

namespace perftrack {
namespace {

class RemoteDataStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = minidb::Database::openMemory();
    server::ServerConfig config;
    config.port = 0;
    server_ = std::make_unique<server::PtServer>(*db_, config);
    server_->start();
    conn_ = dbal::Connection::open("pt://127.0.0.1:" +
                                   std::to_string(server_->boundPort()));
    store_ = std::make_unique<core::PTDataStore>(*conn_);
    store_->initialize();
  }

  void TearDown() override {
    store_.reset();
    conn_.reset();
    server_->stop();
  }

  std::unique_ptr<minidb::Database> db_;
  std::unique_ptr<server::PtServer> server_;
  std::unique_ptr<dbal::Connection> conn_;
  std::unique_ptr<core::PTDataStore> store_;
};

TEST_F(RemoteDataStoreTest, InitializeBuildsSchemaOverTheWire) {
  EXPECT_TRUE(store_->hasResourceType("grid"));
  EXPECT_TRUE(store_->hasResourceType("application"));
  EXPECT_EQ(store_->stats().resource_types, 26);
  // Idempotent, like the local path.
  store_->initialize();
  EXPECT_EQ(store_->stats().resource_types, 26);
}

TEST_F(RemoteDataStoreTest, ResourceWorkflowMatchesLocal) {
  store_->addResourceType("syncObject/message");
  store_->addResource("/mach1", "grid/machine");
  store_->addResource("/mach1/part0", "grid/machine/partition");
  store_->addResourceAttribute("/mach1", "os", "linux", "string");

  EXPECT_TRUE(store_->findResource("/mach1/part0").has_value());
  const auto attrs = store_->attributesOf(*store_->findResource("/mach1"));
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].value, "linux");

  store_->addExecution("run-1", "su3_rmd");
  EXPECT_EQ(store_->stats().executions, 1);
}

TEST_F(RemoteDataStoreTest, PerformanceResultRoundTrip) {
  store_->addResource("/nodeA", "grid/machine");
  store_->addExecution("run-1", "app");
  store_->addMetric("wall_time", "seconds");
  store_->addPerformanceTool("paradyn");
  core::ResourceSetSpec spec;
  spec.resource_names = {"/nodeA"};
  store_->addPerformanceResult("run-1", {spec}, "paradyn", "wall_time", 12.5);
  EXPECT_EQ(store_->stats().performance_results, 1);
}

// --- busy-statement fallback regressions (satellite) -------------------------

/// Shared body: exec() and execPrepared() while a cursor streams the SAME
/// SQL text — the scenario that re-enters a busy statement without the
/// fallback. Runs against either backend.
void execWhileCursorOpen(dbal::Connection& conn) {
  conn.exec("CREATE TABLE busy_t (v INTEGER)");
  for (int i = 1; i <= 20; ++i) {
    conn.execPrepared("INSERT INTO busy_t VALUES (?)", {minidb::Value(i)});
  }

  auto cur = conn.query("SELECT v FROM busy_t");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  const std::int64_t first = row[0].asInt();

  // exec() of the same text mid-stream: fresh statement, full result.
  const auto rs = conn.exec("SELECT v FROM busy_t");
  EXPECT_EQ(rs.rows.size(), 20u);

  // execPrepared() with the same text but different shape of use.
  const auto rs2 = conn.execPrepared("SELECT v FROM busy_t WHERE v > ?",
                                     {minidb::Value(std::int64_t{15})});
  EXPECT_EQ(rs2.rows.size(), 5u);

  // The original cursor was not disturbed: it continues from where it was
  // and still yields every remaining row exactly once.
  int streamed = 1;
  std::int64_t last = first;
  while (cur.next(row)) {
    ++streamed;
    last = row[0].asInt();
  }
  EXPECT_EQ(streamed, 20);
  EXPECT_NE(last, first);
}

TEST(BusyStatementFallback, LocalExecDuringOpenCursor) {
  auto conn = dbal::Connection::open(":memory:");
  execWhileCursorOpen(*conn);
}

TEST(BusyStatementFallback, RemoteExecDuringOpenCursor) {
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;
  server::PtServer srv(*db, config);
  srv.start();
  auto conn = dbal::Connection::open("pt://127.0.0.1:" +
                                     std::to_string(srv.boundPort()));
  execWhileCursorOpen(*conn);
  conn.reset();
  srv.stop();
}

TEST(BusyStatementFallback, RemoteStatementHandlesDoNotLeak) {
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;
  server::PtServer srv(*db, config);
  srv.start();
  auto conn = dbal::Connection::open("pt://127.0.0.1:" +
                                     std::to_string(srv.boundPort()));
  conn->exec("CREATE TABLE t (v INTEGER)");
  conn->exec("INSERT INTO t VALUES (1)");
  // Repeating one text must reuse one server-side statement, not grow.
  for (int i = 0; i < 50; ++i) conn->queryInt("SELECT COUNT(*) FROM t");
  EXPECT_LE(conn->statementCacheSize(), 4u);
  conn.reset();
  srv.stop();
}

}  // namespace
}  // namespace perftrack
