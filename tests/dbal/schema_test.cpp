#include "dbal/schema.h"

#include <gtest/gtest.h>

#include "dbal/connection.h"
#include "util/tempdir.h"

namespace perftrack::dbal {
namespace {

TEST(Schema, CreateIsIdempotent) {
  auto conn = Connection::open(":memory:");
  createPerfTrackSchema(*conn);
  EXPECT_TRUE(hasPerfTrackSchema(*conn));
  EXPECT_NO_THROW(createPerfTrackSchema(*conn));  // second run is a no-op
  EXPECT_TRUE(hasPerfTrackSchema(*conn));
}

TEST(Schema, FreshConnectionHasNoSchema) {
  auto conn = Connection::open(":memory:");
  EXPECT_FALSE(hasPerfTrackSchema(*conn));
}

TEST(Schema, AllFigureOneTablesExist) {
  auto conn = Connection::open(":memory:");
  createPerfTrackSchema(*conn);
  for (const char* table :
       {"focus_framework", "resource_item", "resource_attribute", "resource_constraint",
        "resource_has_ancestor", "resource_has_descendant", "application", "execution",
        "performance_tool", "metric", "focus", "focus_has_resource", "performance_result",
        "performance_result_has_focus"}) {
    EXPECT_NE(conn->database().catalog().findTable(table), nullptr) << table;
  }
}

TEST(Schema, UniqueFullNameEnforced) {
  auto conn = Connection::open(":memory:");
  createPerfTrackSchema(*conn);
  conn->exec("INSERT INTO resource_item (name, full_name, parent_id, focus_framework_id)"
             " VALUES ('x', '/x', NULL, 1)");
  EXPECT_ANY_THROW(
      conn->exec("INSERT INTO resource_item (name, full_name, parent_id, "
                 "focus_framework_id) VALUES ('x', '/x', NULL, 1)"));
}

TEST(Schema, DropRemovesEverything) {
  auto conn = Connection::open(":memory:");
  createPerfTrackSchema(*conn);
  dropPerfTrackSchema(*conn);
  EXPECT_FALSE(hasPerfTrackSchema(*conn));
  EXPECT_EQ(conn->database().catalog().findTable("resource_item"), nullptr);
}

TEST(Schema, SchemaSurvivesReopen) {
  util::TempDir dir;
  const std::string path = dir.file("schema.db").string();
  {
    auto conn = Connection::open(path);
    createPerfTrackSchema(*conn);
    conn->exec("INSERT INTO application (name) VALUES ('IRS')");
    // The file backend flushes on close; no explicit transaction needed.
  }
  auto conn = Connection::open(path);
  EXPECT_TRUE(hasPerfTrackSchema(*conn));
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM application"), 1);
}

TEST(Connection, QueryHelpers) {
  auto conn = Connection::open(":memory:");
  conn->exec("CREATE TABLE t (a INTEGER, b TEXT)");
  conn->exec("INSERT INTO t VALUES (7, 'x')");
  EXPECT_EQ(conn->queryInt("SELECT a FROM t"), 7);
  EXPECT_EQ(conn->queryInt("SELECT a FROM t WHERE a = 99", -1), -1);
  EXPECT_EQ(conn->queryValue("SELECT b FROM t").asText(), "x");
  EXPECT_TRUE(conn->queryValue("SELECT a FROM t WHERE a = 99").isNull());
}

}  // namespace
}  // namespace perftrack::dbal
