// Connection statement cache: hit/miss accounting, LRU eviction, and
// invalidation on DDL and on the index-ablation switch.
#include "dbal/connection.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::dbal {
namespace {

using minidb::Value;

// EXPLAIN now returns the operator tree, one row per operator; join the
// lines so assertions can search the whole plan.
std::string planText(const minidb::sql::ResultSet& rs) {
  std::string text;
  for (const auto& row : rs.rows) {
    text += row[0].asText();
    text += '\n';
  }
  return text;
}

class StatementCacheTest : public ::testing::Test {
 protected:
  StatementCacheTest() : conn_(Connection::open(":memory:")) {
    conn_->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)");
    conn_->exec("INSERT INTO t (k, v) VALUES (1, 'a'), (2, 'b'), (3, 'c'), (2, 'd')");
  }

  std::unique_ptr<Connection> conn_;
};

TEST_F(StatementCacheTest, RepeatedSqlTextHitsTheCache) {
  const auto before = conn_->statementCacheStats();
  conn_->exec("SELECT v FROM t WHERE k = 2");
  conn_->exec("SELECT v FROM t WHERE k = 2");
  conn_->exec("SELECT v FROM t WHERE k = 2");
  const auto after = conn_->statementCacheStats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 2u);
  EXPECT_GE(conn_->statementCacheSize(), 1u);
}

TEST_F(StatementCacheTest, ExecPreparedSharesOneEntryAcrossParamSets) {
  const auto before = conn_->statementCacheStats();
  const char* q = "SELECT v FROM t WHERE k = ?";
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);
  EXPECT_EQ(conn_->execPrepared(q, {Value(1)}).rows.size(), 1u);
  EXPECT_EQ(conn_->execPrepared(q, {Value(99)}).rows.size(), 0u);
  const auto after = conn_->statementCacheStats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 2u);
}

TEST_F(StatementCacheTest, PlainExecRejectsParameterizedSql) {
  EXPECT_THROW(conn_->exec("SELECT v FROM t WHERE k = ?"), util::SqlError);
}

TEST_F(StatementCacheTest, QueryHelpersTakeParams) {
  EXPECT_EQ(conn_->queryInt("SELECT COUNT(*) FROM t WHERE k = ?", {Value(2)}), 2);
  EXPECT_EQ(conn_->queryInt("SELECT id FROM t WHERE k = ?", {Value(99)}, -1), -1);
  EXPECT_EQ(conn_->queryValue("SELECT v FROM t WHERE k = ?", {Value(1)}).asText(), "a");
}

TEST_F(StatementCacheTest, DdlClearsTheCache) {
  conn_->exec("SELECT v FROM t WHERE k = 1");
  ASSERT_GE(conn_->statementCacheSize(), 1u);
  const auto before = conn_->statementCacheStats();
  conn_->exec("CREATE TABLE other (x INTEGER)");
  EXPECT_EQ(conn_->statementCacheSize(), 0u);
  EXPECT_GT(conn_->statementCacheStats().invalidations, before.invalidations);
}

TEST_F(StatementCacheTest, CreateIndexInvalidatesAndNewPlansUseIt) {
  // Warm the cache with a plan that can only heap-scan.
  conn_->exec("SELECT v FROM t WHERE k = 2");
  ASSERT_GE(conn_->statementCacheSize(), 1u);
  conn_->exec("CREATE INDEX t_by_k ON t (k)");
  EXPECT_EQ(conn_->statementCacheSize(), 0u);
  // Correct rows after the index appears, and the replanned query uses it.
  EXPECT_EQ(conn_->exec("SELECT v FROM t WHERE k = 2").rows.size(), 2u);
  const auto plan = conn_->exec("EXPLAIN SELECT v FROM t WHERE k = 2");
  EXPECT_NE(planText(plan).find("USING INDEX t_by_k"), std::string::npos);
}

TEST_F(StatementCacheTest, DropInvalidates) {
  conn_->exec("CREATE INDEX t_by_k ON t (k)");
  conn_->exec("SELECT v FROM t WHERE k = 2");
  ASSERT_GE(conn_->statementCacheSize(), 1u);
  conn_->exec("DROP INDEX t_by_k");
  EXPECT_EQ(conn_->statementCacheSize(), 0u);
  // The dropped index must not be referenced by any surviving plan.
  EXPECT_EQ(conn_->exec("SELECT v FROM t WHERE k = 2").rows.size(), 2u);
}

TEST_F(StatementCacheTest, UseIndexesSwitchClearsCacheAndChangesPlans) {
  // This test is about the use_indexes knob; pin the inverted-index path
  // off so the multi-point-probe plan text is what EXPLAIN prints.
  conn_->setInvidxEnabled(false);
  conn_->exec("CREATE INDEX t_by_k ON t (k)");
  const char* q = "EXPLAIN SELECT v FROM t WHERE k IN (1, 3)";
  auto plan = conn_->exec(q);
  EXPECT_NE(planText(plan).find("IN multi-point probe, 2 keys"),
            std::string::npos);
  conn_->setUseIndexes(false);
  EXPECT_EQ(conn_->statementCacheSize(), 0u);
  plan = conn_->exec(q);
  EXPECT_NE(planText(plan).find("SCAN t AS t"), std::string::npos);
  EXPECT_EQ(planText(plan).find("USING INDEX"), std::string::npos);
  // Results stay identical either way.
  EXPECT_EQ(conn_->exec("SELECT v FROM t WHERE k IN (1, 3)").rows.size(), 2u);
  conn_->setUseIndexes(true);
  plan = conn_->exec(q);
  EXPECT_NE(planText(plan).find("USING INDEX"), std::string::npos);
}

TEST_F(StatementCacheTest, LruEvictsLeastRecentlyUsed) {
  conn_->clearStatementCache();
  conn_->setStatementCacheCapacity(2);
  conn_->exec("SELECT v FROM t WHERE k = 1");  // A
  conn_->exec("SELECT v FROM t WHERE k = 2");  // B
  conn_->exec("SELECT v FROM t WHERE k = 1");  // touch A -> B is now LRU
  const auto before = conn_->statementCacheStats();
  conn_->exec("SELECT v FROM t WHERE k = 3");  // C evicts B
  EXPECT_EQ(conn_->statementCacheSize(), 2u);
  EXPECT_EQ(conn_->statementCacheStats().evictions - before.evictions, 1u);
  // A survived (hit); B was evicted (miss).
  const auto mid = conn_->statementCacheStats();
  conn_->exec("SELECT v FROM t WHERE k = 1");
  EXPECT_EQ(conn_->statementCacheStats().hits - mid.hits, 1u);
  const auto late = conn_->statementCacheStats();
  conn_->exec("SELECT v FROM t WHERE k = 2");
  EXPECT_EQ(conn_->statementCacheStats().misses - late.misses, 1u);
}

TEST_F(StatementCacheTest, CapacityZeroDisablesCaching) {
  conn_->setStatementCacheCapacity(0);
  EXPECT_EQ(conn_->statementCacheSize(), 0u);
  const auto before = conn_->statementCacheStats();
  conn_->exec("SELECT v FROM t WHERE k = 1");
  conn_->exec("SELECT v FROM t WHERE k = 1");
  EXPECT_EQ(conn_->statementCacheSize(), 0u);
  EXPECT_EQ(conn_->statementCacheStats().misses - before.misses, 2u);
  EXPECT_EQ(conn_->statementCacheStats().hits, before.hits);
}

TEST_F(StatementCacheTest, ShrinkingCapacityEvictsDown) {
  conn_->clearStatementCache();
  conn_->exec("SELECT v FROM t WHERE k = 1");
  conn_->exec("SELECT v FROM t WHERE k = 2");
  conn_->exec("SELECT v FROM t WHERE k = 3");
  ASSERT_EQ(conn_->statementCacheSize(), 3u);
  conn_->setStatementCacheCapacity(1);
  EXPECT_EQ(conn_->statementCacheSize(), 1u);
  // The survivor is the most recently used statement.
  const auto before = conn_->statementCacheStats();
  conn_->exec("SELECT v FROM t WHERE k = 3");
  EXPECT_EQ(conn_->statementCacheStats().hits - before.hits, 1u);
}

TEST_F(StatementCacheTest, VacuumBumpsEpochAndCachedPlansReplan) {
  // VACUUM rewrites every heap and index, moving rows to new record ids, so
  // any plan compiled before it must replan (via the schema epoch) rather
  // than probe stale locations.
  conn_->exec("CREATE INDEX t_by_k ON t (k)");
  const char* q = "SELECT v FROM t WHERE k = ?";
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);
  ASSERT_GE(conn_->statementCacheSize(), 1u);

  // Churn the table so vacuum actually relocates surviving rows.
  conn_->exec("INSERT INTO t (k, v) VALUES (5, 'e'), (6, 'f'), (7, 'g')");
  conn_->exec("DELETE FROM t WHERE k = 1 OR k = 5 OR k = 6");

  const auto epoch_before = conn_->database().schemaEpoch();
  conn_->exec("VACUUM");
  EXPECT_GT(conn_->database().schemaEpoch(), epoch_before);

  // The cached entry (if it survived the cache policy) must produce correct
  // rows against the rewritten storage, and integrity must hold.
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);
  EXPECT_EQ(conn_->execPrepared(q, {Value(7)}).rows.size(), 1u);
  EXPECT_EQ(conn_->execPrepared(q, {Value(1)}).rows.size(), 0u);
  EXPECT_TRUE(conn_->database().verifyIntegrity().empty());
}

TEST_F(StatementCacheTest, RollbackOfDdlRestoresPlansViaEpoch) {
  // A rolled-back transaction that created an index must bump the epoch:
  // plans compiled against the in-transaction schema would otherwise keep
  // probing an index that no longer exists.
  const char* q = "SELECT v FROM t WHERE k = ?";
  conn_->begin();
  conn_->exec("CREATE INDEX t_by_k ON t (k)");
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);  // index plan
  const auto epoch_in_txn = conn_->database().schemaEpoch();
  conn_->rollback();
  EXPECT_NE(conn_->database().schemaEpoch(), epoch_in_txn);

  // The index is gone; the same cached SQL must heap-scan and stay correct.
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);
  const auto plan = conn_->exec("EXPLAIN SELECT v FROM t WHERE k = 2");
  EXPECT_EQ(planText(plan).find("USING INDEX"), std::string::npos);
  EXPECT_TRUE(conn_->database().verifyIntegrity().empty());
}

TEST_F(StatementCacheTest, RollbackOfDroppedIndexKeepsIndexPlansValid) {
  // The mirror case: DROP INDEX inside a rolled-back transaction. After
  // rollback the index is back, and plans must be able to use it again.
  conn_->exec("CREATE INDEX t_by_k ON t (k)");
  const char* q = "SELECT v FROM t WHERE k = ?";
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);
  conn_->begin();
  conn_->exec("DROP INDEX t_by_k");
  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);  // scan plan
  conn_->rollback();

  EXPECT_EQ(conn_->execPrepared(q, {Value(2)}).rows.size(), 2u);
  const auto plan = conn_->exec("EXPLAIN SELECT v FROM t WHERE k = 2");
  EXPECT_NE(planText(plan).find("USING INDEX t_by_k"), std::string::npos);
  EXPECT_TRUE(conn_->database().verifyIntegrity().empty());
}

TEST_F(StatementCacheTest, CachedDmlKeepsWorking) {
  const char* ins = "INSERT INTO t (k, v) VALUES (?, ?)";
  conn_->execPrepared(ins, {Value(7), Value("x")});
  conn_->execPrepared(ins, {Value(7), Value("y")});
  EXPECT_EQ(conn_->queryInt("SELECT COUNT(*) FROM t WHERE k = ?", {Value(7)}), 2);
  const char* del = "DELETE FROM t WHERE v = ?";
  EXPECT_EQ(conn_->execPrepared(del, {Value("x")}).rows_affected, 1);
  EXPECT_EQ(conn_->queryInt("SELECT COUNT(*) FROM t WHERE k = ?", {Value(7)}), 1);
}

}  // namespace
}  // namespace perftrack::dbal
