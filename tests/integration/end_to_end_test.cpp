// Integration tests: the full pipeline for each supported data source —
// generate tool output, batch-convert through the PTdfGen driver, load into
// a *file-backed* store, reopen it from disk, and query — plus a combined
// multi-tool store mirroring the paper's "single performance analysis
// session" claim.
#include <gtest/gtest.h>

#include <fstream>

#include "analyze/compare.h"
#include "core/query_session.h"
#include "dbal/schema.h"
#include "ptdf/ptdf.h"
#include "util/error.h"
#include "sim/irs_gen.h"
#include "sim/paradyn_gen.h"
#include "sim/smg_gen.h"
#include "tools/ptdfgen.h"
#include "util/tempdir.h"

namespace perftrack {
namespace {

/// (kind, machine) pairs covering every converter and platform combination.
class PipelineTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(PipelineTest, GenerateConvertLoadReopenQuery) {
  const auto [kind, machine_name] = GetParam();
  util::TempDir workspace("pipeline");
  const sim::MachineConfig machine = tools::machineByName(machine_name);

  // 1. Generate the run and a PTdfGen index entry for it.
  std::string exec_name;
  const auto run_dir = workspace.file("run");
  if (std::string(kind) == "irs") {
    exec_name = sim::generateIrsRun({machine, 8, "MPI", 2, ""}, run_dir).exec_name;
  } else if (std::string(kind) == "smg") {
    sim::SmgRunSpec spec;
    spec.machine = machine;
    spec.nprocs = 8;
    spec.with_mpip = machine.name == "UV";
    spec.with_pmapi = machine.name == "UV";
    spec.seed = 2;
    exec_name = sim::generateSmgRun(spec, run_dir).exec_name;
  } else {
    sim::ParadynRunSpec spec;
    spec.machine = machine;
    spec.nprocs = 4;
    spec.seed = 2;
    spec.metric_focus_pairs = 6;
    spec.histogram_bins = 50;
    spec.code_resources = 100;
    exec_name = sim::generateParadynRun(spec, run_dir).exec_name;
  }
  const auto index = workspace.file("index.txt");
  {
    std::ofstream out(index);
    out << kind << " " << run_dir.string() << " " << machine_name;
    if (std::string(kind) == "paradyn") out << " " << exec_name;
    out << "\n";
  }

  // 2. Batch-convert.
  const auto generated = tools::generateFromIndex(index, workspace.file("ptdf"));
  ASSERT_EQ(generated.size(), 1u);
  EXPECT_GT(generated[0].perf_results, 0u);

  // 3. Load into a file-backed store.
  const std::string db_path = workspace.file("store.db").string();
  {
    auto conn = dbal::Connection::open(db_path);
    core::PTDataStore store(*conn);
    store.initialize();
    conn->begin();
    const auto stats = ptdf::loadFile(store, generated[0].ptdf_file.string());
    conn->commit();
    EXPECT_EQ(stats.perf_results, generated[0].perf_results);
  }

  // 4. Reopen from disk; everything must still be there and queryable.
  auto conn = dbal::Connection::open(db_path);
  core::PTDataStore store(*conn);
  ASSERT_TRUE(dbal::hasPerfTrackSchema(*conn));
  const auto execs = store.executions();
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0], exec_name);
  EXPECT_EQ(store.resultsForExecution(exec_name).size(), generated[0].perf_results);

  core::QuerySession session(store);
  session.addFamily(core::ResourceFilter::byName("/" + exec_name,
                                                 core::Expansion::Descendants));
  EXPECT_GT(session.totalMatchCount(), 0u);
  core::ResultTable table = session.run();
  EXPECT_EQ(table.size(), session.totalMatchCount());
}

INSTANTIATE_TEST_SUITE_P(
    Sources, PipelineTest,
    ::testing::Values(std::pair{"irs", "frost"}, std::pair{"irs", "mcr"},
                      std::pair{"smg", "bgl"}, std::pair{"smg", "uv"},
                      std::pair{"paradyn", "mcr"}));

TEST(CombinedStore, ThreeToolsInOneAnalysisSession) {
  // The paper's headline: "data collected in different locations and
  // formats can be compared and viewed in a single performance analysis
  // session". Load IRS, SMG (BGL + UV w/ mpiP+PMAPI), and Paradyn data into
  // one store and cross-query.
  util::TempDir workspace("combined");
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  auto loadEntry = [&](const tools::IndexEntry& entry) {
    const auto gen = tools::generateEntry(entry, workspace.file("out"));
    return ptdf::loadFile(store, gen.ptdf_file.string());
  };

  sim::generateIrsRun({sim::frostConfig(), 8, "MPI", 1, ""}, workspace.file("irs"));
  loadEntry({"irs", workspace.file("irs"), "frost", ""});

  sim::SmgRunSpec smg;
  smg.machine = sim::uvConfig();
  smg.nprocs = 8;
  smg.with_mpip = true;
  smg.with_pmapi = true;
  sim::generateSmgRun(smg, workspace.file("smg"));
  loadEntry({"smg", workspace.file("smg"), "uv", ""});

  sim::ParadynRunSpec pd;
  pd.machine = sim::mcrConfig();
  pd.nprocs = 4;
  pd.metric_focus_pairs = 4;
  pd.histogram_bins = 40;
  pd.code_resources = 60;
  const auto pd_run = sim::generateParadynRun(pd, workspace.file("pd"));
  loadEntry({"paradyn", workspace.file("pd"), "mcr", pd_run.exec_name});

  // Five tools contributed results.
  const auto rs = conn->exec("SELECT COUNT(DISTINCT name) FROM performance_tool");
  EXPECT_GE(rs.rows[0][0].asInt(), 5);  // IRS-benchmark, SMG2000, PMAPI, mpiP, Paradyn
  EXPECT_EQ(store.executions().size(), 3u);

  // One query spanning data from different tools: everything measured on a
  // build-hierarchy function, regardless of origin.
  core::QuerySession session(store);
  session.addFamily(core::ResourceFilter::byType("build/module/function"));
  core::ResultTable table = session.run();
  std::set<std::string> tools_seen;
  for (const auto& row : table.rows()) tools_seen.insert(row.tool);
  EXPECT_GE(tools_seen.size(), 3u);  // IRS timings, mpiP callsites, Paradyn bins
}

TEST(CombinedStore, TransactionalLoadRollsBackCleanly) {
  // A failed load must leave no partial execution behind.
  util::TempDir workspace("txn-load");
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  const auto good = workspace.file("good.ptdf");
  {
    std::ofstream out(good);
    ptdf::Writer writer(out);
    writer.application("app");
    writer.execution("ok-run", "app");
    writer.resource("/ok-run", "execution");
    writer.perfResult("ok-run", {{{"/ok-run"}, core::FocusType::Primary}}, "t", "m",
                      1.0, "s");
  }
  const auto bad = workspace.file("bad.ptdf");
  {
    std::ofstream out(bad);
    ptdf::Writer writer(out);
    writer.application("app");
    writer.execution("bad-run", "app");
    writer.resource("/bad-run", "execution");
    writer.perfResult("bad-run", {{{"/bad-run"}, core::FocusType::Primary}}, "t", "m",
                      1.0, "s");
    out << "PerfResult bad-run /ghost(primary) t m 1 s\n";  // unknown resource
  }
  conn->begin();
  ptdf::loadFile(store, good.string());
  conn->commit();

  conn->begin();
  EXPECT_THROW(ptdf::loadFile(store, bad.string()), util::ParseError);
  conn->rollback();
  store.clearCache();  // caches may hold rolled-back ids

  EXPECT_EQ(store.executions(), std::vector<std::string>{"ok-run"});
  EXPECT_FALSE(store.findResource("/bad-run").has_value());
  // The store remains fully usable.
  EXPECT_EQ(store.resultsForExecution("ok-run").size(), 1u);
}

}  // namespace
}  // namespace perftrack
