#include "minidb/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "minidb/keycodec.h"
#include "util/error.h"
#include "util/rng.h"

namespace perftrack::minidb {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : root_(BTree::create(pager_)), tree_(pager_, root_) {}

  MemPager pager_;
  PageId root_;
  BTree tree_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  EXPECT_EQ(tree_.size(), 0u);
  EXPECT_EQ(tree_.height(), 1);
  EXPECT_FALSE(tree_.contains("anything"));
  EXPECT_TRUE(tree_.begin().done());
}

TEST_F(BTreeTest, InsertAndContains) {
  tree_.insert("bravo");
  tree_.insert("alpha");
  tree_.insert("charlie");
  EXPECT_TRUE(tree_.contains("alpha"));
  EXPECT_TRUE(tree_.contains("bravo"));
  EXPECT_TRUE(tree_.contains("charlie"));
  EXPECT_FALSE(tree_.contains("delta"));
  EXPECT_EQ(tree_.size(), 3u);
}

TEST_F(BTreeTest, IterationIsSorted) {
  const std::vector<std::string> keys = {"pear", "apple", "zebra", "mango", "fig"};
  for (const auto& k : keys) tree_.insert(k);
  std::vector<std::string> seen;
  for (auto it = tree_.begin(); !it.done(); it.next()) {
    seen.emplace_back(it.key());
  }
  std::vector<std::string> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

TEST_F(BTreeTest, DuplicateInsertThrows) {
  tree_.insert("unique");
  EXPECT_THROW(tree_.insert("unique"), util::StorageError);
}

TEST_F(BTreeTest, EraseRemovesKey) {
  tree_.insert("keep");
  tree_.insert("drop");
  EXPECT_TRUE(tree_.erase("drop"));
  EXPECT_FALSE(tree_.contains("drop"));
  EXPECT_TRUE(tree_.contains("keep"));
  EXPECT_FALSE(tree_.erase("drop"));  // second erase fails
  EXPECT_FALSE(tree_.erase("never-existed"));
}

TEST_F(BTreeTest, LowerBoundSemantics) {
  tree_.insert("b");
  tree_.insert("d");
  tree_.insert("f");
  EXPECT_EQ(tree_.lowerBound("a").key(), "b");
  EXPECT_EQ(tree_.lowerBound("b").key(), "b");
  EXPECT_EQ(tree_.lowerBound("c").key(), "d");
  EXPECT_EQ(tree_.lowerBound("f").key(), "f");
  EXPECT_TRUE(tree_.lowerBound("g").done());
}

TEST_F(BTreeTest, SplitsGrowHeightAndKeepOrder) {
  // Enough sequential keys to force multiple leaf and internal splits.
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i);
    tree_.insert(buf);
  }
  EXPECT_EQ(tree_.size(), static_cast<std::size_t>(n));
  EXPECT_GT(tree_.height(), 1);
  // Root page id must be stable across splits (catalog relies on it).
  EXPECT_EQ(tree_.rootPage(), root_);
  int i = 0;
  for (auto it = tree_.begin(); !it.done(); it.next(), ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i);
    ASSERT_EQ(it.key(), std::string_view(buf));
  }
  EXPECT_EQ(i, n);
}

TEST_F(BTreeTest, ReverseInsertionOrderStillSorted) {
  for (int i = 2000; i > 0; --i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i);
    tree_.insert(buf);
  }
  std::string prev;
  for (auto it = tree_.begin(); !it.done(); it.next()) {
    ASSERT_LT(prev, std::string(it.key()));
    prev = std::string(it.key());
  }
  EXPECT_EQ(tree_.size(), 2000u);
}

TEST_F(BTreeTest, OversizedKeyRejected) {
  const std::string huge(BTree::maxKeySize() + 1, 'k');
  EXPECT_THROW(tree_.insert(huge), util::StorageError);
  const std::string ok(BTree::maxKeySize(), 'k');
  tree_.insert(ok);
  EXPECT_TRUE(tree_.contains(ok));
}

TEST_F(BTreeTest, RandomizedAgainstStdSet) {
  util::Rng rng(4242);
  std::set<std::string> model;
  for (int step = 0; step < 20000; ++step) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "k%06lld", static_cast<long long>(rng.uniformInt(0, 9999)));
    const std::string key(buf);
    if (rng.chance(0.7)) {
      if (model.insert(key).second) {
        tree_.insert(key);
      } else {
        EXPECT_THROW(tree_.insert(key), util::StorageError);
      }
    } else {
      EXPECT_EQ(tree_.erase(key), model.erase(key) > 0);
    }
  }
  EXPECT_EQ(tree_.size(), model.size());
  auto it = tree_.begin();
  for (const std::string& key : model) {
    ASSERT_FALSE(it.done());
    ASSERT_EQ(it.key(), key);
    it.next();
  }
  EXPECT_TRUE(it.done());
}

TEST_F(BTreeTest, DestroyFreesAllPages) {
  for (int i = 0; i < 3000; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i);
    tree_.insert(buf);
  }
  const auto pages_before = pager_.pageCount();
  EXPECT_GT(pages_before, 4u);
  tree_.destroy();
  // All pages recycled: the next several allocations must not grow the db.
  for (int i = 0; i < 4; ++i) pager_.allocate();
  EXPECT_EQ(pager_.pageCount(), pages_before);
}

TEST_F(BTreeTest, EncodedCompositeKeysScanInValueOrder) {
  // Simulates a (text, int) secondary index as the Database uses it.
  util::Rng rng(7);
  std::vector<std::pair<std::string, std::int64_t>> entries;
  for (int i = 0; i < 500; ++i) {
    entries.emplace_back("name" + std::to_string(rng.uniformInt(0, 20)),
                         rng.uniformInt(0, 1000));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EncodedKey key = encodeKey({Value(entries[i].first), Value(entries[i].second)});
    encodeRecordIdSuffix({static_cast<PageId>(i), 0}, key);
    tree_.insert(key);
  }
  // Prefix scan for one name returns exactly that name's entries.
  const EncodedKey prefix = encodeKey({Value("name7")});
  std::size_t expected = 0;
  for (const auto& [name, v] : entries) {
    if (name == "name7") ++expected;
  }
  std::size_t got = 0;
  for (auto it = tree_.lowerBound(prefix); !it.done(); it.next()) {
    if (it.key().substr(0, prefix.size()) != prefix) break;
    ++got;
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace perftrack::minidb
