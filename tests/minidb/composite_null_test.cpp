// Edge-case coverage: composite indexes and NULL semantics across the
// storage and SQL layers.
#include <gtest/gtest.h>

#include "minidb/sql/executor.h"
#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

class CompositeIndexTest : public ::testing::Test {
 protected:
  CompositeIndexTest() : db_(Database::openMemory()) {
    db_->createTable("t",
                     {{"id", ColumnType::Integer},
                      {"a", ColumnType::Text},
                      {"b", ColumnType::Integer}},
                     0);
    db_->createIndex("t_by_ab", "t", {"a", "b"});
    for (int i = 0; i < 30; ++i) {
      db_->insertRow("t", {Value::null(), Value("k" + std::to_string(i % 3)),
                           Value(std::int64_t{i % 5})});
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(CompositeIndexTest, FullPrefixEqualScan) {
  const IndexDef* index = db_->catalog().findIndex("t_by_ab");
  ASSERT_NE(index, nullptr);
  int hits = 0;
  db_->indexScanEqual(*index, {Value("k1"), Value(std::int64_t{2})},
                      [&](RecordId, const Row& row) {
                        EXPECT_EQ(row.at(1).asText(), "k1");
                        EXPECT_EQ(row.at(2).asInt(), 2);
                        ++hits;
                        return true;
                      });
  EXPECT_EQ(hits, 2);  // i in {7, 22}
}

TEST_F(CompositeIndexTest, PartialPrefixEqualScan) {
  const IndexDef* index = db_->catalog().findIndex("t_by_ab");
  int hits = 0;
  db_->indexScanEqual(*index, {Value("k0")}, [&](RecordId, const Row& row) {
    EXPECT_EQ(row.at(1).asText(), "k0");
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 10);
}

TEST_F(CompositeIndexTest, PrefixScanOrderedBySecondColumn) {
  const IndexDef* index = db_->catalog().findIndex("t_by_ab");
  std::int64_t prev = -1;
  db_->indexScanEqual(*index, {Value("k2")}, [&](RecordId, const Row& row) {
    EXPECT_GE(row.at(2).asInt(), prev);
    prev = row.at(2).asInt();
    return true;
  });
  EXPECT_GE(prev, 0);
}

TEST_F(CompositeIndexTest, CompositeUniqueIndexDistinguishesPairs) {
  db_->createTable("u", {{"x", ColumnType::Text}, {"y", ColumnType::Integer}});
  db_->createIndex("u_xy", "u", {"x", "y"}, /*unique=*/true);
  db_->insertRow("u", {Value("a"), Value(std::int64_t{1})});
  db_->insertRow("u", {Value("a"), Value(std::int64_t{2})});  // same x, new y: ok
  db_->insertRow("u", {Value("b"), Value(std::int64_t{1})});  // same y, new x: ok
  EXPECT_THROW(db_->insertRow("u", {Value("a"), Value(std::int64_t{1})}),
               util::StorageError);
}

class NullSemanticsTest : public ::testing::Test {
 protected:
  NullSemanticsTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, v REAL)");
    sql_.exec("INSERT INTO t (grp, v) VALUES "
              "('a', 1.0), ('a', NULL), ('b', 2.0), (NULL, 3.0), (NULL, NULL)");
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

TEST_F(NullSemanticsTest, AggregatesIgnoreNulls) {
  const ResultSet rs =
      sql_.exec("SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t");
  EXPECT_EQ(rs.rows[0][0].asInt(), 5);  // COUNT(*) counts rows
  EXPECT_EQ(rs.rows[0][1].asInt(), 3);  // COUNT(v) skips NULLs
  EXPECT_DOUBLE_EQ(rs.rows[0][2].asReal(), 6.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][3].asReal(), 2.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][4].asReal(), 1.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][5].asReal(), 3.0);
}

TEST_F(NullSemanticsTest, GroupByTreatsNullAsOneGroup) {
  const ResultSet rs =
      sql_.exec("SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(rs.rows.size(), 3u);
  // NULL sorts before text per the documented value ordering.
  EXPECT_TRUE(rs.rows[0][0].isNull());
  EXPECT_EQ(rs.rows[0][1].asInt(), 2);
  EXPECT_EQ(rs.rows[1][0].asText(), "a");
}

TEST_F(NullSemanticsTest, OrderByPlacesNullsFirst) {
  const ResultSet rs = sql_.exec("SELECT v FROM t ORDER BY v");
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_TRUE(rs.rows[0][0].isNull());
  EXPECT_TRUE(rs.rows[1][0].isNull());
  EXPECT_DOUBLE_EQ(rs.rows[2][0].asReal(), 1.0);
}

TEST_F(NullSemanticsTest, ComparisonsWithNullNeverMatch) {
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE grp = NULL").rows[0][0].asInt(), 0);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE v < 100").rows[0][0].asInt(), 3);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE NOT (v < 100)").rows[0][0].asInt(),
            2);  // NOT(unknown->false) = true for NULL rows
}

TEST_F(NullSemanticsTest, NullsAreIndexableAndScannable) {
  sql_.exec("CREATE INDEX t_by_grp ON t (grp)");
  // Indexed and scanned plans agree in the presence of NULL keys.
  sql_.setUseIndexes(true);
  const auto indexed = sql_.exec("SELECT COUNT(*) FROM t WHERE grp = 'a'");
  sql_.setUseIndexes(false);
  const auto scanned = sql_.exec("SELECT COUNT(*) FROM t WHERE grp = 'a'");
  EXPECT_EQ(indexed.rows[0][0].asInt(), scanned.rows[0][0].asInt());
  // IS NULL still finds the null-keyed rows.
  sql_.setUseIndexes(true);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE grp IS NULL").rows[0][0].asInt(), 2);
}

TEST_F(NullSemanticsTest, UniqueIndexTreatsNullsAsEqual) {
  // Documented deviation from mainstream SQL (which admits many NULLs in a
  // unique column): minidb's encoded keys make NULLs collide, which is the
  // stricter and simpler contract.
  sql_.exec("CREATE TABLE uq (x TEXT)");
  sql_.exec("CREATE UNIQUE INDEX uq_x ON uq (x)");
  sql_.exec("INSERT INTO uq VALUES (NULL)");
  EXPECT_THROW(sql_.exec("INSERT INTO uq VALUES (NULL)"), util::StorageError);
}

TEST_F(NullSemanticsTest, InListAndLikeWithNulls) {
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE grp IN ('a', 'b')")
                .rows[0][0].asInt(),
            3);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE grp LIKE '%'").rows[0][0].asInt(),
            3);  // NULL never LIKE-matches
}

TEST_F(NullSemanticsTest, UpdateToAndFromNull) {
  sql_.exec("UPDATE t SET v = NULL WHERE grp = 'b'");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE v IS NULL").rows[0][0].asInt(), 3);
  sql_.exec("UPDATE t SET v = 9.0 WHERE v IS NULL");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE v IS NULL").rows[0][0].asInt(), 0);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE v = 9.0").rows[0][0].asInt(), 3);
}

}  // namespace
}  // namespace perftrack::minidb::sql
