// Crash-matrix harness: prove FilePager's atomic commit under injected
// faults at *every* disk operation of a workload.
//
// The workload (DDL + ingest + index build + update/delete + VACUUM, all
// through the dbal Connection) is first run fault-free against a counting
// VFS to learn its N fault points and record the expected table contents
// after each commit. Then, for every k in 1..N, the workload is rerun from
// scratch with the k-th write/fsync/truncate/remove failing (simulated
// power loss — later operations never reach the disk), the store is
// reopened with a clean VFS, and the recovery invariants are asserted:
//
//   * the heap and every index pass verifyIntegrity();
//   * the contents equal the state after the last completed commit — the
//     transaction in flight at the crash is either fully present (the
//     crash hit after the commit point) or fully absent, never partial;
//   * the rollback journal is gone after the reopen;
//   * cached statements replan and return correct results after recovery.
//
// The matrix is parameterized over (durability mode, torn): the same
// workload and the same invariants run against the rollback journal and
// the write-ahead log, clean and with torn (partial-sector) writes at the
// fault point. WAL runs use a tiny autocheckpoint so fault points land
// inside checkpoints (WAL folding back into the db file) as well as inside
// commits.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dbal/connection.h"
#include "minidb/pager.h"
#include "minidb/vfs.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::minidb {
namespace {

using dbal::Connection;

// Expected table contents: (id, k, v) ordered by id.
using Snapshot = std::vector<std::tuple<std::int64_t, std::int64_t, std::string>>;

struct WorkloadTrace {
  std::vector<Snapshot> after_commit;  // state after commit i+1
  std::size_t commits_completed = 0;
};

Snapshot snapshotOf(const std::map<std::int64_t, std::pair<std::int64_t, std::string>>& m) {
  Snapshot s;
  for (const auto& [id, kv] : m) s.emplace_back(id, kv.first, kv.second);
  return s;
}

/// Runs the full workload. Updates `trace` as commits complete; an injected
/// fault propagates out with `trace` describing exactly how far it got.
void runWorkload(const std::string& path, Vfs* vfs, Durability durability,
                 WorkloadTrace& trace) {
  OpenOptions options;
  options.durability = durability;
  // Low threshold: several checkpoints fire inside the workload, so the
  // fault sweep hits WAL-fold points, not just commit points.
  options.wal_autocheckpoint = 4;
  options.vfs = vfs;
  auto conn = Connection::open(path, options);
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> model;

  const auto commit = [&] {
    conn->commit();
    ++trace.commits_completed;
    trace.after_commit.push_back(snapshotOf(model));
  };

  // 1: DDL — table plus an index, one transaction.
  conn->begin();
  conn->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)");
  conn->exec("CREATE INDEX t_by_k ON t (k)");
  commit();

  // 2: ingest.
  conn->begin();
  for (int i = 0; i < 25; ++i) {
    const auto rs = conn->execPrepared("INSERT INTO t (k, v) VALUES (?, ?)",
                                       {Value(i % 5), Value("v" + std::to_string(i))});
    model[rs.last_insert_id] = {i % 5, "v" + std::to_string(i)};
  }
  commit();

  // 3: update + delete.
  conn->begin();
  conn->exec("UPDATE t SET v = 'u' WHERE k = 1");
  for (auto& [id, kv] : model) {
    if (kv.first == 1) kv.second = "u";
  }
  conn->exec("DELETE FROM t WHERE k = 2");
  std::erase_if(model, [](const auto& e) { return e.second.first == 2; });
  commit();

  // 4: index build over existing rows.
  conn->begin();
  conn->exec("CREATE INDEX t_by_v ON t (v)");
  commit();

  // 5: more ingest through the now-doubly-indexed table.
  conn->begin();
  for (int i = 0; i < 10; ++i) {
    const auto rs = conn->execPrepared("INSERT INTO t (k, v) VALUES (?, ?)",
                                       {Value(7), Value("w" + std::to_string(i))});
    model[rs.last_insert_id] = {7, "w" + std::to_string(i)};
  }
  commit();

  // 6: VACUUM — rewrites every heap and index, then flushes. Logical
  // contents are unchanged, so no snapshot is recorded.
  conn->exec("VACUUM");

  // 7: final ingest after the vacuum.
  conn->begin();
  const auto rs = conn->execPrepared("INSERT INTO t (k, v) VALUES (?, ?)",
                                     {Value(9), Value("z")});
  model[rs.last_insert_id] = {9, "z"};
  commit();
}

/// Reads the current contents of `t` ordered by id; empty when the table
/// does not exist yet (crash before the DDL transaction committed).
Snapshot readState(Connection& conn) {
  Snapshot s;
  try {
    const auto rs = conn.exec("SELECT id, k, v FROM t ORDER BY id");
    for (const auto& row : rs.rows) {
      s.emplace_back(row[0].asInt(), row[1].asInt(), row[2].asText());
    }
  } catch (const util::PTError&) {
    // no such table: pre-schema state
  }
  return s;
}

using CrashMatrixParam = std::tuple<Durability, bool>;

class CrashMatrix : public ::testing::TestWithParam<CrashMatrixParam> {};

TEST_P(CrashMatrix, EveryFaultPointRecoversToACommittedState) {
  const auto [durability, torn] = GetParam();
  util::TempDir dir;

  // Fault-free run: learn the op count and the per-commit snapshots.
  FaultInjectingVfs counter(PosixVfs::instance());
  WorkloadTrace expected;
  runWorkload(dir.file("base.db").string(), &counter, durability, expected);
  const std::uint64_t fault_points = counter.mutatingOps();
  ASSERT_GT(fault_points, 20u) << "workload too small to be a meaningful matrix";
  ASSERT_EQ(expected.commits_completed, 6u);

  for (std::uint64_t k = 1; k <= fault_points; ++k) {
    SCOPED_TRACE("fault point " + std::to_string(k) + (torn ? " (torn)" : ""));
    const std::string path =
        dir.file("m" + std::to_string(torn) + "_" + std::to_string(k) + ".db").string();
    FaultInjectingVfs vfs(PosixVfs::instance());
    FaultPlan plan;
    plan.fail_at_op = k;
    plan.torn_write = torn;
    vfs.setPlan(plan);
    WorkloadTrace trace;
    bool crashed = false;
    try {
      runWorkload(path, &vfs, durability, trace);
    } catch (const InjectedFault&) {
      crashed = true;
    }
    // Late WAL fault points land in the close-time checkpoint, where the
    // pager destructor swallows the exception (a real close would just die
    // with the process). The fault still fired — the store on disk is
    // crashed either way.
    ASSERT_TRUE(crashed || vfs.crashed())
        << "fault point " << k << " was never reached";

    // Reopen with a clean VFS: hot-journal / stale-WAL recovery runs here.
    OpenOptions options;
    options.durability = durability;
    auto conn = Connection::open(path, options);

    // Both logs must be consumed by recovery, whichever way it went.
    EXPECT_FALSE(PosixVfs::instance().exists(FilePager::journalPathFor(path)));
    EXPECT_FALSE(PosixVfs::instance().exists(FilePager::walPathFor(path)));

    // Storage invariants: heap and every index agree.
    EXPECT_TRUE(conn->database().verifyIntegrity().empty());

    // Atomicity: the store holds the state after the last completed commit,
    // or — when the crash hit between the commit point (journal
    // invalidation) and the commit call returning — the in-flight
    // transaction in full. Never anything in between. (A crash inside
    // VACUUM may land on either side of its flush too; both sides hold the
    // same logical contents, so the same check covers it.)
    const Snapshot got = readState(*conn);
    const std::size_t done = trace.commits_completed;
    const Snapshot& committed =
        done == 0 ? Snapshot{} : expected.after_commit[done - 1];
    if (done < expected.after_commit.size() &&
        got == expected.after_commit[done]) {
      SUCCEED();  // in-flight transaction fully committed before the crash
    } else {
      EXPECT_EQ(got, committed);
    }

    // Plan cache after recovery: repeated statements hit the cache and keep
    // returning correct results against the recovered store.
    if (done >= 1) {
      const char* q = "SELECT COUNT(*) FROM t WHERE k = ?";
      const auto first = conn->queryInt(q, {Value(1)});
      const auto before = conn->statementCacheStats();
      EXPECT_EQ(conn->queryInt(q, {Value(1)}), first);
      EXPECT_EQ(conn->statementCacheStats().hits, before.hits + 1);
    }
  }
}

std::string crashMatrixName(const ::testing::TestParamInfo<CrashMatrixParam>& info) {
  const Durability durability = std::get<0>(info.param);
  const bool torn = std::get<1>(info.param);
  return std::string(durability == Durability::Wal ? "Wal" : "Journal") +
         (torn ? "TornWrites" : "CleanFaults");
}

INSTANTIATE_TEST_SUITE_P(
    CleanAndTorn, CrashMatrix,
    ::testing::Combine(::testing::Values(Durability::Full, Durability::Wal),
                       ::testing::Values(false, true)),
    crashMatrixName);

// --- direct journal-level tests ---------------------------------------------

TEST(DurablePager, CommitLeavesNoJournalBehind) {
  util::TempDir dir;
  const std::string path = dir.file("d.db").string();
  FilePager pager(path, Durability::Full);
  const PageId id = pager.allocate();
  std::memcpy(pager.pageForWrite(id), "durable", 7);
  pager.flush();
  EXPECT_FALSE(PosixVfs::instance().exists(FilePager::journalPathFor(path)));
  EXPECT_FALSE(pager.recoveryStats().recovered);
}

TEST(DurablePager, HotJournalRollsBackToLastCommit) {
  util::TempDir dir;
  const std::string path = dir.file("d.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  {
    FilePager pager(path, Durability::Full, &vfs);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "first", 5);
    pager.flush();  // committed state

    std::memcpy(pager.pageForWrite(id), "SECOND", 6);
    // Fail the db-page write of the next flush: the journal is durable,
    // the db is mid-overwrite.
    FaultPlan plan;
    plan.fail_at_op = vfs.mutatingOps() + 3;  // journal write, journal sync, db write
    vfs.setPlan(plan);
    EXPECT_THROW(pager.flush(), InjectedFault);
  }
  // Reopen: the hot journal restores "first".
  FilePager pager(path, Durability::Full);
  EXPECT_TRUE(pager.recoveryStats().recovered);
  EXPECT_GE(pager.recoveryStats().pages_restored, 1u);
  bool found = false;
  for (PageId id = 1; id < pager.pageCount(); ++id) {
    if (std::memcmp(pager.pageForRead(id), "first", 5) == 0) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(PosixVfs::instance().exists(FilePager::journalPathFor(path)));
}

TEST(DurablePager, TornJournalIsDiscardedAndDbUntouched) {
  util::TempDir dir;
  const std::string path = dir.file("d.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  {
    FilePager pager(path, Durability::Full, &vfs);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "first", 5);
    pager.flush();
    std::memcpy(pager.pageForWrite(id), "SECOND", 6);
    // Fail the journal write itself, torn: an incomplete journal hits disk
    // and the db is never touched.
    FaultPlan plan;
    plan.fail_at_op = vfs.mutatingOps() + 1;
    plan.torn_write = true;
    vfs.setPlan(plan);
    EXPECT_THROW(pager.flush(), InjectedFault);
  }
  EXPECT_TRUE(PosixVfs::instance().exists(FilePager::journalPathFor(path)));
  FilePager pager(path, Durability::Full);
  EXPECT_FALSE(pager.recoveryStats().recovered);
  EXPECT_TRUE(pager.recoveryStats().discarded_invalid_journal);
  bool found = false;
  for (PageId id = 1; id < pager.pageCount(); ++id) {
    if (std::memcmp(pager.pageForRead(id), "first", 5) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DurablePager, FailedFlushRetriesCleanly) {
  // An injected fault is also how a transient I/O error looks to the pager:
  // a later flush must start from the last committed on-disk state and
  // carry the full dirty set forward.
  util::TempDir dir;
  const std::string path = dir.file("d.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  FilePager pager(path, Durability::Full, &vfs);
  const PageId id = pager.allocate();
  std::memcpy(pager.pageForWrite(id), "first", 5);
  pager.flush();
  std::memcpy(pager.pageForWrite(id), "SECOND", 6);
  FaultPlan plan;
  plan.fail_at_op = vfs.mutatingOps() + 3;
  vfs.setPlan(plan);
  EXPECT_THROW(pager.flush(), InjectedFault);
  // "Transient" failure: the machine did not actually die. Clear the fault
  // and retry the flush on the same pager.
  vfs.reset();
  vfs.setPlan(FaultPlan{});
  pager.flush();
  FilePager check(path, Durability::Full);
  EXPECT_FALSE(check.recoveryStats().recovered);
  bool found = false;
  for (PageId p = 1; p < check.pageCount(); ++p) {
    if (std::memcmp(check.pageForRead(p), "SECOND", 6) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DurablePager, DurabilityNoneWritesNoJournal) {
  util::TempDir dir;
  const std::string path = dir.file("d.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  {
    FilePager pager(path, Durability::None, &vfs);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "fast", 4);
    pager.flush();
  }
  EXPECT_FALSE(PosixVfs::instance().exists(FilePager::journalPathFor(path)));
  // No sync, no truncate, no journal ops: just the page writes.
  FilePager check(path, Durability::None);
  bool found = false;
  for (PageId p = 1; p < check.pageCount(); ++p) {
    if (std::memcmp(check.pageForRead(p), "fast", 4) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DurablePager, CrashDuringFirstEverFlushRollsBackToEmpty) {
  util::TempDir dir;
  const std::string path = dir.file("d.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  {
    FilePager pager(path, Durability::Full, &vfs);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "never", 5);
    FaultPlan plan;
    plan.fail_at_op = 4;  // journal write, journal sync, db write x2 -> fail
    vfs.setPlan(plan);
    EXPECT_THROW(pager.flush(), InjectedFault);
  }
  // Recovery truncates the db file back to zero length; the store opens as
  // a fresh, empty database.
  FilePager pager(path, Durability::Full);
  EXPECT_TRUE(pager.recoveryStats().recovered ||
              pager.recoveryStats().discarded_invalid_journal);
  EXPECT_EQ(pager.pageCount(), 1u);
}

// --- direct WAL-level tests --------------------------------------------------

TEST(WalPager, CommitAppendsFramesAndCleanCloseFoldsThem) {
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  {
    FilePager pager(path, Durability::Wal, nullptr, /*wal_autocheckpoint=*/0);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "walled", 6);
    pager.flush();
    EXPECT_TRUE(PosixVfs::instance().exists(FilePager::walPathFor(path)));
    EXPECT_GT(pager.walFrameCount(), 0u);
    EXPECT_GT(pager.walSizeBytes(), sizeof(WalHeader));
  }
  // Clean close checkpoints and removes the log.
  EXPECT_FALSE(PosixVfs::instance().exists(FilePager::walPathFor(path)));
  FilePager check(path, Durability::Wal);
  EXPECT_FALSE(check.recoveryStats().wal_replayed);
  bool found = false;
  for (PageId id = 1; id < check.pageCount(); ++id) {
    if (std::memcmp(check.pageForRead(id), "walled", 6) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WalPager, StaleWalIsReplayedOnReopen) {
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  {
    FilePager pager(path, Durability::Wal, &vfs, 0);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "replayme", 8);
    pager.flush();  // committed: appended + fsynced
    // Kill every disk op from here on: the close-time checkpoint dies and
    // the WAL survives — exactly what a crashed process leaves behind.
    FaultPlan plan;
    plan.fail_at_op = vfs.mutatingOps() + 1;
    vfs.setPlan(plan);
  }
  ASSERT_TRUE(PosixVfs::instance().exists(FilePager::walPathFor(path)));
  FilePager pager(path, Durability::Wal);
  EXPECT_TRUE(pager.recoveryStats().wal_replayed);
  EXPECT_GE(pager.recoveryStats().wal_frames_applied, 1u);
  EXPECT_FALSE(PosixVfs::instance().exists(FilePager::walPathFor(path)));
  bool found = false;
  for (PageId id = 1; id < pager.pageCount(); ++id) {
    if (std::memcmp(pager.pageForRead(id), "replayme", 8) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WalPager, StaleWalIsReplayedEvenWhenReopenedInJournalMode) {
  // Recovery is unconditional: a store carrying committed WAL frames must
  // surface them no matter which durability mode the next opener uses.
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  {
    FilePager pager(path, Durability::Wal, &vfs, 0);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "crossmode", 9);
    pager.flush();
    FaultPlan plan;
    plan.fail_at_op = vfs.mutatingOps() + 1;
    vfs.setPlan(plan);
  }
  FilePager pager(path, Durability::Full);
  EXPECT_TRUE(pager.recoveryStats().wal_replayed);
  EXPECT_FALSE(PosixVfs::instance().exists(FilePager::walPathFor(path)));
  bool found = false;
  for (PageId id = 1; id < pager.pageCount(); ++id) {
    if (std::memcmp(pager.pageForRead(id), "crossmode", 9) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WalPager, TornTailRecoversToCommittedPrefix) {
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  FaultInjectingVfs vfs(PosixVfs::instance());
  PageId id = 0;
  {
    FilePager pager(path, Durability::Wal, &vfs, 0);
    id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "first", 5);
    pager.flush();  // commit A
    std::memcpy(pager.pageForWrite(id), "SECOND", 6);
    FaultPlan plan;
    plan.fail_at_op = vfs.mutatingOps() + 1;  // commit B's first frame write
    plan.torn_write = true;                   // half a sector reaches disk
    vfs.setPlan(plan);
    EXPECT_THROW(pager.flush(), InjectedFault);
  }
  FilePager pager(path, Durability::Wal);
  EXPECT_TRUE(pager.recoveryStats().wal_replayed);
  EXPECT_TRUE(pager.recoveryStats().discarded_invalid_wal);
  EXPECT_EQ(std::memcmp(pager.pageForRead(id), "first", 5), 0);
}

TEST(WalPager, ExplicitCheckpointFoldsAndTruncates) {
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  {
    FilePager pager(path, Durability::Wal, nullptr, 0);
    const PageId id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "one", 3);
    pager.flush();
    std::memcpy(pager.pageForWrite(id), "two", 3);
    pager.flush();
    EXPECT_GT(pager.walFrameCount(), 0u);
    pager.checkpoint();
    EXPECT_EQ(pager.walFrameCount(), 0u);
    EXPECT_EQ(pager.walSizeBytes(), 0u);
    EXPECT_EQ(std::memcmp(pager.pageForRead(id), "two", 3), 0);
  }
  FilePager check(path, Durability::Wal);
  EXPECT_FALSE(check.recoveryStats().wal_replayed);
  bool found = false;
  for (PageId p = 1; p < check.pageCount(); ++p) {
    if (std::memcmp(check.pageForRead(p), "two", 3) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WalPager, AutocheckpointBoundsTheLog) {
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  FilePager pager(path, Durability::Wal, nullptr, /*wal_autocheckpoint=*/2);
  const PageId id = pager.allocate();
  for (int i = 0; i < 8; ++i) {
    std::memcpy(pager.pageForWrite(id), &i, sizeof(i));
    pager.flush();
    // The threshold check runs at the start of every commit, so the log can
    // exceed the threshold by at most one commit's frames.
    EXPECT_LE(pager.walFrameCount(), 2u + 2u);
  }
}

TEST(WalPager, PinnedSnapshotDefersAutocheckpoint) {
  util::TempDir dir;
  const std::string path = dir.file("w.db").string();
  FilePager pager(path, Durability::Wal, nullptr, /*wal_autocheckpoint=*/1);
  const PageId id = pager.allocate();
  std::memcpy(pager.pageForWrite(id), "base", 4);
  pager.flush();

  auto snap = pager.beginSnapshot();
  for (int i = 0; i < 4; ++i) {
    std::memcpy(pager.pageForWrite(id), &i, sizeof(i));
    pager.flush();
  }
  // The checkpoint would fold versions the snapshot still needs; it must
  // wait until the pin is gone.
  EXPECT_GE(pager.walFrameCount(), 3u);
  {
    Pager::SnapshotScope scope(snap);
    EXPECT_EQ(std::memcmp(pager.pageForRead(id), "base", 4), 0);
  }
  snap.release();
  std::memcpy(pager.pageForWrite(id), "post", 4);
  pager.flush();  // threshold long exceeded: folds now
  EXPECT_LE(pager.walFrameCount(), 2u);
}

}  // namespace
}  // namespace perftrack::minidb
