// Cursor lifetime semantics: streaming SELECT cursors from Engine /
// PreparedStatement, the storage-level pull cursors they are built on, and
// the open-cursor guards that keep DDL/VACUUM/DML from invalidating a scan
// in progress.
#include <gtest/gtest.h>

#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

using util::SqlError;
using util::StorageError;

class CursorTest : public ::testing::Test {
 protected:
  CursorTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, machine TEXT, secs REAL)");
    sql_.exec("INSERT INTO runs (machine, secs) VALUES "
              "('frost', 10.0), ('mcr', 5.0), ('frost', 12.0), ('bgl', 7.0)");
    sql_.exec("CREATE INDEX runs_by_machine ON runs (machine)");
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

// --- basic streaming ---------------------------------------------------------

TEST_F(CursorTest, StreamsRowsInOrderAndAutoCloses) {
  Cursor cur = sql_.openCursor("SELECT id, machine FROM runs ORDER BY id");
  ASSERT_EQ(cur.columns().size(), 2u);
  EXPECT_EQ(cur.columns()[0], "id");
  EXPECT_TRUE(cur.isOpen());
  Row row;
  std::vector<std::int64_t> ids;
  while (cur.next(row)) {
    ASSERT_EQ(row.size(), 2u);
    ids.push_back(row[0].asInt());
  }
  EXPECT_EQ(ids, (std::vector<std::int64_t>{1, 2, 3, 4}));
  // Exhaustion auto-closes: the pin is gone and next() keeps returning false.
  EXPECT_FALSE(cur.isOpen());
  EXPECT_EQ(db_->openCursorCount(), 0u);
  EXPECT_FALSE(cur.next(row));
}

TEST_F(CursorTest, CursorAgreesWithExec) {
  const char* kSql =
      "SELECT machine, COUNT(*), SUM(secs) FROM runs "
      "GROUP BY machine HAVING COUNT(*) >= 1 ORDER BY machine";
  const ResultSet rs = sql_.exec(kSql);
  Cursor cur = sql_.openCursor(kSql);
  EXPECT_EQ(cur.columns(), rs.columns);
  Row row;
  std::size_t i = 0;
  while (cur.next(row)) {
    ASSERT_LT(i, rs.rows.size());
    ASSERT_EQ(row.size(), rs.rows[i].size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], rs.rows[i][c]) << "row " << i << " col " << c;
    }
    ++i;
  }
  EXPECT_EQ(i, rs.rows.size());
}

TEST_F(CursorTest, OpenCursorRejectsNonSelectAndUnboundParams) {
  EXPECT_THROW(sql_.openCursor("INSERT INTO runs (machine, secs) VALUES ('x', 1)"),
               SqlError);
  EXPECT_THROW(sql_.openCursor("SELECT * FROM runs WHERE machine = ?"), SqlError);
  PreparedStatement stmt = sql_.prepare("SELECT * FROM runs WHERE machine = ?");
  EXPECT_THROW(stmt.openCursor(), SqlError);  // param never bound
  stmt.bind(1, Value("frost"));
  Cursor cur = stmt.openCursor();
  Row row;
  std::size_t n = 0;
  while (cur.next(row)) ++n;
  EXPECT_EQ(n, 2u);
}

// --- DDL/VACUUM/DML guards ---------------------------------------------------

TEST_F(CursorTest, DdlWhileCursorOpenThrowsCleanly) {
  Cursor cur = sql_.openCursor("SELECT id FROM runs");
  Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_THROW(sql_.exec("CREATE INDEX runs_by_secs ON runs (secs)"), StorageError);
  EXPECT_THROW(sql_.exec("DROP INDEX runs_by_machine"), StorageError);
  EXPECT_THROW(sql_.exec("CREATE TABLE t2 (id INTEGER PRIMARY KEY)"), StorageError);
  EXPECT_THROW(sql_.exec("DROP TABLE runs"), StorageError);
  // The scan is undisturbed by the failed DDL and finishes normally.
  std::size_t rest = 0;
  while (cur.next(row)) ++rest;
  EXPECT_EQ(rest, 3u);
  // With the cursor closed, the same DDL goes through.
  sql_.exec("CREATE INDEX runs_by_secs ON runs (secs)");
}

TEST_F(CursorTest, VacuumAndDmlWhileCursorOpenThrowCleanly) {
  Cursor cur = sql_.openCursor("SELECT id FROM runs");
  Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_THROW(sql_.exec("VACUUM"), StorageError);
  EXPECT_THROW(sql_.exec("INSERT INTO runs (machine, secs) VALUES ('x', 1)"),
               StorageError);
  EXPECT_THROW(sql_.exec("UPDATE runs SET secs = 0"), StorageError);
  EXPECT_THROW(sql_.exec("DELETE FROM runs"), StorageError);
  cur.close();
  sql_.exec("VACUUM");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs").rows[0][0].asInt(), 4);
}

TEST_F(CursorTest, EarlyCloseReleasesPinAndIsIdempotent) {
  Cursor cur = sql_.openCursor("SELECT id FROM runs");
  Row row;
  ASSERT_TRUE(cur.next(row));
  // The cursor's own pin plus the storage-level scan cursor's pin.
  EXPECT_GE(db_->openCursorCount(), 1u);
  cur.close();
  EXPECT_FALSE(cur.isOpen());
  EXPECT_EQ(db_->openCursorCount(), 0u);
  EXPECT_FALSE(cur.next(row));
  cur.close();  // idempotent
  sql_.exec("DROP TABLE runs");
}

TEST_F(CursorTest, DestructorReleasesPin) {
  {
    Cursor cur = sql_.openCursor("SELECT id FROM runs");
    Row row;
    ASSERT_TRUE(cur.next(row));
    EXPECT_GE(db_->openCursorCount(), 1u);
  }
  EXPECT_EQ(db_->openCursorCount(), 0u);
}

// --- interleaving ------------------------------------------------------------

TEST_F(CursorTest, TwoInterleavedCursorsProduceIndependentStreams) {
  Cursor asc = sql_.openCursor("SELECT id FROM runs ORDER BY id");
  Cursor desc = sql_.openCursor("SELECT id FROM runs ORDER BY id DESC");
  EXPECT_EQ(db_->openCursorCount(), 2u);
  Row a, d;
  std::vector<std::int64_t> got_asc, got_desc;
  // Strict lock-step interleave.
  while (true) {
    const bool more_a = asc.next(a);
    const bool more_d = desc.next(d);
    if (more_a) got_asc.push_back(a[0].asInt());
    if (more_d) got_desc.push_back(d[0].asInt());
    if (!more_a && !more_d) break;
  }
  EXPECT_EQ(got_asc, (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(got_desc, (std::vector<std::int64_t>{4, 3, 2, 1}));
  EXPECT_EQ(db_->openCursorCount(), 0u);
}

TEST_F(CursorTest, InnerCursorWhileOuterScansSameTable) {
  // The nested pattern the exporter uses: an index probe per outer row.
  PreparedStatement inner = sql_.prepare("SELECT secs FROM runs WHERE machine = ?");
  Cursor outer = sql_.openCursor("SELECT machine FROM runs ORDER BY id");
  Row row;
  std::size_t pairs = 0;
  while (outer.next(row)) {
    inner.bind(1, row[0]);
    Cursor probe = inner.openCursor();
    Row inner_row;
    while (probe.next(inner_row)) ++pairs;
  }
  // frost matches 2 per frost run (x2) + mcr 1 + bgl 1.
  EXPECT_EQ(pairs, 6u);
}

TEST_F(CursorTest, OnePreparedStatementOneCursorAtATime) {
  PreparedStatement stmt = sql_.prepare("SELECT id FROM runs");
  Cursor first = stmt.openCursor();
  EXPECT_TRUE(stmt.hasOpenCursor());
  // Bindings live in the shared statement AST, so a second simultaneous
  // cursor would corrupt the first scan; it is refused instead.
  EXPECT_THROW(stmt.openCursor(), SqlError);
  first.close();
  EXPECT_FALSE(stmt.hasOpenCursor());
  Cursor second = stmt.openCursor();
  Row row;
  std::size_t n = 0;
  while (second.next(row)) ++n;
  EXPECT_EQ(n, 4u);
}

TEST_F(CursorTest, CursorOutlivesItsPreparedStatement) {
  Cursor cur = [&] {
    PreparedStatement stmt = sql_.prepare("SELECT id FROM runs ORDER BY id");
    return stmt.openCursor();
  }();  // stmt destroyed here; the cursor shares the statement and plan
  Row row;
  std::vector<std::int64_t> ids;
  while (cur.next(row)) ids.push_back(row[0].asInt());
  EXPECT_EQ(ids, (std::vector<std::int64_t>{1, 2, 3, 4}));
}

// --- EXPLAIN cursors ---------------------------------------------------------

TEST_F(CursorTest, ExplainCursorHoldsNoPin) {
  Cursor cur = sql_.openCursor("EXPLAIN SELECT * FROM runs WHERE machine = 'x'");
  EXPECT_EQ(db_->openCursorCount(), 0u);  // plan text only, no storage scan
  // DDL is allowed while an EXPLAIN cursor is open.
  sql_.exec("CREATE TABLE side (id INTEGER PRIMARY KEY)");
  Row row;
  std::size_t lines = 0;
  while (cur.next(row)) ++lines;
  EXPECT_GT(lines, 0u);
}

// --- storage-level cursors ---------------------------------------------------

TEST_F(CursorTest, TableCursorStreamsHeapRecords) {
  auto cur = db_->openCursor("runs");
  EXPECT_EQ(db_->openCursorCount(), 1u);
  RecordId rid;
  Row row;
  std::size_t n = 0;
  while (cur.next(rid, row)) ++n;
  EXPECT_EQ(n, 4u);
  EXPECT_FALSE(cur.isOpen());
  EXPECT_EQ(db_->openCursorCount(), 0u);
}

TEST_F(CursorTest, IndexCursorEqualProbeStreamsMatches) {
  const auto* index = db_->catalog().findIndex("runs_by_machine");
  ASSERT_NE(index, nullptr);
  auto cur = db_->openIndexEqual(*index, {Value("frost")});
  RecordId rid;
  Row row;
  std::size_t n = 0;
  while (cur.next(rid, row)) {
    EXPECT_EQ(row[1].asText(), "frost");
    ++n;
  }
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(db_->openCursorCount(), 0u);
}

}  // namespace
}  // namespace perftrack::minidb::sql
