#include "minidb/database.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::minidb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(Database::openMemory()) {
    db_->createTable("users",
                     {{"id", ColumnType::Integer},
                      {"name", ColumnType::Text},
                      {"score", ColumnType::Real}},
                     /*primary_key=*/0);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, InsertAutoAssignsPrimaryKey) {
  const auto id1 = db_->insertRow("users", {Value::null(), Value("ada"), Value(1.0)});
  const auto id2 = db_->insertRow("users", {Value::null(), Value("bob"), Value(2.0)});
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(id2, 2);
}

TEST_F(DatabaseTest, ExplicitPrimaryKeyRespected) {
  const auto id = db_->insertRow("users", {Value(100), Value("carol"), Value(3.0)});
  EXPECT_EQ(id, 100);
  // Auto-assignment continues above the explicit value.
  const auto next = db_->insertRow("users", {Value::null(), Value("dan"), Value(4.0)});
  EXPECT_EQ(next, 101);
}

TEST_F(DatabaseTest, DuplicatePrimaryKeyRejected) {
  db_->insertRow("users", {Value(1), Value("ada"), Value(1.0)});
  EXPECT_THROW(db_->insertRow("users", {Value(1), Value("imposter"), Value(0.0)}),
               util::StorageError);
}

TEST_F(DatabaseTest, WrongColumnCountRejected) {
  EXPECT_THROW(db_->insertRow("users", {Value(1), Value("ada")}), util::StorageError);
}

TEST_F(DatabaseTest, UnknownTableThrows) {
  EXPECT_THROW(db_->insertRow("nope", {Value(1)}), util::StorageError);
  EXPECT_THROW(db_->dropTable("nope"), util::StorageError);
}

TEST_F(DatabaseTest, ScanVisitsAllRows) {
  for (int i = 0; i < 10; ++i) {
    db_->insertRow("users", {Value::null(), Value("u" + std::to_string(i)), Value(0.5 * i)});
  }
  int count = 0;
  db_->scan("users", [&](RecordId, const Row& row) {
    EXPECT_EQ(row.size(), 3u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 10);
}

TEST_F(DatabaseTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    db_->insertRow("users", {Value::null(), Value("u"), Value(0.0)});
  }
  int count = 0;
  db_->scan("users", [&](RecordId, const Row&) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST_F(DatabaseTest, SecondaryIndexEqualScan) {
  db_->createIndex("users_by_name", "users", {"name"});
  for (int i = 0; i < 30; ++i) {
    db_->insertRow("users",
                   {Value::null(), Value("name" + std::to_string(i % 3)), Value(1.0 * i)});
  }
  const IndexDef* index = db_->catalog().findIndex("users_by_name");
  ASSERT_NE(index, nullptr);
  int hits = 0;
  db_->indexScanEqual(*index, {Value("name1")}, [&](RecordId, const Row& row) {
    EXPECT_EQ(row.at(1).asText(), "name1");
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 10);
}

TEST_F(DatabaseTest, IndexBackfillCoversExistingRows) {
  for (int i = 0; i < 20; ++i) {
    db_->insertRow("users", {Value::null(), Value("pre" + std::to_string(i % 2)), Value(0.0)});
  }
  db_->createIndex("late_index", "users", {"name"});
  const IndexDef* index = db_->catalog().findIndex("late_index");
  int hits = 0;
  db_->indexScanEqual(*index, {Value("pre0")}, [&](RecordId, const Row&) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 10);
}

TEST_F(DatabaseTest, UniqueIndexRejectsDuplicates) {
  db_->createIndex("uniq_name", "users", {"name"}, /*unique=*/true);
  db_->insertRow("users", {Value::null(), Value("only"), Value(1.0)});
  EXPECT_THROW(db_->insertRow("users", {Value::null(), Value("only"), Value(2.0)}),
               util::StorageError);
}

TEST_F(DatabaseTest, UniqueBackfillDetectsExistingDuplicates) {
  db_->insertRow("users", {Value::null(), Value("dup"), Value(1.0)});
  db_->insertRow("users", {Value::null(), Value("dup"), Value(2.0)});
  EXPECT_THROW(db_->createIndex("uniq_fail", "users", {"name"}, true), util::StorageError);
  // Failed creation must not leave the index behind.
  EXPECT_EQ(db_->catalog().findIndex("uniq_fail"), nullptr);
}

TEST_F(DatabaseTest, IndexRangeScan) {
  db_->createIndex("users_by_score", "users", {"score"});
  for (int i = 0; i < 20; ++i) {
    db_->insertRow("users", {Value::null(), Value("u"), Value(static_cast<double>(i))});
  }
  const IndexDef* index = db_->catalog().findIndex("users_by_score");
  std::vector<double> seen;
  db_->indexScanRange(*index, Value(5.0), true, Value(8.0), false,
                      [&](RecordId, const Row& row) {
                        seen.push_back(row.at(2).asReal());
                        return true;
                      });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 5.0);
  EXPECT_DOUBLE_EQ(seen[2], 7.0);
}

TEST_F(DatabaseTest, EraseRowMaintainsIndexes) {
  db_->createIndex("users_by_name", "users", {"name"});
  const auto id = db_->insertRow("users", {Value::null(), Value("victim"), Value(0.0)});
  (void)id;
  RecordId rid;
  db_->scan("users", [&](RecordId r, const Row&) {
    rid = r;
    return false;
  });
  EXPECT_TRUE(db_->eraseRow("users", rid));
  const IndexDef* index = db_->catalog().findIndex("users_by_name");
  int hits = 0;
  db_->indexScanEqual(*index, {Value("victim")}, [&](RecordId, const Row&) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 0);
  EXPECT_FALSE(db_->eraseRow("users", rid));
}

TEST_F(DatabaseTest, UpdateRowMaintainsIndexes) {
  db_->createIndex("users_by_name", "users", {"name"});
  db_->insertRow("users", {Value::null(), Value("before"), Value(0.0)});
  RecordId rid;
  Row row;
  db_->scan("users", [&](RecordId r, const Row& rw) {
    rid = r;
    row = rw;
    return false;
  });
  row[1] = Value("after");
  db_->updateRow("users", rid, row);
  const IndexDef* index = db_->catalog().findIndex("users_by_name");
  int before_hits = 0;
  int after_hits = 0;
  db_->indexScanEqual(*index, {Value("before")}, [&](RecordId, const Row&) {
    ++before_hits;
    return true;
  });
  db_->indexScanEqual(*index, {Value("after")}, [&](RecordId, const Row&) {
    ++after_hits;
    return true;
  });
  EXPECT_EQ(before_hits, 0);
  EXPECT_EQ(after_hits, 1);
}

TEST_F(DatabaseTest, DropTableRemovesIndexesToo) {
  db_->createIndex("users_by_name", "users", {"name"});
  db_->dropTable("users");
  EXPECT_EQ(db_->catalog().findTable("users"), nullptr);
  EXPECT_EQ(db_->catalog().findIndex("users_by_name"), nullptr);
}

TEST_F(DatabaseTest, NonIntegerPrimaryKeyRejected) {
  EXPECT_THROW(
      db_->createTable("bad", {{"name", ColumnType::Text}}, /*primary_key=*/0),
      util::StorageError);
}

TEST(DatabasePersistence, SchemaAndRowsSurviveReopen) {
  util::TempDir dir;
  const std::string path = dir.file("persist.db").string();
  {
    auto db = Database::open(path);
    db->createTable("t", {{"id", ColumnType::Integer}, {"v", ColumnType::Text}}, 0);
    db->createIndex("t_by_v", "t", {"v"});
    for (int i = 0; i < 100; ++i) {
      db->insertRow("t", {Value::null(), Value("val" + std::to_string(i % 5))});
    }
    db->flush();
  }
  {
    auto db = Database::open(path);
    const TableDef* t = db->catalog().findTable("t");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->columns.size(), 2u);
    const IndexDef* idx = db->catalog().findIndex("t_by_v");
    ASSERT_NE(idx, nullptr);
    int hits = 0;
    db->indexScanEqual(*idx, {Value("val3")}, [&](RecordId, const Row&) {
      ++hits;
      return true;
    });
    EXPECT_EQ(hits, 20);
    // Auto-increment resumes past persisted ids.
    const auto id = db->insertRow("t", {Value::null(), Value("new")});
    EXPECT_EQ(id, 101);
  }
}

}  // namespace
}  // namespace perftrack::minidb
