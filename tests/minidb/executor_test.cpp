#include "minidb/sql/executor.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

// EXPLAIN returns the operator tree, one row per operator; join the lines so
// assertions can search the whole plan.
std::string planText(const ResultSet& rs) {
  std::string text;
  for (const auto& row : rs.rows) {
    text += row[0].asText();
    text += '\n';
  }
  return text;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, app TEXT, nprocs INTEGER, "
              "seconds REAL)");
    sql_.exec("INSERT INTO runs (app, nprocs, seconds) VALUES "
              "('irs', 8, 120.5), ('irs', 16, 65.2), ('irs', 32, 40.1), "
              "('smg', 8, 300.0), ('smg', 16, 180.0), ('smg', 32, 110.0)");
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

TEST_F(ExecutorTest, SelectStarReturnsAllRowsAndColumns) {
  const ResultSet rs = sql_.exec("SELECT * FROM runs");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "app", "nprocs", "seconds"}));
  EXPECT_EQ(rs.rows.size(), 6u);
}

TEST_F(ExecutorTest, WhereEquality) {
  const ResultSet rs = sql_.exec("SELECT nprocs FROM runs WHERE app = 'irs'");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(ExecutorTest, WhereConjunction) {
  const ResultSet rs =
      sql_.exec("SELECT seconds FROM runs WHERE app = 'smg' AND nprocs >= 16");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, WhereDisjunctionAndComparisons) {
  const ResultSet rs = sql_.exec("SELECT id FROM runs WHERE nprocs < 10 OR seconds > 150");
  EXPECT_EQ(rs.rows.size(), 3u);  // irs@8, smg@8 (300s), smg@16 (180s)
}

TEST_F(ExecutorTest, OrderByDescending) {
  const ResultSet rs = sql_.exec("SELECT seconds FROM runs ORDER BY seconds DESC");
  ASSERT_EQ(rs.rows.size(), 6u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].asReal(), 300.0);
  EXPECT_DOUBLE_EQ(rs.rows[5][0].asReal(), 40.1);
}

TEST_F(ExecutorTest, OrderByMultipleKeys) {
  const ResultSet rs = sql_.exec("SELECT app, nprocs FROM runs ORDER BY app, nprocs DESC");
  ASSERT_EQ(rs.rows.size(), 6u);
  EXPECT_EQ(rs.rows[0][0].asText(), "irs");
  EXPECT_EQ(rs.rows[0][1].asInt(), 32);
  EXPECT_EQ(rs.rows[3][0].asText(), "smg");
  EXPECT_EQ(rs.rows[3][1].asInt(), 32);
}

TEST_F(ExecutorTest, LimitAndOffset) {
  const ResultSet rs =
      sql_.exec("SELECT id FROM runs ORDER BY id LIMIT 2 OFFSET 3");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 4);
  EXPECT_EQ(rs.rows[1][0].asInt(), 5);
}

TEST_F(ExecutorTest, AggregatesWholeTable) {
  const ResultSet rs = sql_.exec(
      "SELECT COUNT(*), SUM(nprocs), MIN(seconds), MAX(seconds), AVG(nprocs) FROM runs");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 6);
  EXPECT_EQ(rs.rows[0][1].asInt(), 112);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].asReal(), 40.1);
  EXPECT_DOUBLE_EQ(rs.rows[0][3].asReal(), 300.0);
  EXPECT_NEAR(rs.rows[0][4].asReal(), 112.0 / 6.0, 1e-9);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  const ResultSet rs = sql_.exec("SELECT COUNT(*), SUM(nprocs) FROM runs WHERE app = 'nope'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].isNull());
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  const ResultSet rs = sql_.exec(
      "SELECT app, COUNT(*) AS n, MIN(seconds) FROM runs GROUP BY app "
      "HAVING MIN(seconds) < 100 ORDER BY app");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "irs");
  EXPECT_EQ(rs.rows[0][1].asInt(), 3);
}

TEST_F(ExecutorTest, GroupByNprocsAcrossApps) {
  const ResultSet rs = sql_.exec(
      "SELECT nprocs, COUNT(*), AVG(seconds) FROM runs GROUP BY nprocs ORDER BY nprocs");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 8);
  EXPECT_EQ(rs.rows[0][1].asInt(), 2);
  EXPECT_NEAR(rs.rows[0][2].asReal(), (120.5 + 300.0) / 2, 1e-9);
}

TEST_F(ExecutorTest, CountDistinct) {
  const ResultSet rs = sql_.exec("SELECT COUNT(DISTINCT app) FROM runs");
  EXPECT_EQ(rs.rows[0][0].asInt(), 2);
}

TEST_F(ExecutorTest, SelectDistinct) {
  const ResultSet rs = sql_.exec("SELECT DISTINCT app FROM runs ORDER BY app");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].asText(), "irs");
  EXPECT_EQ(rs.rows[1][0].asText(), "smg");
}

TEST_F(ExecutorTest, JoinTwoTables) {
  sql_.exec("CREATE TABLE apps (name TEXT, language TEXT)");
  sql_.exec("INSERT INTO apps VALUES ('irs', 'C'), ('smg', 'C'), ('umt', 'Fortran')");
  const ResultSet rs = sql_.exec(
      "SELECT r.id, a.language FROM runs r JOIN apps a ON r.app = a.name "
      "WHERE r.nprocs = 8 ORDER BY r.id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].asText(), "C");
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  sql_.exec("CREATE TABLE apps (name TEXT, team INTEGER)");
  sql_.exec("CREATE TABLE teams (id INTEGER PRIMARY KEY, lab TEXT)");
  sql_.exec("INSERT INTO teams (lab) VALUES ('LLNL'), ('LANL')");
  sql_.exec("INSERT INTO apps VALUES ('irs', 1), ('smg', 2)");
  const ResultSet rs = sql_.exec(
      "SELECT t.lab, COUNT(*) FROM runs r JOIN apps a ON r.app = a.name "
      "JOIN teams t ON a.team = t.id GROUP BY t.lab ORDER BY t.lab");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].asText(), "LANL");
  EXPECT_EQ(rs.rows[0][1].asInt(), 3);
}

TEST_F(ExecutorTest, LikePatterns) {
  const ResultSet rs = sql_.exec("SELECT DISTINCT app FROM runs WHERE app LIKE 'i%'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "irs");
  const ResultSet rs2 = sql_.exec("SELECT COUNT(*) FROM runs WHERE app LIKE '_rs'");
  EXPECT_EQ(rs2.rows[0][0].asInt(), 3);
  const ResultSet rs3 = sql_.exec("SELECT COUNT(*) FROM runs WHERE app NOT LIKE 'i%'");
  EXPECT_EQ(rs3.rows[0][0].asInt(), 3);
}

TEST_F(ExecutorTest, InList) {
  const ResultSet rs = sql_.exec("SELECT COUNT(*) FROM runs WHERE nprocs IN (8, 32)");
  EXPECT_EQ(rs.rows[0][0].asInt(), 4);
}

TEST_F(ExecutorTest, BetweenFilter) {
  const ResultSet rs = sql_.exec("SELECT COUNT(*) FROM runs WHERE seconds BETWEEN 60 AND 200");
  EXPECT_EQ(rs.rows[0][0].asInt(), 4);  // 120.5, 65.2, 180.0, 110.0
}

TEST_F(ExecutorTest, IsNullHandling) {
  sql_.exec("INSERT INTO runs (app, nprocs, seconds) VALUES ('nul', NULL, NULL)");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE nprocs IS NULL").rows[0][0].asInt(), 1);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE nprocs IS NOT NULL").rows[0][0].asInt(), 6);
  // Comparisons with NULL are false, so the row disappears from both sides.
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE nprocs = 0 OR nprocs <> 0")
                .rows[0][0].asInt(),
            6);
}

TEST_F(ExecutorTest, ArithmeticInProjection) {
  const ResultSet rs =
      sql_.exec("SELECT nprocs * 2, seconds / 2, nprocs + 1 - 1 FROM runs WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0].asInt(), 16);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].asReal(), 60.25);
  EXPECT_EQ(rs.rows[0][2].asInt(), 8);
}

TEST_F(ExecutorTest, DivisionByZeroYieldsNull) {
  const ResultSet rs = sql_.exec("SELECT 1 / 0, 1.0 / 0");
  EXPECT_TRUE(rs.rows[0][0].isNull());
  EXPECT_TRUE(rs.rows[0][1].isNull());
}

TEST_F(ExecutorTest, UpdateChangesMatchingRows) {
  const ResultSet rs = sql_.exec("UPDATE runs SET seconds = seconds + 1 WHERE app = 'irs'");
  EXPECT_EQ(rs.rows_affected, 3);
  const ResultSet check = sql_.exec("SELECT seconds FROM runs WHERE id = 1");
  EXPECT_DOUBLE_EQ(check.rows[0][0].asReal(), 121.5);
}

TEST_F(ExecutorTest, DeleteRemovesMatchingRows) {
  const ResultSet rs = sql_.exec("DELETE FROM runs WHERE nprocs = 8");
  EXPECT_EQ(rs.rows_affected, 2);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs").rows[0][0].asInt(), 4);
}

TEST_F(ExecutorTest, InsertReportsLastInsertId) {
  const ResultSet rs = sql_.exec("INSERT INTO runs (app, nprocs, seconds) VALUES ('x', 1, 1.0)");
  EXPECT_EQ(rs.rows_affected, 1);
  EXPECT_EQ(rs.last_insert_id, 7);
}

TEST_F(ExecutorTest, IndexedLookupMatchesScanResults) {
  sql_.exec("CREATE INDEX runs_by_app ON runs (app)");
  const ResultSet with_index = sql_.exec("SELECT id FROM runs WHERE app = 'smg' ORDER BY id");
  sql_.setUseIndexes(false);
  const ResultSet without = sql_.exec("SELECT id FROM runs WHERE app = 'smg' ORDER BY id");
  ASSERT_EQ(with_index.rows.size(), without.rows.size());
  for (std::size_t i = 0; i < with_index.rows.size(); ++i) {
    EXPECT_EQ(with_index.rows[i][0].asInt(), without.rows[i][0].asInt());
  }
}

TEST_F(ExecutorTest, ExplainShowsIndexChoice) {
  sql_.exec("CREATE INDEX runs_by_app ON runs (app)");
  const ResultSet plan = sql_.exec("EXPLAIN SELECT * FROM runs WHERE app = 'irs'");
  const std::string text = planText(plan);
  EXPECT_NE(text.find("USING INDEX runs_by_app"), std::string::npos) << text;
  EXPECT_NE(text.find("PROJECT"), std::string::npos) << text;
  const ResultSet plan2 = sql_.exec("EXPLAIN SELECT * FROM runs WHERE seconds = 1.0");
  EXPECT_NE(planText(plan2).find("SCAN"), std::string::npos);
}

TEST_F(ExecutorTest, ExplainShowsRangeScan) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  const ResultSet plan = sql_.exec("EXPLAIN SELECT * FROM runs WHERE nprocs > 8");
  EXPECT_NE(planText(plan).find("range"), std::string::npos);
}

TEST_F(ExecutorTest, PrimaryKeyLookupUsesIndex) {
  const ResultSet plan = sql_.exec("EXPLAIN SELECT * FROM runs WHERE id = 3");
  EXPECT_NE(planText(plan).find("USING INDEX runs__pk"), std::string::npos);
  const ResultSet rs = sql_.exec("SELECT app FROM runs WHERE id = 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "irs");
}

TEST_F(ExecutorTest, JoinUsesIndexOnInnerTable) {
  sql_.exec("CREATE TABLE apps (id INTEGER PRIMARY KEY, name TEXT)");
  sql_.exec("CREATE INDEX apps_by_name ON apps (name)");
  sql_.exec("INSERT INTO apps (name) VALUES ('irs'), ('smg')");
  const ResultSet plan =
      sql_.exec("EXPLAIN SELECT * FROM runs r JOIN apps a ON a.name = r.app");
  const std::string text = planText(plan);
  EXPECT_NE(text.find("NESTED LOOP JOIN (2 tables)"), std::string::npos) << text;
  EXPECT_NE(text.find("USING INDEX apps_by_name"), std::string::npos) << text;
}

TEST_F(ExecutorTest, ExplainShowsOperatorTree) {
  // The full pipeline, root first, two spaces of indent per level.
  const ResultSet plan = sql_.exec(
      "EXPLAIN SELECT app, COUNT(*) FROM runs GROUP BY app "
      "HAVING COUNT(*) > 1 ORDER BY app LIMIT 3");
  ASSERT_EQ(plan.columns, std::vector<std::string>{"plan"});
  ASSERT_EQ(plan.rows.size(), 4u);
  EXPECT_EQ(plan.rows[0][0].asText(), "LIMIT 3");
  EXPECT_EQ(plan.rows[1][0].asText(), "  SORT BY 1 key (TOP-K 3)");
  EXPECT_EQ(plan.rows[2][0].asText(),
            "    AGGREGATE (2 aggregates, 1 group key) HAVING");
  EXPECT_EQ(plan.rows[3][0].asText(), "      SCAN runs AS runs");
}

TEST_F(ExecutorTest, OrderByLimitUsesTopKHeap) {
  // Regression: ORDER BY ... LIMIT used to sort and materialize every row
  // and then slice; the Sort operator must instead keep a bounded heap of
  // offset+limit rows. Observable via the TOP-K marker in EXPLAIN.
  const ResultSet plan =
      sql_.exec("EXPLAIN SELECT id FROM runs ORDER BY seconds LIMIT 2 OFFSET 1");
  EXPECT_NE(planText(plan).find("SORT BY 1 key (TOP-K 3)"), std::string::npos)
      << planText(plan);
  // No LIMIT -> no bound.
  const ResultSet full = sql_.exec("EXPLAIN SELECT id FROM runs ORDER BY seconds");
  EXPECT_EQ(planText(full).find("TOP-K"), std::string::npos);

  // The heap path must agree with the sort-everything path, including ties
  // (stable order) and DESC keys.
  const ResultSet rs =
      sql_.exec("SELECT id FROM runs ORDER BY seconds LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 2);  // 65.2 (40.1 skipped by OFFSET)
  EXPECT_EQ(rs.rows[1][0].asInt(), 6);  // 110.0
  const ResultSet desc =
      sql_.exec("SELECT id FROM runs ORDER BY nprocs DESC, id LIMIT 3");
  ASSERT_EQ(desc.rows.size(), 3u);
  EXPECT_EQ(desc.rows[0][0].asInt(), 3);
  EXPECT_EQ(desc.rows[1][0].asInt(), 6);
  EXPECT_EQ(desc.rows[2][0].asInt(), 2);
  // Ties on the sort key keep input order (stable), same as the full sort.
  const ResultSet ties = sql_.exec("SELECT id FROM runs ORDER BY app LIMIT 2");
  ASSERT_EQ(ties.rows.size(), 2u);
  EXPECT_EQ(ties.rows[0][0].asInt(), 1);
  EXPECT_EQ(ties.rows[1][0].asInt(), 2);
  // LIMIT 0 keeps nothing but still executes cleanly.
  EXPECT_EQ(sql_.exec("SELECT id FROM runs ORDER BY app LIMIT 0").rows.size(), 0u);
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  const ResultSet rs = sql_.exec("SELECT 1 + 1 AS two, 'x'");
  EXPECT_EQ(rs.rows[0][0].asInt(), 2);
  EXPECT_EQ(rs.rows[0][1].asText(), "x");
}

TEST_F(ExecutorTest, ErrorsOnUnknownColumnsAndTables) {
  EXPECT_THROW(sql_.exec("SELECT nope FROM runs"), util::SqlError);
  EXPECT_THROW(sql_.exec("SELECT * FROM missing"), util::SqlError);
  EXPECT_THROW(sql_.exec("INSERT INTO runs (bogus) VALUES (1)"), util::SqlError);
}

TEST_F(ExecutorTest, AmbiguousColumnRejected) {
  sql_.exec("CREATE TABLE other (id INTEGER PRIMARY KEY, app TEXT)");
  EXPECT_THROW(sql_.exec("SELECT app FROM runs r JOIN other o ON r.id = o.id"),
               util::SqlError);
}

TEST_F(ExecutorTest, ResultSetToTextRendersAllRows) {
  const ResultSet rs = sql_.exec("SELECT app, nprocs FROM runs WHERE id <= 2 ORDER BY id");
  const std::string text = rs.toText();
  EXPECT_NE(text.find("app"), std::string::npos);
  EXPECT_NE(text.find("irs"), std::string::npos);
  EXPECT_NE(text.find("16"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::minidb::sql
