// EXPLAIN ANALYZE: the plan actually runs and every operator line carries
// "(actual rows=R loops=L time=Tms)" annotations; plain EXPLAIN output is
// untouched; non-SELECT statements are rejected at parse time.
#include <gtest/gtest.h>

#include <string>

#include "minidb/sql/executor.h"
#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

using util::SqlError;

std::string planText(const ResultSet& rs) {
  std::string text;
  for (const auto& row : rs.rows) {
    text += row[0].asText();
    text += '\n';
  }
  return text;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  ExplainAnalyzeTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, app TEXT, "
              "nprocs INTEGER, seconds REAL)");
    sql_.exec("CREATE INDEX idx_app ON runs (app)");
    sql_.exec("INSERT INTO runs (app, nprocs, seconds) VALUES "
              "('irs', 8, 120.5), ('irs', 16, 65.2), ('irs', 32, 40.1), "
              "('smg', 8, 300.0), ('smg', 16, 180.0), ('smg', 32, 110.0)");
    sql_.exec("CREATE TABLE apps (name TEXT, lang TEXT)");
    sql_.exec("INSERT INTO apps VALUES ('irs', 'C'), ('smg', 'C'), "
              "('sppm', 'Fortran')");
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

TEST_F(ExplainAnalyzeTest, AnnotatesEveryOperatorLine) {
  const ResultSet rs = sql_.exec("EXPLAIN ANALYZE SELECT app FROM runs "
                                 "WHERE nprocs >= 16 ORDER BY seconds LIMIT 2");
  ASSERT_EQ(rs.columns.size(), 1u);
  EXPECT_EQ(rs.columns[0], "plan");
  ASSERT_FALSE(rs.rows.empty());
  for (const auto& row : rs.rows) {
    const std::string line = row[0].asText();
    EXPECT_NE(line.find("(actual rows="), std::string::npos) << line;
    EXPECT_NE(line.find("loops="), std::string::npos) << line;
    EXPECT_NE(line.find("time="), std::string::npos) << line;
  }
}

TEST_F(ExplainAnalyzeTest, RootRowCountMatchesQueryResult) {
  // The same query without EXPLAIN returns 2 rows; the analyzed root
  // (LIMIT) must report exactly those.
  const ResultSet direct = sql_.exec(
      "SELECT app FROM runs WHERE nprocs >= 16 ORDER BY seconds LIMIT 2");
  ASSERT_EQ(direct.rows.size(), 2u);
  const ResultSet rs = sql_.exec("EXPLAIN ANALYZE SELECT app FROM runs "
                                 "WHERE nprocs >= 16 ORDER BY seconds LIMIT 2");
  const std::string root = rs.rows[0][0].asText();
  EXPECT_NE(root.find("actual rows=2 "), std::string::npos) << root;
}

TEST_F(ExplainAnalyzeTest, JoinInnerSideCountsLoops) {
  const ResultSet rs = sql_.exec(
      "EXPLAIN ANALYZE SELECT runs.app FROM apps JOIN runs ON runs.app = "
      "apps.name");
  const std::string text = planText(rs);
  EXPECT_NE(text.find("NESTED LOOP JOIN"), std::string::npos) << text;
  // The driving side opens once; the probed side re-opens per outer row
  // (3 apps rows drive the probe).
  EXPECT_NE(text.find("loops=3"), std::string::npos) << text;
}

TEST_F(ExplainAnalyzeTest, PlainExplainHasNoActuals) {
  const ResultSet rs = sql_.exec("EXPLAIN SELECT * FROM runs WHERE app = 'irs'");
  const std::string text = planText(rs);
  EXPECT_EQ(text.find("actual"), std::string::npos) << text;
  EXPECT_EQ(text.find("time="), std::string::npos) << text;
}

TEST_F(ExplainAnalyzeTest, WorksThroughPreparedStatements) {
  PreparedStatement stmt =
      sql_.prepare("EXPLAIN ANALYZE SELECT id FROM runs WHERE app = ?");
  stmt.bind(1, Value("irs"));
  const ResultSet first = stmt.execute();
  ASSERT_FALSE(first.rows.empty());
  EXPECT_NE(planText(first).find("actual rows=3"), std::string::npos)
      << planText(first);
  // Re-execution with a different binding re-runs and re-counts (stats are
  // fresh per run, not accumulated across executions).
  stmt.bind(1, Value("nosuch"));
  const ResultSet second = stmt.execute();
  EXPECT_NE(planText(second).find("actual rows=0"), std::string::npos)
      << planText(second);
}

TEST_F(ExplainAnalyzeTest, AggregateAndDistinctAnnotate) {
  const ResultSet rs = sql_.exec(
      "EXPLAIN ANALYZE SELECT app, COUNT(*) FROM runs GROUP BY app");
  const std::string text = planText(rs);
  EXPECT_NE(text.find("AGGREGATE"), std::string::npos) << text;
  EXPECT_NE(text.find("(actual rows=2 "), std::string::npos) << text;  // 2 groups
}

TEST_F(ExplainAnalyzeTest, RejectsNonSelectStatements) {
  EXPECT_THROW(sql_.exec("EXPLAIN ANALYZE INSERT INTO apps VALUES ('x','y')"),
               SqlError);
  EXPECT_THROW(sql_.exec("EXPLAIN ANALYZE DELETE FROM apps"), SqlError);
  EXPECT_THROW(sql_.exec("EXPLAIN ANALYZE UPDATE apps SET lang = 'z'"), SqlError);
}

TEST_F(ExplainAnalyzeTest, StreamsThroughCursor) {
  PreparedStatement stmt =
      sql_.prepare("EXPLAIN ANALYZE SELECT * FROM runs WHERE nprocs = 8");
  Cursor cur = stmt.openCursor();
  Row row;
  std::size_t lines = 0;
  bool saw_actuals = false;
  while (cur.next(row)) {
    ++lines;
    if (row[0].asText().find("actual rows=") != std::string::npos) {
      saw_actuals = true;
    }
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(saw_actuals);
}

}  // namespace
}  // namespace perftrack::minidb::sql
