// Fault-injecting VFS shim: deterministic Nth-op failures, torn writes,
// short reads, and frozen-disk ("crashed") semantics. These are the
// primitives the crash-matrix harness builds on, so their behavior is
// pinned down here first.
#include "minidb/vfs.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "minidb/pager.h"
#include "util/tempdir.h"

namespace perftrack::minidb {
namespace {

TEST(PosixVfs, ReadWriteTruncateRoundTrip) {
  util::TempDir dir;
  const std::string path = dir.file("f.bin").string();
  PosixVfs vfs;
  auto f = vfs.open(path, /*create=*/true);
  f->write(0, "hello world", 11);
  EXPECT_EQ(f->size(), 11u);
  char buf[16] = {};
  EXPECT_EQ(f->read(0, buf, sizeof(buf)), 11u);  // short read at EOF
  EXPECT_EQ(std::memcmp(buf, "hello world", 11), 0);
  f->write(20, "!", 1);  // sparse extension
  EXPECT_EQ(f->size(), 21u);
  f->truncate(5);
  EXPECT_EQ(f->size(), 5u);
  f->sync();
  EXPECT_TRUE(vfs.exists(path));
  f.reset();
  vfs.remove(path);
  EXPECT_FALSE(vfs.exists(path));
  vfs.remove(path);  // removing a missing file is not an error
}

TEST(FaultInjectingVfs, CountsMutatingOpsWithoutAPlan) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  auto f = vfs.open(dir.file("f.bin").string(), true);
  f->write(0, "x", 1);
  f->sync();
  f->truncate(0);
  char c;
  f->read(0, &c, 1);
  EXPECT_EQ(vfs.mutatingOps(), 3u);
  EXPECT_EQ(vfs.reads(), 1u);
  EXPECT_FALSE(vfs.crashed());
}

TEST(FaultInjectingVfs, FailsExactlyTheNthOpAndFreezesTheDisk) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  FaultPlan plan;
  plan.fail_at_op = 2;
  vfs.setPlan(plan);
  auto f = vfs.open(dir.file("f.bin").string(), true);
  f->write(0, "aaaa", 4);                            // op 1: succeeds
  EXPECT_THROW(f->write(4, "bbbb", 4), InjectedFault);  // op 2: fails
  EXPECT_TRUE(vfs.crashed());
  // The simulated machine is down: nothing further reaches the disk.
  EXPECT_THROW(f->write(8, "cccc", 4), InjectedFault);
  EXPECT_THROW(f->sync(), InjectedFault);
  EXPECT_THROW(f->truncate(0), InjectedFault);
  EXPECT_THROW(vfs.open(dir.file("g.bin").string(), true), InjectedFault);
  // The backing file holds exactly the pre-crash bytes.
  PosixVfs real;
  auto check = real.open(dir.file("f.bin").string(), false);
  EXPECT_EQ(check->size(), 4u);
  char buf[4];
  ASSERT_EQ(check->read(0, buf, 4), 4u);
  EXPECT_EQ(std::memcmp(buf, "aaaa", 4), 0);
}

TEST(FaultInjectingVfs, TornWritePersistsAWholeSectorPrefix) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  FaultPlan plan;
  plan.fail_at_op = 1;
  plan.torn_write = true;
  vfs.setPlan(plan);
  auto f = vfs.open(dir.file("f.bin").string(), true);
  std::vector<std::uint8_t> page(8192, 0xAB);
  EXPECT_THROW(f->write(0, page.data(), page.size()), InjectedFault);
  // Half the buffer (rounded down to 512-byte sectors) hit the platter.
  PosixVfs real;
  auto check = real.open(dir.file("f.bin").string(), false);
  EXPECT_EQ(check->size(), 4096u);
  std::vector<std::uint8_t> got(4096);
  ASSERT_EQ(check->read(0, got.data(), got.size()), got.size());
  for (std::uint8_t b : got) ASSERT_EQ(b, 0xAB);
}

TEST(FaultInjectingVfs, TornBytesControlsThePrefixLength) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  FaultPlan plan;
  plan.fail_at_op = 1;
  plan.torn_write = true;
  plan.torn_bytes = 1000;  // rounds down to one 512-byte sector
  vfs.setPlan(plan);
  auto f = vfs.open(dir.file("f.bin").string(), true);
  std::vector<std::uint8_t> page(8192, 0x5C);
  EXPECT_THROW(f->write(0, page.data(), page.size()), InjectedFault);
  PosixVfs real;
  EXPECT_EQ(real.open(dir.file("f.bin").string(), false)->size(), 512u);
}

TEST(FaultInjectingVfs, ShortReadAtNthRead) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  auto f = vfs.open(dir.file("f.bin").string(), true);
  f->write(0, "0123456789", 10);
  FaultPlan plan;
  plan.short_read_at = 2;
  vfs.setPlan(plan);
  char buf[10];
  EXPECT_EQ(f->read(0, buf, 10), 10u);  // read 1: full
  EXPECT_EQ(f->read(0, buf, 10), 5u);   // read 2: short
  EXPECT_EQ(f->read(0, buf, 10), 10u);  // read 3: full again
}

TEST(FaultInjectingVfs, ShortReadSurfacesAsStorageErrorInFilePager) {
  // A database whose file comes back short must fail loudly at open, not
  // load garbage.
  util::TempDir dir;
  const std::string path = dir.file("short.db").string();
  {
    FilePager pager(path, Durability::None);
    pager.allocate();
    pager.flush();
  }
  FaultInjectingVfs vfs(PosixVfs::instance());
  FaultPlan plan;
  plan.short_read_at = 1;
  vfs.setPlan(plan);
  EXPECT_THROW(FilePager(path, Durability::Full, &vfs), util::StorageError);
}

TEST(FaultInjectingVfs, ResetClearsCountersAndCrashFlag) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  FaultPlan plan;
  plan.fail_at_op = 1;
  vfs.setPlan(plan);
  auto f = vfs.open(dir.file("f.bin").string(), true);
  EXPECT_THROW(f->write(0, "x", 1), InjectedFault);
  EXPECT_TRUE(vfs.crashed());
  vfs.reset();
  EXPECT_FALSE(vfs.crashed());
  EXPECT_EQ(vfs.mutatingOps(), 0u);
  vfs.setPlan(FaultPlan{});
  f->write(0, "x", 1);  // healthy again
  EXPECT_EQ(vfs.mutatingOps(), 1u);
}

TEST(FaultInjectingVfs, RemoveCountsAsAMutatingOp) {
  util::TempDir dir;
  FaultInjectingVfs vfs(PosixVfs::instance());
  auto f = vfs.open(dir.file("f.bin").string(), true);
  f->write(0, "x", 1);
  f.reset();
  FaultPlan plan;
  plan.fail_at_op = 2;
  vfs.setPlan(plan);
  EXPECT_THROW(vfs.remove(dir.file("f.bin").string()), InjectedFault);
  EXPECT_TRUE(PosixVfs::instance().exists(dir.file("f.bin").string()));
}

}  // namespace
}  // namespace perftrack::minidb
