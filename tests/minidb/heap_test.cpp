#include "minidb/heap.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/error.h"
#include "util/rng.h"

namespace perftrack::minidb {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string str(const std::vector<std::uint8_t>& v) {
  return {v.begin(), v.end()};
}

class HeapTest : public ::testing::Test {
 protected:
  MemPager pager_;
};

TEST_F(HeapTest, InsertThenRead) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  const auto payload = bytes("hello heap");
  const RecordId rid = heap.insert(payload.data(), payload.size());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(heap.read(rid, out));
  EXPECT_EQ(str(out), "hello heap");
}

TEST_F(HeapTest, ReadDeletedReturnsFalse) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  const auto payload = bytes("x");
  const RecordId rid = heap.insert(payload.data(), payload.size());
  EXPECT_TRUE(heap.erase(rid));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(heap.read(rid, out));
  EXPECT_FALSE(heap.erase(rid));  // double delete is a no-op
}

TEST_F(HeapTest, SpillsAcrossPages) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  // ~500-byte records: a few dozen fill multiple pages.
  const std::string big(500, 'z');
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    const auto payload = bytes(big + std::to_string(i));
    rids.push_back(heap.insert(payload.data(), payload.size()));
  }
  EXPECT_GT(pager_.pageCount(), 5u);
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.read(rids[i], out));
    EXPECT_EQ(str(out), big + std::to_string(i));
  }
}

TEST_F(HeapTest, IteratorVisitsAllLiveRecords) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  std::map<std::string, int> expected;
  std::vector<RecordId> rids;
  for (int i = 0; i < 50; ++i) {
    const std::string payload = "rec" + std::to_string(i);
    const auto b = bytes(payload);
    rids.push_back(heap.insert(b.data(), b.size()));
    expected[payload] = 1;
  }
  // Delete every third record.
  for (int i = 0; i < 50; i += 3) {
    heap.erase(rids[i]);
    expected.erase("rec" + std::to_string(i));
  }
  std::map<std::string, int> seen;
  for (auto it = heap.begin(); !it.done(); it.next()) {
    seen[std::string(reinterpret_cast<const char*>(it.data()), it.size())]++;
  }
  EXPECT_EQ(seen.size(), expected.size());
  for (const auto& [k, v] : seen) {
    EXPECT_EQ(v, 1) << k;
    EXPECT_TRUE(expected.contains(k)) << k;
  }
}

TEST_F(HeapTest, EmptyHeapIteratorIsDone) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  EXPECT_TRUE(heap.begin().done());
}

TEST_F(HeapTest, UpdateInPlaceWhenSmaller) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  const auto payload = bytes("original-payload");
  const RecordId rid = heap.insert(payload.data(), payload.size());
  const auto smaller = bytes("tiny");
  const RecordId new_rid = heap.update(rid, smaller.data(), smaller.size());
  EXPECT_EQ(new_rid, rid);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(heap.read(rid, out));
  EXPECT_EQ(str(out), "tiny");
}

TEST_F(HeapTest, UpdateMovesWhenLarger) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  const auto payload = bytes("short");
  const RecordId rid = heap.insert(payload.data(), payload.size());
  const auto larger = bytes(std::string(100, 'L'));
  const RecordId new_rid = heap.update(rid, larger.data(), larger.size());
  EXPECT_NE(new_rid, rid);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(heap.read(rid, out));  // old slot tombstoned
  ASSERT_TRUE(heap.read(new_rid, out));
  EXPECT_EQ(out.size(), 100u);
}

TEST_F(HeapTest, OversizedRecordRejected) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  const std::vector<std::uint8_t> huge(kPageSize, 0xAB);
  EXPECT_THROW(heap.insert(huge.data(), huge.size()), util::StorageError);
}

TEST_F(HeapTest, MaxSizeRecordFits) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  const std::vector<std::uint8_t> max_rec(HeapFile::maxRecordSize(), 0x5A);
  const RecordId rid = heap.insert(max_rec.data(), max_rec.size());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(heap.read(rid, out));
  EXPECT_EQ(out, max_rec);
}

TEST_F(HeapTest, DestroyReturnsPagesToFreeList) {
  const PageId first = HeapFile::create(pager_);
  HeapFile heap(pager_, first);
  const std::string big(1000, 'q');
  for (int i = 0; i < 50; ++i) {
    const auto payload = bytes(big);
    heap.insert(payload.data(), payload.size());
  }
  const auto pages_before = pager_.pageCount();
  heap.destroy();
  // Freed pages are reused: allocating does not grow the database.
  pager_.allocate();
  EXPECT_EQ(pager_.pageCount(), pages_before);
}

TEST_F(HeapTest, StressRandomInsertDeleteReadback) {
  HeapFile heap(pager_, HeapFile::create(pager_));
  util::Rng rng(99);
  std::map<int, RecordId> live;
  std::map<int, std::string> content;
  int next_key = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const int key = next_key++;
      std::string payload = "key" + std::to_string(key) + ":" +
                            std::string(rng.uniformInt(0, 200), 'd');
      const auto b = bytes(payload);
      live[key] = heap.insert(b.data(), b.size());
      content[key] = payload;
    } else {
      auto it = live.begin();
      std::advance(it, rng.uniformInt(0, static_cast<int>(live.size()) - 1));
      EXPECT_TRUE(heap.erase(it->second));
      content.erase(it->first);
      live.erase(it);
    }
  }
  std::vector<std::uint8_t> out;
  for (const auto& [key, rid] : live) {
    ASSERT_TRUE(heap.read(rid, out));
    EXPECT_EQ(str(out), content[key]);
  }
  std::size_t count = 0;
  for (auto it = heap.begin(); !it.done(); it.next()) ++count;
  EXPECT_EQ(count, live.size());
}

}  // namespace
}  // namespace perftrack::minidb
