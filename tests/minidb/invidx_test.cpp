// Inverted-index core: posting-list round trips, cursor seeks, k-way
// intersection, the bitmap accumulator, the manager's build/invalidate
// lifecycle, and the SQL planner's posting access path.
#include "minidb/invidx/manager.h"
#include "minidb/invidx/posting.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "util/rng.h"

namespace perftrack::minidb::invidx {
namespace {

std::vector<std::uint64_t> randomSorted(util::Rng& rng, std::size_t n,
                                        std::uint64_t hi) {
  std::set<std::uint64_t> s;
  while (s.size() < n) {
    s.insert(static_cast<std::uint64_t>(rng.uniformInt(0, static_cast<std::int64_t>(hi))));
  }
  return {s.begin(), s.end()};
}

TEST(PostingList, SparseRoundTripUsesDeltas) {
  util::Rng rng(1);
  const auto ids = randomSorted(rng, 500, 1'000'000);  // range/size ~2000
  const PostingList pl = PostingList::fromSorted(ids);
  EXPECT_FALSE(pl.isBitmap());
  EXPECT_EQ(pl.size(), ids.size());
  EXPECT_EQ(pl.minId(), ids.front());
  EXPECT_EQ(pl.maxId(), ids.back());
  EXPECT_EQ(pl.toVector(), ids);
}

TEST(PostingList, DenseRoundTripUsesBitmap) {
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 100; i < 2100; i += 2) ids.push_back(i);
  const PostingList pl = PostingList::fromSorted(ids);
  EXPECT_TRUE(pl.isBitmap());
  EXPECT_EQ(pl.toVector(), ids);
}

TEST(PostingList, EmptyAndSingleton) {
  const PostingList empty = PostingList::fromSorted({});
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.cursor().valid());
  const PostingList one = PostingList::fromSorted({42});
  EXPECT_EQ(one.size(), 1u);
  auto c = one.cursor();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.value(), 42u);
  c.next();
  EXPECT_FALSE(c.valid());
}

TEST(PostingList, CursorAdvanceToMatchesLowerBound) {
  util::Rng rng(2);
  for (const bool dense : {false, true}) {
    const auto ids = dense ? randomSorted(rng, 2000, 8000)
                           : randomSorted(rng, 700, 900'000);
    const PostingList pl = PostingList::fromSorted(ids);
    ASSERT_EQ(pl.isBitmap(), dense);
    for (int trial = 0; trial < 300; ++trial) {
      const auto target = static_cast<std::uint64_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(ids.back() + 10)));
      auto c = pl.cursor();
      const bool ok = c.advanceTo(target);
      const auto it = std::lower_bound(ids.begin(), ids.end(), target);
      if (it == ids.end()) {
        EXPECT_FALSE(ok);
      } else {
        ASSERT_TRUE(ok);
        EXPECT_EQ(c.value(), *it);
      }
    }
  }
}

TEST(PostingList, CursorAdvanceToIsMonotonic) {
  util::Rng rng(3);
  const auto ids = randomSorted(rng, 600, 500'000);
  const PostingList pl = PostingList::fromSorted(ids);
  auto c = pl.cursor();
  std::vector<std::uint64_t> targets;
  for (int i = 0; i < 50; ++i) {
    targets.push_back(static_cast<std::uint64_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(ids.back()))));
  }
  std::sort(targets.begin(), targets.end());
  for (const std::uint64_t t : targets) {
    if (!c.advanceTo(t)) break;
    const auto it = std::lower_bound(ids.begin(), ids.end(), t);
    ASSERT_NE(it, ids.end());
    EXPECT_EQ(c.value(), *it);
  }
}

TEST(PostingList, IntersectMatchesSetIntersection) {
  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    // Mix of sparse (delta) and dense (bitmap) lists over one domain.
    const auto a = randomSorted(rng, 400, 20'000);
    const auto b = randomSorted(rng, 3000, 20'000);
    const auto c = randomSorted(rng, 1200, 20'000);
    const PostingList pa = PostingList::fromSorted(a);
    const PostingList pb = PostingList::fromSorted(b);
    const PostingList pc = PostingList::fromSorted(c);
    std::vector<std::uint64_t> ab;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(ab));
    std::vector<std::uint64_t> expected;
    std::set_intersection(ab.begin(), ab.end(), c.begin(), c.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(PostingList::intersect({&pa, &pb, &pc}), expected);
  }
}

TEST(PostingList, IntersectEmptyListShortCircuits) {
  const PostingList a = PostingList::fromSorted({1, 2, 3});
  const PostingList none = PostingList::fromSorted({});
  EXPECT_TRUE(PostingList::intersect({&a, &none}).empty());
}

TEST(PostingList, IntersectLimitReturnsPrefix) {
  util::Rng rng(5);
  const auto a = randomSorted(rng, 2000, 10'000);
  const auto b = randomSorted(rng, 2000, 10'000);
  const PostingList pa = PostingList::fromSorted(a);
  const PostingList pb = PostingList::fromSorted(b);
  const auto full = PostingList::intersect({&pa, &pb});
  ASSERT_GT(full.size(), 10u);
  const auto limited = PostingList::intersect({&pa, &pb}, 10);
  EXPECT_EQ(limited, std::vector<std::uint64_t>(full.begin(), full.begin() + 10));
}

TEST(Bitmap, UnionIntersectCountMatchReference) {
  util::Rng rng(6);
  const auto a = randomSorted(rng, 900, 30'000);
  const auto b = randomSorted(rng, 5000, 30'000);  // dense -> bitmap rep
  const PostingList pa = PostingList::fromSorted(a);
  const PostingList pb = PostingList::fromSorted(b);

  Bitmap ba(0, 30'000), bb(0, 30'000);
  ba.orPosting(pa);
  bb.orPosting(pb);
  EXPECT_EQ(ba.count(), a.size());
  EXPECT_EQ(ba.toVector(), a);

  ba.andWith(bb);
  std::vector<std::uint64_t> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(ba.toVector(), expected);
  EXPECT_EQ(ba.count(), expected.size());
  EXPECT_EQ(ba.any(), !expected.empty());

  // forEach early stop.
  std::size_t seen = 0;
  ba.forEach([&](std::uint64_t) { return ++seen < 3; });
  EXPECT_EQ(seen, std::min<std::size_t>(3, expected.size()));
  EXPECT_EQ(ba.toVector(5).size(), std::min<std::size_t>(5, expected.size()));
}

// ---------------------------------------------------------------------------
// Manager lifecycle against a live database
// ---------------------------------------------------------------------------

class InvidxManagerTest : public ::testing::Test {
 protected:
  InvidxManagerTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE pairs (k INTEGER, v INTEGER)");
    sql_.exec("CREATE INDEX pairs_by_k ON pairs (k)");
    sql_.exec("INSERT INTO pairs (k, v) VALUES (1, 10), (1, 11), (2, 20), (3, 30), (3, 31)");
  }

  std::unique_ptr<Database> db_;
  sql::Engine sql_;
};

TEST_F(InvidxManagerTest, ValueIndexGroupsByKey) {
  const auto idx = db_->invidx().valueIndex("pairs", "k", "v");
  ASSERT_TRUE(idx);
  ASSERT_NE(idx->find(1), nullptr);
  EXPECT_EQ(idx->find(1)->toVector(), (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(idx->find(2)->toVector(), (std::vector<std::uint64_t>{20}));
  EXPECT_EQ(idx->find(9), nullptr);
  EXPECT_EQ(idx->valueLo(), 10u);
  EXPECT_EQ(idx->valueHi(), 31u);
}

TEST_F(InvidxManagerTest, CachedUntilDmlThenRebuilt) {
  const auto before = db_->invidx().valueIndex("pairs", "k", "v");
  ASSERT_TRUE(before);
  EXPECT_EQ(db_->invidx().valueIndex("pairs", "k", "v").get(), before.get());

  sql_.exec("INSERT INTO pairs (k, v) VALUES (2, 21)");
  const auto after = db_->invidx().valueIndex("pairs", "k", "v");
  ASSERT_TRUE(after);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->find(2)->toVector(), (std::vector<std::uint64_t>{20, 21}));
  // The old snapshot is untouched (readers that held it stay consistent).
  EXPECT_EQ(before->find(2)->toVector(), (std::vector<std::uint64_t>{20}));
}

TEST_F(InvidxManagerTest, RollbackInvalidatesViaEpoch) {
  sql_.exec("BEGIN");
  sql_.exec("INSERT INTO pairs (k, v) VALUES (7, 70)");
  const auto mid = db_->invidx().valueIndex("pairs", "k", "v");
  ASSERT_TRUE(mid);
  ASSERT_NE(mid->find(7), nullptr);  // working state is visible
  sql_.exec("ROLLBACK");
  const auto after = db_->invidx().valueIndex("pairs", "k", "v");
  ASSERT_TRUE(after);
  EXPECT_EQ(after->find(7), nullptr);
}

TEST_F(InvidxManagerTest, DeclinesNonIntegerColumns) {
  sql_.exec("CREATE TABLE named (id INTEGER, label TEXT)");
  sql_.exec("INSERT INTO named (id, label) VALUES (1, 'a')");
  EXPECT_FALSE(db_->invidx().valueIndex("named", "id", "label"));
  EXPECT_FALSE(db_->invidx().valueIndex("named", "label", "id"));
  EXPECT_FALSE(db_->invidx().valueIndex("no_such_table", "a", "b"));
}

TEST_F(InvidxManagerTest, RidIndexCoversEveryRow) {
  const auto idx = db_->invidx().ridIndex("pairs", 0);  // column k
  ASSERT_TRUE(idx);
  ASSERT_NE(idx->find(1), nullptr);
  EXPECT_EQ(idx->find(1)->size(), 2u);
  EXPECT_EQ(idx->find(2)->size(), 1u);
  EXPECT_EQ(idx->find(3)->size(), 2u);
  EXPECT_EQ(idx->find(4), nullptr);
  EXPECT_EQ(idx->rows(), 5u);
}

// ---------------------------------------------------------------------------
// Planner: the PostingInList access path
// ---------------------------------------------------------------------------

std::string planText(const sql::ResultSet& rs) {
  std::string text;
  for (const auto& row : rs.rows) {
    text += row[0].asText();
    text += '\n';
  }
  return text;
}

class PostingPathTest : public ::testing::Test {
 protected:
  PostingPathTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE items (id INTEGER PRIMARY KEY, grp INTEGER, name TEXT)");
    sql_.exec("CREATE INDEX items_by_grp ON items (grp)");
    for (int i = 1; i <= 50; ++i) {
      sql_.exec("INSERT INTO items (grp, name) VALUES (" + std::to_string(i % 7) +
                ", 'n" + std::to_string(i) + "')");
    }
  }

  std::unique_ptr<Database> db_;
  sql::Engine sql_;
};

TEST_F(PostingPathTest, ExplainShowsPostingIndexWhenEnabled) {
  sql_.setInvidx(true);
  const auto plan = planText(sql_.exec("EXPLAIN SELECT id FROM items WHERE grp IN (1, 2)"));
  EXPECT_NE(plan.find("USING POSTING INDEX"), std::string::npos) << plan;

  sql_.setInvidx(false);
  const auto legacy = planText(sql_.exec("EXPLAIN SELECT id FROM items WHERE grp IN (1, 2)"));
  EXPECT_EQ(legacy.find("USING POSTING INDEX"), std::string::npos) << legacy;
  EXPECT_NE(legacy.find("multi-point probe"), std::string::npos) << legacy;
}

TEST_F(PostingPathTest, ExplainAnalyzeShowsPostingStats) {
  sql_.setInvidx(true);
  const auto plan =
      planText(sql_.exec("EXPLAIN ANALYZE SELECT id FROM items WHERE grp IN (1, 2)"));
  EXPECT_NE(plan.find("postings:"), std::string::npos) << plan;
}

TEST_F(PostingPathTest, ResultsIdenticalToLegacyPath) {
  const char* queries[] = {
      "SELECT id, grp, name FROM items WHERE grp IN (1, 3, 5) ORDER BY id",
      "SELECT id FROM items WHERE grp IN (2, 2, 2)",        // duplicate keys
      "SELECT id FROM items WHERE grp IN (99, 100)",        // no matches
      "SELECT id FROM items WHERE id IN (5, 1, 50, 12)",    // PK probes
      "SELECT COUNT(*) FROM items WHERE grp IN (0, 6)",
  };
  for (const char* q : queries) {
    sql_.setInvidx(false);
    const auto legacy = sql_.exec(q);
    sql_.setInvidx(true);
    const auto fast = sql_.exec(q);
    ASSERT_EQ(fast.rows.size(), legacy.rows.size()) << q;
    for (std::size_t r = 0; r < fast.rows.size(); ++r) {
      ASSERT_EQ(fast.rows[r].size(), legacy.rows[r].size());
      for (std::size_t c = 0; c < fast.rows[r].size(); ++c) {
        EXPECT_EQ(fast.rows[r][c].compare(legacy.rows[r][c]), 0) << q;
      }
    }
  }
}

TEST_F(PostingPathTest, DmlBetweenQueriesSeesFreshRows) {
  sql_.setInvidx(true);
  const auto before = sql_.exec("SELECT id FROM items WHERE grp IN (1)");
  sql_.exec("INSERT INTO items (grp, name) VALUES (1, 'fresh')");
  const auto after = sql_.exec("SELECT id FROM items WHERE grp IN (1)");
  EXPECT_EQ(after.rows.size(), before.rows.size() + 1);
  sql_.exec("DELETE FROM items WHERE grp = 1");
  const auto gone = sql_.exec("SELECT id FROM items WHERE grp IN (1)");
  EXPECT_TRUE(gone.rows.empty());
}

TEST_F(PostingPathTest, MixedTypeKeysFallBackToBtree) {
  sql_.setInvidx(true);
  // 'n5' is not an integer: the iterator declines the posting index at
  // doOpen and probes the B-tree per key instead; results stay correct.
  const auto rs = sql_.exec("SELECT id FROM items WHERE grp IN (1, 'x')");
  sql_.setInvidx(false);
  const auto legacy = sql_.exec("SELECT id FROM items WHERE grp IN (1, 'x')");
  EXPECT_EQ(rs.rows.size(), legacy.rows.size());
}

TEST_F(PostingPathTest, ProbeCounterAdvances) {
  sql_.setInvidx(true);
  const std::uint64_t before = counters().probes.value();
  (void)sql_.exec("SELECT id FROM items WHERE grp IN (1, 2, 3)");
  EXPECT_GE(counters().probes.value(), before + 3);
}

}  // namespace
}  // namespace perftrack::minidb::invidx
