#include "minidb/keycodec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace perftrack::minidb {
namespace {

EncodedKey enc(const Value& v) {
  EncodedKey out;
  encodeValue(v, out);
  return out;
}

TEST(KeyCodec, IntegerOrderPreserved) {
  const std::int64_t samples[] = {-1000000, -2, -1, 0, 1, 2, 42, 1000000};
  for (std::size_t i = 0; i + 1 < std::size(samples); ++i) {
    EXPECT_LT(enc(Value(samples[i])), enc(Value(samples[i + 1])))
        << samples[i] << " vs " << samples[i + 1];
  }
}

TEST(KeyCodec, RealOrderPreserved) {
  const double samples[] = {-1e9, -3.5, -0.0001, 0.0, 0.0001, 2.5, 7.0, 1e9};
  for (std::size_t i = 0; i + 1 < std::size(samples); ++i) {
    EXPECT_LT(enc(Value(samples[i])), enc(Value(samples[i + 1])));
  }
}

TEST(KeyCodec, IntAndRealInterleave) {
  EXPECT_EQ(enc(Value(std::int64_t{2})), enc(Value(2.0)));
  EXPECT_LT(enc(Value(std::int64_t{2})), enc(Value(2.5)));
  EXPECT_LT(enc(Value(1.5)), enc(Value(std::int64_t{2})));
}

TEST(KeyCodec, TextOrderPreserved) {
  EXPECT_LT(enc(Value("a")), enc(Value("ab")));
  EXPECT_LT(enc(Value("ab")), enc(Value("b")));
  EXPECT_LT(enc(Value("")), enc(Value("a")));
}

TEST(KeyCodec, TextWithEmbeddedNul) {
  // "a\0b" must sort after "a" and before "ab", and must not collide with
  // the terminator of a shorter key.
  std::string nul_mid("a\0b", 3);
  EXPECT_LT(enc(Value("a")), enc(Value(nul_mid)));
  EXPECT_LT(enc(Value(nul_mid)), enc(Value("ab")));
}

TEST(KeyCodec, TypeRankOrdering) {
  EXPECT_LT(enc(Value::null()), enc(Value(std::int64_t{-9999999})));
  EXPECT_LT(enc(Value(std::int64_t{9999999})), enc(Value("")));
}

TEST(KeyCodec, CompositeKeyFieldBoundary) {
  // ("ab", "c") must differ from ("a", "bc") — terminators enforce this.
  const EncodedKey k1 = encodeKey({Value("ab"), Value("c")});
  const EncodedKey k2 = encodeKey({Value("a"), Value("bc")});
  EXPECT_NE(k1, k2);
  EXPECT_GT(k1, k2);  // "ab" > "a" decides before the second field
}

TEST(KeyCodec, RandomizedOrderAgreement) {
  util::Rng rng(2024);
  std::vector<Value> values;
  for (int i = 0; i < 300; ++i) {
    switch (rng.uniformInt(0, 2)) {
      case 0: values.emplace_back(rng.uniformInt(-100000, 100000)); break;
      case 1: values.emplace_back(rng.uniform(-1e6, 1e6)); break;
      default: {
        std::string s;
        const int len = static_cast<int>(rng.uniformInt(0, 12));
        for (int j = 0; j < len; ++j) {
          s.push_back(static_cast<char>('a' + rng.uniformInt(0, 25)));
        }
        values.emplace_back(std::move(s));
      }
    }
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const Value& a = values[rng.uniformInt(0, static_cast<int>(values.size()) - 1)];
    const Value& b = values[rng.uniformInt(0, static_cast<int>(values.size()) - 1)];
    const int vc = a.compare(b);
    const EncodedKey ka = enc(a);
    const EncodedKey kb = enc(b);
    const int kc = ka < kb ? -1 : (ka > kb ? 1 : 0);
    EXPECT_EQ(vc < 0, kc < 0);
    EXPECT_EQ(vc > 0, kc > 0);
  }
}

TEST(KeyCodec, RecordIdSuffixRoundTrip) {
  EncodedKey key = encodeKey({Value("resource")});
  const RecordId rid{12345, 678};
  encodeRecordIdSuffix(rid, key);
  EXPECT_EQ(decodeRecordIdSuffix(key), rid);
}

TEST(KeyCodec, RecordIdSuffixPreservesOrderForDuplicates) {
  EncodedKey a = encodeKey({Value("same")});
  EncodedKey b = a;
  encodeRecordIdSuffix({1, 0}, a);
  encodeRecordIdSuffix({2, 0}, b);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace perftrack::minidb
