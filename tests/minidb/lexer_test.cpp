#include "minidb/sql/lexer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

TEST(Lexer, KeywordsAreCaseInsensitive) {
  const auto toks = tokenize("select Select SELECT");
  ASSERT_EQ(toks.size(), 4u);  // 3 + End
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(toks[i].type, TokenType::Keyword);
    EXPECT_EQ(toks[i].text, "SELECT");
  }
}

TEST(Lexer, IdentifiersKeepCase) {
  const auto toks = tokenize("resource_item MyTable");
  EXPECT_EQ(toks[0].type, TokenType::Identifier);
  EXPECT_EQ(toks[0].text, "resource_item");
  EXPECT_EQ(toks[1].text, "MyTable");
}

TEST(Lexer, IntegerAndRealLiterals) {
  const auto toks = tokenize("42 3.5 1e3 2.5e-2 .5");
  EXPECT_EQ(toks[0].type, TokenType::Integer);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].type, TokenType::Real);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 3.5);
  EXPECT_EQ(toks[2].type, TokenType::Real);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].real_value, 0.5);
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  const auto toks = tokenize("'it''s fine'");
  EXPECT_EQ(toks[0].type, TokenType::String);
  EXPECT_EQ(toks[0].text, "it's fine");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("'oops"), util::SqlError);
}

TEST(Lexer, QuotedIdentifier) {
  const auto toks = tokenize("\"order\"");
  EXPECT_EQ(toks[0].type, TokenType::Identifier);
  EXPECT_EQ(toks[0].text, "order");
}

TEST(Lexer, TwoCharOperators) {
  const auto toks = tokenize("<= >= <> != =");
  EXPECT_EQ(toks[0].text, "<=");
  EXPECT_EQ(toks[1].text, ">=");
  EXPECT_EQ(toks[2].text, "<>");
  EXPECT_EQ(toks[3].text, "!=");
  EXPECT_EQ(toks[4].text, "=");
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = tokenize("SELECT -- this is a comment\n 1");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(toks[0].isKeyword("SELECT"));
  EXPECT_EQ(toks[1].int_value, 1);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(tokenize("SELECT @foo"), util::SqlError);
}

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::End);
}

}  // namespace
}  // namespace perftrack::minidb::sql
