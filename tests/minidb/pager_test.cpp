#include "minidb/pager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::minidb {
namespace {

TEST(MemPager, FreshDatabaseHasValidHeader) {
  MemPager pager;
  EXPECT_EQ(pager.header().magic, kDbMagic);
  EXPECT_EQ(pager.header().version, kDbVersion);
  EXPECT_EQ(pager.pageCount(), 1u);
  EXPECT_EQ(pager.header().freelist_head, kInvalidPage);
}

TEST(MemPager, AllocateReturnsZeroedDistinctPages) {
  MemPager pager;
  const PageId a = pager.allocate();
  const PageId b = pager.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pager.pageCount(), 3u);
  const std::uint8_t* pa = pager.pageForRead(a);
  for (std::size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(pa[i], 0);
}

TEST(MemPager, FreeListReusesPages) {
  MemPager pager;
  const PageId a = pager.allocate();
  pager.allocate();
  pager.free(a);
  const PageId c = pager.allocate();
  EXPECT_EQ(c, a);
  EXPECT_EQ(pager.pageCount(), 3u);  // no growth
}

TEST(MemPager, CannotFreeHeaderPage) {
  MemPager pager;
  EXPECT_THROW(pager.free(0), util::StorageError);
}

TEST(MemPager, OutOfRangeAccessThrows) {
  MemPager pager;
  EXPECT_THROW(pager.pageForRead(99), util::StorageError);
  EXPECT_THROW(pager.pageForWrite(99), util::StorageError);
}

TEST(MemPager, SizeBytesTracksPageCount) {
  MemPager pager;
  const auto before = pager.sizeBytes();
  pager.allocate();
  EXPECT_EQ(pager.sizeBytes(), before + kPageSize);
}

TEST(Journal, RollbackRestoresPageContent) {
  MemPager pager;
  const PageId id = pager.allocate();
  std::memcpy(pager.pageForWrite(id), "before", 6);
  pager.beginJournal();
  std::memcpy(pager.pageForWrite(id), "after!", 6);
  pager.rollbackJournal();
  EXPECT_EQ(std::memcmp(pager.pageForRead(id), "before", 6), 0);
}

TEST(Journal, RollbackDiscardsPagesAllocatedInTransaction) {
  MemPager pager;
  const auto count_before = pager.pageCount();
  pager.beginJournal();
  pager.allocate();
  pager.allocate();
  pager.rollbackJournal();
  EXPECT_EQ(pager.pageCount(), count_before);
}

TEST(Journal, RollbackRestoresFreeList) {
  MemPager pager;
  const PageId a = pager.allocate();
  pager.beginJournal();
  pager.free(a);
  pager.rollbackJournal();
  // `a` must not be on the free list: a fresh allocation grows the file.
  const auto count = pager.pageCount();
  const PageId b = pager.allocate();
  EXPECT_NE(b, a);
  EXPECT_EQ(pager.pageCount(), count + 1);
}

TEST(Journal, CommitKeepsChanges) {
  MemPager pager;
  const PageId id = pager.allocate();
  pager.beginJournal();
  std::memcpy(pager.pageForWrite(id), "kept", 4);
  pager.commitJournal();
  EXPECT_EQ(std::memcmp(pager.pageForRead(id), "kept", 4), 0);
}

TEST(Journal, NestedBeginThrows) {
  MemPager pager;
  pager.beginJournal();
  EXPECT_THROW(pager.beginJournal(), util::StorageError);
}

TEST(Journal, CommitWithoutBeginThrows) {
  MemPager pager;
  EXPECT_THROW(pager.commitJournal(), util::StorageError);
  EXPECT_THROW(pager.rollbackJournal(), util::StorageError);
}

TEST(FilePager, PersistsAcrossReopen) {
  util::TempDir dir;
  const std::string path = dir.file("test.db").string();
  PageId id = kInvalidPage;
  {
    FilePager pager(path);
    id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "durable", 7);
    pager.flush();
  }
  {
    FilePager pager(path);
    ASSERT_LT(id, pager.pageCount());
    EXPECT_EQ(std::memcmp(pager.pageForRead(id), "durable", 7), 0);
  }
}

TEST(FilePager, RejectsCorruptFile) {
  util::TempDir dir;
  const std::string path = dir.file("bad.db").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("not a database", 1, 14, f);
    std::fclose(f);
  }
  EXPECT_THROW(FilePager pager(path), util::StorageError);
}

TEST(FilePager, FlushOnDestruction) {
  util::TempDir dir;
  const std::string path = dir.file("dtor.db").string();
  PageId id = kInvalidPage;
  {
    FilePager pager(path);
    id = pager.allocate();
    std::memcpy(pager.pageForWrite(id), "auto", 4);
    // no explicit flush: destructor must persist
  }
  FilePager pager(path);
  EXPECT_EQ(std::memcmp(pager.pageForRead(id), "auto", 4), 0);
}

}  // namespace
}  // namespace perftrack::minidb
