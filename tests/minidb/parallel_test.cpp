// Morsel-driven parallel execution: differential correctness against the
// serial path, morsel-boundary edge cases, the shared ExecPool, cursor-pin
// interplay, EXPLAIN rendering, and the exec metrics.
//
// Every test forces the degree explicitly (Engine::setExecThreads) and
// disables the small-table gate (setParallelMinPages(0 or 1)) — the suite
// must behave identically on a 1-core CI box and a 64-core workstation.
#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "minidb/sql/exec_pool.h"
#include "minidb/sql/executor.h"
#include "minidb/sql/pipeline.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

std::string planText(const ResultSet& rs) {
  std::string text;
  for (const auto& row : rs.rows) {
    text += row[0].asText();
    text += '\n';
  }
  return text;
}

/// Renders a result set to a canonical string for exact differential
/// comparison (column order and row order both matter).
std::string canon(const ResultSet& rs) {
  std::string out;
  for (const Row& row : rs.rows) {
    for (const Value& v : row) {
      out += v.isNull() ? "NULL" : v.toDisplayString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec(
        "CREATE TABLE m (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, "
        "r REAL, tag TEXT)");
    // Enough rows to span many heap pages and several morsels; grp has a
    // NULL stripe and val has deliberate ties for ORDER BY tie-break tests.
    std::string insert;
    for (int i = 0; i < 9000; ++i) {
      insert += insert.empty() ? "INSERT INTO m (grp, val, r, tag) VALUES "
                               : ",";
      const bool null_grp = i % 11 == 0;
      insert += "(" + (null_grp ? std::string("NULL") : std::to_string(i % 7)) +
                "," + std::to_string(i % 50) + "," +
                std::to_string(i % 13) + ".5,'t" + std::to_string(i % 5) + "')";
      if (insert.size() > 60000) {
        sql_.exec(insert);
        insert.clear();
      }
    }
    if (!insert.empty()) sql_.exec(insert);
    sql_.setParallelMinPages(1);
  }

  /// Drains `query` through the vectorized fetchBatch() cursor surface.
  ResultSet drainBatches(const std::string& query) {
    Cursor cur = sql_.openCursor(query);
    ResultSet rs;
    RowBatch batch;
    Row row;
    while (cur.fetchBatch(batch)) {
      for (const std::uint32_t i : batch.sel) {
        batch.materializeRow(i, row);
        rs.rows.push_back(row);
      }
    }
    return rs;
  }

  /// Runs `query` serially and at several degrees; expects identical
  /// output — materialized, cursor-stepped, and batch-fetched.
  void expectDifferentialMatch(const std::string& query) {
    sql_.setExecThreads(1);
    const std::string serial = canon(sql_.exec(query));
    for (const int degree : {2, 3, 8}) {
      sql_.setExecThreads(degree);
      EXPECT_EQ(canon(sql_.exec(query)), serial)
          << "materialized mismatch at degree " << degree << ": " << query;
      // Cursor-stepped: same pipeline pulled one row at a time.
      Cursor cur = sql_.openCursor(query);
      ResultSet stepped;
      Row row;
      while (cur.next(row)) stepped.rows.push_back(row);
      EXPECT_EQ(canon(stepped), serial)
          << "cursor mismatch at degree " << degree << ": " << query;
      // Batch-fetched: same pipeline pulled a columnar batch at a time.
      EXPECT_EQ(canon(drainBatches(query)), serial)
          << "batch cursor mismatch at degree " << degree << ": " << query;
    }
    sql_.setExecThreads(1);
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

// --- differential: parallel output must be bit-identical to serial ---------

TEST_F(ParallelExecTest, GroupedAggregatesMatchSerial) {
  expectDifferentialMatch(
      "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) "
      "FROM m GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, NullGroupIsOneGroup) {
  sql_.setExecThreads(8);
  const ResultSet rs =
      sql_.exec("SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
  // groups: NULL plus 0..6.
  ASSERT_EQ(rs.rows.size(), 8u);
  EXPECT_TRUE(rs.rows[0][0].isNull());
  EXPECT_EQ(rs.rows[0][1].asInt(), 9000 / 11 + 1);  // i % 11 == 0 stripe
  expectDifferentialMatch("SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, BareColumnPicksTheSerialGroupRepresentative) {
  // SQLite bare-column semantics: the group's first row in scan order
  // supplies non-aggregated columns. The parallel merge must pick the same
  // (minimum-rank) representative as the serial scan.
  expectDifferentialMatch(
      "SELECT grp, id, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, DistinctAggregatesMatchSerial) {
  expectDifferentialMatch(
      "SELECT grp, COUNT(DISTINCT tag), SUM(DISTINCT val) "
      "FROM m GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, RealSumsMatchSerialMergeOrder) {
  // rsum merges in worker-state order (deterministic states_ indexing), and
  // the per-worker partials each sum ranks in increasing order; with the
  // .5-valued reals here the result is exact either way.
  expectDifferentialMatch("SELECT grp, SUM(r), AVG(r) FROM m GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, HavingAppliesAfterTheMerge) {
  expectDifferentialMatch(
      "SELECT grp, COUNT(*) FROM m GROUP BY grp "
      "HAVING COUNT(*) > 1200 ORDER BY grp");
}

TEST_F(ParallelExecTest, OrderByLimitWithTiesMatchesSerial) {
  // val has 180 duplicates of each value; the tie-break must reproduce the
  // serial (stable, scan-order) tie resolution through the top-K pushdown.
  expectDifferentialMatch("SELECT id, val FROM m ORDER BY val LIMIT 25");
  expectDifferentialMatch("SELECT id, val FROM m ORDER BY val DESC LIMIT 25 OFFSET 10");
}

TEST_F(ParallelExecTest, OrderByWithoutLimitMatchesSerial) {
  expectDifferentialMatch("SELECT val, id FROM m ORDER BY val, id DESC");
}

TEST_F(ParallelExecTest, DistinctMatchesSerial) {
  expectDifferentialMatch("SELECT DISTINCT tag FROM m ORDER BY tag");
  expectDifferentialMatch("SELECT DISTINCT val FROM m");  // blocking distinct
}

TEST_F(ParallelExecTest, FilteredScanMatchesSerial) {
  expectDifferentialMatch(
      "SELECT grp, COUNT(*) FROM m WHERE val >= 25 AND tag <> 't3' "
      "GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, IndexRangePathMatchesSerial) {
  // id is the PK; a range predicate turns table 0 into an index-range
  // source, exercising CursorMorselSource chunking.
  expectDifferentialMatch(
      "SELECT grp, COUNT(*) FROM m WHERE id > 1000 AND id < 8000 "
      "GROUP BY grp ORDER BY grp");
}

TEST_F(ParallelExecTest, JoinAboveParallelScanMatchesSerial) {
  sql_.exec("CREATE TABLE names (grp INTEGER, label TEXT)");
  sql_.exec(
      "INSERT INTO names VALUES (0,'zero'),(1,'one'),(2,'two'),(3,'three'),"
      "(4,'four'),(5,'five'),(6,'six')");
  expectDifferentialMatch(
      "SELECT n.label, COUNT(*) FROM m, names n WHERE m.grp = n.grp "
      "GROUP BY n.label ORDER BY n.label");
  expectDifferentialMatch(
      "SELECT m.id, n.label FROM m LEFT JOIN names n ON m.grp = n.grp "
      "ORDER BY m.id LIMIT 40");
}

TEST_F(ParallelExecTest, SubqueryInListMatchesSerial) {
  sql_.exec("CREATE TABLE wanted (g INTEGER)");
  sql_.exec("INSERT INTO wanted VALUES (1),(3),(5)");
  expectDifferentialMatch(
      "SELECT grp, COUNT(*) FROM m WHERE grp IN (SELECT g FROM wanted) "
      "GROUP BY grp ORDER BY grp");
}

// --- morsel boundary edges --------------------------------------------------

TEST_F(ParallelExecTest, EmptyTable) {
  sql_.exec("CREATE TABLE empty (a INTEGER, b INTEGER)");
  sql_.setExecThreads(8);
  EXPECT_EQ(sql_.exec("SELECT a, COUNT(*) FROM empty GROUP BY a ORDER BY a").rows.size(),
            0u);
  // Fully-aggregated SELECT over zero rows still yields the one empty-input row.
  const ResultSet rs = sql_.exec("SELECT COUNT(*), SUM(b) FROM empty ORDER BY 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].isNull());
}

TEST_F(ParallelExecTest, TableSmallerThanOneMorsel) {
  sql_.exec("CREATE TABLE tiny (a INTEGER)");
  sql_.exec("INSERT INTO tiny VALUES (3),(1),(2)");
  sql_.setExecThreads(8);
  const ResultSet rs = sql_.exec("SELECT a FROM tiny ORDER BY a");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].asInt(), 1);
  EXPECT_EQ(rs.rows[2][0].asInt(), 3);
}

TEST_F(ParallelExecTest, DegreeExceedsMorselCount) {
  // 9000 rows span only a handful of page morsels; degree 64 must clamp,
  // not hang or duplicate.
  sql_.setExecThreads(64);
  const ResultSet rs =
      sql_.exec("SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
  EXPECT_EQ(rs.rows.size(), 8u);
  std::int64_t total = 0;
  for (const Row& row : rs.rows) total += row[1].asInt();
  EXPECT_EQ(total, 9000);
}

TEST_F(ParallelExecTest, LimitZero) {
  sql_.setExecThreads(8);
  EXPECT_EQ(sql_.exec("SELECT id FROM m ORDER BY val LIMIT 0").rows.size(), 0u);
}

TEST_F(ParallelExecTest, MinPagesGateKeepsSmallTablesSerial) {
  sql_.setExecThreads(8);
  sql_.setParallelMinPages(100000);  // nothing is this big
  EXPECT_EQ(planText(sql_.exec("EXPLAIN SELECT grp, COUNT(*) FROM m GROUP BY grp"))
                .find("GATHER"),
            std::string::npos);
  sql_.setParallelMinPages(1);
  EXPECT_NE(planText(sql_.exec("EXPLAIN SELECT grp, COUNT(*) FROM m GROUP BY grp"))
                .find("GATHER"),
            std::string::npos);
}

// --- batch-size edge cases ---------------------------------------------------

TEST_F(ParallelExecTest, BatchSizeOneMatchesSerial) {
  sql_.setExecBatchRows(1);
  expectDifferentialMatch("SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
  expectDifferentialMatch("SELECT id, val FROM m WHERE val < 10 ORDER BY id");
}

TEST_F(ParallelExecTest, BatchLargerThanTableMatchesSerial) {
  sql_.setExecBatchRows(kMaxExecBatchRows);  // 65536 > the 9000-row table
  expectDifferentialMatch("SELECT id, val FROM m WHERE grp = 3 ORDER BY id");
  expectDifferentialMatch("SELECT DISTINCT tag FROM m ORDER BY tag");
}

TEST_F(ParallelExecTest, LimitCutsMidBatch) {
  sql_.setExecBatchRows(10);
  // 23 = two full batches plus a partial third; the limit lands mid-batch.
  expectDifferentialMatch("SELECT id, val FROM m ORDER BY val, id LIMIT 23");
  expectDifferentialMatch("SELECT id FROM m ORDER BY id LIMIT 23 OFFSET 5");
}

TEST_F(ParallelExecTest, FullyFilteredBatchesAreSkipped) {
  sql_.setExecBatchRows(8);
  // One matching row in 9000: nearly every batch compacts to an empty
  // selection vector, which must not surface as a premature end-of-stream.
  expectDifferentialMatch("SELECT id, tag FROM m WHERE id = 4567");
  // No matching rows at all: every batch is empty.
  expectDifferentialMatch("SELECT id FROM m WHERE val = 999 ORDER BY id");
}

TEST_F(ParallelExecTest, SetExecBatchRowsValidates) {
  EXPECT_THROW(sql_.setExecBatchRows(0), util::SqlError);
  EXPECT_THROW(sql_.setExecBatchRows(kMaxExecBatchRows + 1), util::SqlError);
  sql_.setExecBatchRows(1);                  // boundary values are accepted
  sql_.setExecBatchRows(kMaxExecBatchRows);
}

// --- plan shape gating -------------------------------------------------------

TEST_F(ParallelExecTest, StreamingShapesStaySerial) {
  sql_.setExecThreads(8);
  // Plain projection streams; no blocking operator above -> no gather.
  EXPECT_EQ(planText(sql_.exec("EXPLAIN SELECT id FROM m")).find("GATHER"),
            std::string::npos);
  // LIMIT without ORDER BY stops the scan early; parallelism is waste.
  EXPECT_EQ(planText(sql_.exec("EXPLAIN SELECT id FROM m LIMIT 5")).find("GATHER"),
            std::string::npos);
  // Degree 1 is exactly the serial path.
  sql_.setExecThreads(1);
  EXPECT_EQ(
      planText(sql_.exec("EXPLAIN SELECT grp, COUNT(*) FROM m GROUP BY grp"))
          .find("GATHER"),
      std::string::npos);
}

TEST_F(ParallelExecTest, ExplainShowsGatherSubtree) {
  sql_.setExecThreads(4);
  const std::string plan = planText(
      sql_.exec("EXPLAIN SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp"));
  EXPECT_NE(plan.find("GATHER (workers=4, partial aggregate)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("PARTIAL AGGREGATE"), std::string::npos) << plan;
  EXPECT_NE(plan.find("SCAN m AS m"), std::string::npos) << plan;

  const std::string topk =
      planText(sql_.exec("EXPLAIN SELECT id FROM m ORDER BY val LIMIT 7"));
  EXPECT_NE(topk.find("GATHER (workers=4, top-k 7)"), std::string::npos) << topk;
}

TEST_F(ParallelExecTest, ExplainAnalyzeShowsPerWorkerStats) {
  sql_.setExecThreads(4);
  const std::string plan = planText(sql_.exec(
      "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp"));
  EXPECT_NE(plan.find("GATHER (workers=4, partial aggregate) (actual rows=8"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("PER-WORKER rows=["), std::string::npos) << plan;
  // The scan line aggregates all workers: every row is scanned exactly once.
  EXPECT_NE(plan.find("SCAN m AS m (actual rows=9000"), std::string::npos) << plan;
}

// --- cursor-pin interplay ----------------------------------------------------

TEST_F(ParallelExecTest, OpenCursorDuringParallelQueryKeepsPin) {
  sql_.setExecThreads(4);
  // A stepping cursor over a parallel SELECT holds the storage pin from
  // open to close; DDL must fail while it is open and succeed after.
  Cursor cur = sql_.openCursor("SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
  Row row;
  ASSERT_TRUE(cur.next(row));  // triggers the parallel run under the pin
  EXPECT_GT(db_->openCursorCount(), 0u);
  EXPECT_THROW(sql_.exec("DROP TABLE m"), util::StorageError);
  while (cur.next(row)) {
  }
  // Exhaustion auto-closes and releases the pin.
  EXPECT_EQ(db_->openCursorCount(), 0u);
  EXPECT_NO_THROW(sql_.exec("CREATE TABLE after_pin (x INTEGER)"));
}

// --- metrics -----------------------------------------------------------------

TEST_F(ParallelExecTest, ExecMetricsMove) {
  auto& reg = obs::Registry::global();
  const auto morsels0 = reg.counter("pt_exec_morsels_dispatched_total").value();
  const auto queries0 = reg.counter("pt_exec_parallel_queries_total").value();
  const auto waits0 = reg.histogram("pt_exec_gather_wait_ms").count();
  sql_.setExecThreads(4);
  sql_.exec("SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp");
  EXPECT_GT(reg.counter("pt_exec_morsels_dispatched_total").value(), morsels0);
  EXPECT_EQ(reg.counter("pt_exec_parallel_queries_total").value(), queries0 + 1);
  EXPECT_EQ(reg.histogram("pt_exec_gather_wait_ms").count(), waits0 + 1);
  EXPECT_GE(reg.gauge("pt_exec_pool_threads").value(), 1);
}

// --- ExecPool unit tests ------------------------------------------------------

TEST(ExecPoolTest, RunsEverySlotExactlyOnce) {
  auto& pool = ExecPool::shared();
  std::vector<std::atomic<int>> hits(9);
  pool.run(8, [&](std::size_t slot) { hits[slot].fetch_add(1); });
  for (std::size_t s = 0; s < hits.size(); ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(ExecPoolTest, SlotsRunOnDistinctThreadsWhenPoolIsFree) {
  auto& pool = ExecPool::shared();
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.run(3, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // The caller always participates; pool threads may add more (all four on
  // a multicore box, fewer when the pool is contended or single-core).
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
  EXPECT_GE(pool.threadCount(), 3u);
}

TEST(ExecPoolTest, WorkerExceptionPropagatesToTheCaller) {
  auto& pool = ExecPool::shared();
  EXPECT_THROW(
      pool.run(4,
               [&](std::size_t slot) {
                 if (slot == 2) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool survives a failed job and serves the next one.
  std::atomic<int> ran{0};
  pool.run(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 5);
}

TEST(ExecPoolTest, CallerExceptionWinsAndBarrierStillHolds) {
  auto& pool = ExecPool::shared();
  std::atomic<int> others{0};
  try {
    pool.run(3, [&](std::size_t slot) {
      if (slot == 0) throw std::logic_error("caller");
      others.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "caller");
  }
  // run() only returns after the barrier: every pool slot finished.
  EXPECT_EQ(others.load(), 3);
}

TEST(ExecPoolTest, ZeroExtraRunsInline) {
  auto& pool = ExecPool::shared();
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id seen;
  pool.run(0, [&](std::size_t slot) {
    EXPECT_EQ(slot, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, self);
}

TEST(ExecPoolTest, ConcurrentJobsShareThePool) {
  // Two "sessions" issue jobs concurrently; both must complete (no lost
  // wakeups, no cross-job slot mixups).
  auto& pool = ExecPool::shared();
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread other([&] { pool.run(4, [&](std::size_t) { b.fetch_add(1); }); });
  pool.run(4, [&](std::size_t) { a.fetch_add(1); });
  other.join();
  EXPECT_EQ(a.load(), 5);
  EXPECT_EQ(b.load(), 5);
}

}  // namespace
}  // namespace perftrack::minidb::sql
