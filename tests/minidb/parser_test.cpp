#include "minidb/sql/parser.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

TEST(Parser, SimpleSelect) {
  const Statement stmt = parseStatement("SELECT a, b FROM t WHERE a = 1");
  ASSERT_EQ(stmt.kind, Statement::Kind::Select);
  const SelectStmt& sel = *stmt.select;
  EXPECT_EQ(sel.items.size(), 2u);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].table, "t");
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind, Expr::Kind::Binary);
  EXPECT_EQ(sel.where->op, BinaryOp::Eq);
}

TEST(Parser, SelectStar) {
  const Statement stmt = parseStatement("SELECT * FROM t");
  EXPECT_EQ(stmt.select->items.size(), 1u);
  EXPECT_EQ(stmt.select->items[0].expr, nullptr);
}

TEST(Parser, JoinWithOnAndAliases) {
  const Statement stmt =
      parseStatement("SELECT r.name FROM resource_item r JOIN focus f ON r.id = f.rid");
  const SelectStmt& sel = *stmt.select;
  ASSERT_EQ(sel.from.size(), 2u);
  EXPECT_EQ(sel.from[0].alias, "r");
  EXPECT_EQ(sel.from[1].alias, "f");
  EXPECT_NE(sel.from[1].join_on, nullptr);
  EXPECT_EQ(sel.from[0].join_on, nullptr);
}

TEST(Parser, GroupByHavingOrderLimit) {
  const Statement stmt = parseStatement(
      "SELECT name, COUNT(*) AS n FROM t GROUP BY name HAVING COUNT(*) > 2 "
      "ORDER BY n DESC, name ASC LIMIT 10 OFFSET 5");
  const SelectStmt& sel = *stmt.select;
  EXPECT_EQ(sel.group_by.size(), 1u);
  EXPECT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_FALSE(sel.order_by[1].descending);
  EXPECT_EQ(sel.limit, 10);
  EXPECT_EQ(sel.offset, 5);
}

TEST(Parser, OperatorPrecedence) {
  // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3)
  const Statement stmt = parseStatement("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  const Expr& where = *stmt.select->where;
  ASSERT_EQ(where.op, BinaryOp::Or);
  EXPECT_EQ(where.rhs->op, BinaryOp::And);
}

TEST(Parser, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  const Statement stmt = parseStatement("SELECT 1 + 2 * 3");
  const Expr& e = *stmt.select->items[0].expr;
  ASSERT_EQ(e.op, BinaryOp::Add);
  EXPECT_EQ(e.rhs->op, BinaryOp::Mul);
}

TEST(Parser, NegativeNumberLiteralsFolded) {
  const Statement stmt = parseStatement("SELECT -5, -2.5");
  EXPECT_EQ(stmt.select->items[0].expr->value.asInt(), -5);
  EXPECT_DOUBLE_EQ(stmt.select->items[1].expr->value.asReal(), -2.5);
}

TEST(Parser, IsNullAndIsNotNull) {
  const Statement stmt = parseStatement("SELECT 1 FROM t WHERE a IS NULL AND b IS NOT NULL");
  const Expr& where = *stmt.select->where;
  EXPECT_EQ(where.lhs->kind, Expr::Kind::IsNull);
  EXPECT_FALSE(where.lhs->negated);
  EXPECT_EQ(where.rhs->kind, Expr::Kind::IsNull);
  EXPECT_TRUE(where.rhs->negated);
}

TEST(Parser, LikeAndNotLike) {
  const Statement stmt =
      parseStatement("SELECT 1 FROM t WHERE a LIKE 'x%' AND b NOT LIKE '%y'");
  const Expr& where = *stmt.select->where;
  EXPECT_EQ(where.lhs->kind, Expr::Kind::Like);
  EXPECT_FALSE(where.lhs->negated);
  EXPECT_TRUE(where.rhs->negated);
}

TEST(Parser, InList) {
  const Statement stmt = parseStatement("SELECT 1 FROM t WHERE a IN (1, 2, 3)");
  const Expr& where = *stmt.select->where;
  EXPECT_EQ(where.kind, Expr::Kind::InList);
  EXPECT_EQ(where.list.size(), 3u);
}

TEST(Parser, BetweenDesugarsToRange) {
  const Statement stmt = parseStatement("SELECT 1 FROM t WHERE a BETWEEN 2 AND 5");
  const Expr& where = *stmt.select->where;
  ASSERT_EQ(where.op, BinaryOp::And);
  EXPECT_EQ(where.lhs->op, BinaryOp::Ge);
  EXPECT_EQ(where.rhs->op, BinaryOp::Le);
}

TEST(Parser, AggregateFunctions) {
  const Statement stmt =
      parseStatement("SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v), COUNT(DISTINCT v) FROM t");
  const auto& items = stmt.select->items;
  ASSERT_EQ(items.size(), 6u);
  EXPECT_EQ(items[0].expr->agg, AggFunc::Count);
  EXPECT_EQ(items[0].expr->lhs, nullptr);
  EXPECT_EQ(items[1].expr->agg, AggFunc::Sum);
  EXPECT_TRUE(items[5].expr->agg_distinct);
}

TEST(Parser, InsertWithColumns) {
  const Statement stmt =
      parseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_EQ(stmt.kind, Statement::Kind::Insert);
  EXPECT_EQ(stmt.insert->columns.size(), 2u);
  EXPECT_EQ(stmt.insert->rows.size(), 2u);
}

TEST(Parser, InsertWithoutColumns) {
  const Statement stmt = parseStatement("INSERT INTO t VALUES (NULL, 2.5)");
  EXPECT_TRUE(stmt.insert->columns.empty());
  EXPECT_TRUE(stmt.insert->rows[0][0]->value.isNull());
}

TEST(Parser, UpdateStatement) {
  const Statement stmt = parseStatement("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'");
  ASSERT_EQ(stmt.kind, Statement::Kind::Update);
  EXPECT_EQ(stmt.update->assignments.size(), 2u);
  EXPECT_NE(stmt.update->where, nullptr);
}

TEST(Parser, DeleteStatement) {
  const Statement stmt = parseStatement("DELETE FROM t WHERE a = 1");
  ASSERT_EQ(stmt.kind, Statement::Kind::Delete);
  EXPECT_NE(stmt.del->where, nullptr);
}

TEST(Parser, CreateTableWithPrimaryKey) {
  const Statement stmt = parseStatement(
      "CREATE TABLE resource_item (id INTEGER PRIMARY KEY, name TEXT, weight REAL)");
  ASSERT_EQ(stmt.kind, Statement::Kind::CreateTable);
  const CreateTableStmt& ct = *stmt.create_table;
  EXPECT_EQ(ct.table, "resource_item");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.primary_key, 0);
  EXPECT_EQ(ct.columns[1].second, ColumnType::Text);
  EXPECT_EQ(ct.columns[2].second, ColumnType::Real);
}

TEST(Parser, CreateTableIfNotExists) {
  const Statement stmt = parseStatement("CREATE TABLE IF NOT EXISTS t (a INTEGER)");
  EXPECT_TRUE(stmt.create_table->if_not_exists);
}

TEST(Parser, CreateUniqueIndex) {
  const Statement stmt = parseStatement("CREATE UNIQUE INDEX i ON t (a, b)");
  ASSERT_EQ(stmt.kind, Statement::Kind::CreateIndex);
  EXPECT_TRUE(stmt.create_index->unique);
  EXPECT_EQ(stmt.create_index->columns.size(), 2u);
}

TEST(Parser, DropStatements) {
  EXPECT_EQ(parseStatement("DROP TABLE t").drop->what, DropStmt::What::Table);
  EXPECT_EQ(parseStatement("DROP INDEX i").drop->what, DropStmt::What::Index);
  EXPECT_TRUE(parseStatement("DROP TABLE IF EXISTS t").drop->if_exists);
}

TEST(Parser, TransactionStatements) {
  EXPECT_EQ(parseStatement("BEGIN").txn->kind, TxnStmt::Kind::Begin);
  EXPECT_EQ(parseStatement("COMMIT").txn->kind, TxnStmt::Kind::Commit);
  EXPECT_EQ(parseStatement("ROLLBACK").txn->kind, TxnStmt::Kind::Rollback);
}

TEST(Parser, ExplainPrefix) {
  const Statement stmt = parseStatement("EXPLAIN SELECT * FROM t");
  EXPECT_TRUE(stmt.explain);
}

TEST(Parser, TrailingSemicolonAllowed) {
  EXPECT_NO_THROW(parseStatement("SELECT 1;"));
}

TEST(Parser, SyntaxErrorsThrow) {
  EXPECT_THROW(parseStatement("SELECT FROM"), util::SqlError);
  EXPECT_THROW(parseStatement("INSERT t VALUES (1)"), util::SqlError);
  EXPECT_THROW(parseStatement("SELECT 1 extra garbage ;;"), util::SqlError);
  EXPECT_THROW(parseStatement("CREATE TABLE t (a BOGUSTYPE)"), util::SqlError);
  EXPECT_THROW(parseStatement(""), util::SqlError);
}

}  // namespace
}  // namespace perftrack::minidb::sql
