// Prepared statements: '?' parameters, bind/rebind semantics, plan caching
// with epoch revalidation, and the IN-list multi-point probe access path.
#include "minidb/sql/executor.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::minidb::sql {
namespace {

using util::SqlError;

// EXPLAIN returns the operator tree, one row per operator; join the lines so
// assertions can search the whole plan.
std::string planText(const ResultSet& rs) {
  std::string text;
  for (const auto& row : rs.rows) {
    text += row[0].asText();
    text += '\n';
  }
  return text;
}

class PreparedTest : public ::testing::Test {
 protected:
  PreparedTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, app TEXT, nprocs INTEGER, "
              "seconds REAL)");
    sql_.exec("INSERT INTO runs (app, nprocs, seconds) VALUES "
              "('irs', 8, 120.5), ('irs', 16, 65.2), ('irs', 32, 40.1), "
              "('smg', 8, 300.0), ('smg', 16, 180.0), ('smg', 32, 110.0)");
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

TEST_F(PreparedTest, BindExecuteAndRebind) {
  PreparedStatement stmt = sql_.prepare("SELECT nprocs FROM runs WHERE app = ?");
  EXPECT_EQ(stmt.paramCount(), 1);
  stmt.bind(1, Value("irs"));
  EXPECT_EQ(stmt.execute().rows.size(), 3u);
  // Rebinding replaces the old value; no re-parse happens.
  stmt.bind(1, Value("smg"));
  EXPECT_EQ(stmt.execute().rows.size(), 3u);
  stmt.bind(1, Value("nosuch"));
  EXPECT_EQ(stmt.execute().rows.size(), 0u);
}

TEST_F(PreparedTest, BindingsPersistAcrossExecutions) {
  PreparedStatement stmt =
      sql_.prepare("SELECT id FROM runs WHERE app = ? AND nprocs >= ?");
  stmt.bindAll({Value("smg"), Value(16)});
  EXPECT_EQ(stmt.execute().rows.size(), 2u);
  EXPECT_EQ(stmt.execute().rows.size(), 2u);  // same bindings, same answer
}

TEST_F(PreparedTest, ExecuteWithParamsIsBindAllPlusExecute) {
  PreparedStatement stmt = sql_.prepare("SELECT id FROM runs WHERE nprocs = ?");
  EXPECT_EQ(stmt.execute({Value(8)}).rows.size(), 2u);
  EXPECT_EQ(stmt.execute({Value(32)}).rows.size(), 2u);
}

TEST_F(PreparedTest, BindIndexOutOfRangeThrows) {
  PreparedStatement stmt = sql_.prepare("SELECT id FROM runs WHERE app = ?");
  EXPECT_THROW(stmt.bind(0, Value("irs")), SqlError);
  EXPECT_THROW(stmt.bind(2, Value("irs")), SqlError);
}

TEST_F(PreparedTest, BindAllSizeMismatchThrows) {
  PreparedStatement stmt =
      sql_.prepare("SELECT id FROM runs WHERE app = ? AND nprocs = ?");
  EXPECT_THROW(stmt.bindAll({Value("irs")}), SqlError);
  EXPECT_THROW(stmt.bindAll({Value("irs"), Value(8), Value(9)}), SqlError);
}

TEST_F(PreparedTest, ExecuteWithUnboundParameterThrows) {
  PreparedStatement stmt =
      sql_.prepare("SELECT id FROM runs WHERE app = ? AND nprocs = ?");
  EXPECT_THROW(stmt.execute(), SqlError);
  stmt.bind(1, Value("irs"));
  EXPECT_THROW(stmt.execute(), SqlError);  // param 2 still unbound
  stmt.bind(2, Value(8));
  EXPECT_EQ(stmt.execute().rows.size(), 1u);
}

TEST_F(PreparedTest, ClearBindingsRequiresRebind) {
  PreparedStatement stmt = sql_.prepare("SELECT id FROM runs WHERE app = ?");
  stmt.bind(1, Value("irs"));
  EXPECT_EQ(stmt.execute().rows.size(), 3u);
  stmt.clearBindings();
  EXPECT_THROW(stmt.execute(), SqlError);
}

TEST_F(PreparedTest, NullParameterIsALegalBinding) {
  // NULL never compares equal (SQL three-valued logic), so = ? with a NULL
  // binding matches nothing — but executing must not throw.
  PreparedStatement stmt = sql_.prepare("SELECT id FROM runs WHERE app = ?");
  stmt.bind(1, Value::null());
  EXPECT_EQ(stmt.execute().rows.size(), 0u);

  // And NULL can be stored through a parameter.
  PreparedStatement ins =
      sql_.prepare("INSERT INTO runs (app, nprocs, seconds) VALUES (?, ?, ?)");
  ins.execute({Value::null(), Value(64), Value(1.0)});
  EXPECT_EQ(sql_.exec("SELECT id FROM runs WHERE app IS NULL").rows.size(), 1u);
}

TEST_F(PreparedTest, ExecRejectsParameterizedSql) {
  EXPECT_THROW(sql_.exec("SELECT id FROM runs WHERE app = ?"), SqlError);
}

TEST_F(PreparedTest, RepeatedParameterizedInsert) {
  PreparedStatement ins =
      sql_.prepare("INSERT INTO runs (app, nprocs, seconds) VALUES (?, ?, ?)");
  for (int np : {64, 128, 256}) {
    const ResultSet rs = ins.execute({Value("sweep"), Value(np), Value(np * 0.5)});
    EXPECT_EQ(rs.rows_affected, 1);
    EXPECT_GT(rs.last_insert_id, 6);
  }
  EXPECT_EQ(sql_.exec("SELECT id FROM runs WHERE app = 'sweep'").rows.size(), 3u);
}

TEST_F(PreparedTest, CachedPlanRevalidatesAfterDdl) {
  PreparedStatement stmt = sql_.prepare("SELECT id FROM runs WHERE app = ?");
  stmt.bind(1, Value("irs"));
  EXPECT_EQ(stmt.execute().rows.size(), 3u);  // plan built: heap scan
  sql_.exec("CREATE INDEX runs_by_app ON runs (app)");
  // Schema epoch bumped -> the statement replans instead of reusing a plan
  // that predates the index (or, worse, one holding stale catalog pointers).
  EXPECT_EQ(stmt.execute().rows.size(), 3u);
  sql_.exec("DROP INDEX runs_by_app");
  EXPECT_EQ(stmt.execute().rows.size(), 3u);
}

TEST_F(PreparedTest, ExplainThroughPreparedReflectsIndexToggle) {
  sql_.exec("CREATE INDEX runs_by_app ON runs (app)");
  PreparedStatement stmt = sql_.prepare("EXPLAIN SELECT id FROM runs WHERE app = ?");
  stmt.bind(1, Value("irs"));
  EXPECT_NE(planText(stmt.execute()).find("USING INDEX runs_by_app"),
            std::string::npos);
  sql_.setUseIndexes(false);
  // The cached plan was built under use_indexes=true; it must be rebuilt.
  const std::string scan_plan = planText(stmt.execute());
  EXPECT_NE(scan_plan.find("SCAN runs AS runs"), std::string::npos);
  EXPECT_EQ(scan_plan.find("USING INDEX"), std::string::npos);
  sql_.setUseIndexes(true);
  EXPECT_NE(planText(stmt.execute()).find("USING INDEX"), std::string::npos);
}

// --- IN-list multi-point probe access path ---------------------------------

TEST_F(PreparedTest, ExplainInListUsesMultiPointProbe) {
  // Pin the inverted-index path off: this test documents the B-tree probe
  // (the posting-path twin lives in invidx_test.cpp).
  sql_.setInvidx(false);
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  const ResultSet rs =
      sql_.exec("EXPLAIN SELECT id FROM runs WHERE nprocs IN (8, 32, 99)");
  const std::string plan = planText(rs);
  EXPECT_NE(plan.find("USING INDEX runs_by_np"), std::string::npos) << plan;
  EXPECT_NE(plan.find("IN multi-point probe, 3 keys"), std::string::npos) << plan;
}

TEST_F(PreparedTest, ExplainInListFallsBackToScanWithoutIndexes) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  sql_.setUseIndexes(false);
  const ResultSet rs =
      sql_.exec("EXPLAIN SELECT id FROM runs WHERE nprocs IN (8, 32)");
  EXPECT_NE(planText(rs).find("SCAN runs AS runs"), std::string::npos);
  EXPECT_EQ(planText(rs).find("USING INDEX"), std::string::npos);
}

TEST_F(PreparedTest, NegatedInListIsNotProbed) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  const ResultSet rs =
      sql_.exec("EXPLAIN SELECT id FROM runs WHERE nprocs NOT IN (8, 32)");
  EXPECT_NE(planText(rs).find("SCAN runs AS runs"), std::string::npos);
  EXPECT_EQ(planText(rs).find("USING INDEX"), std::string::npos);
}

TEST_F(PreparedTest, EqualityBeatsInListWhenBothApply) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  const ResultSet rs = sql_.exec(
      "EXPLAIN SELECT id FROM runs WHERE nprocs IN (8, 16, 32) AND nprocs = 16");
  EXPECT_NE(planText(rs).find("(nprocs=?)"), std::string::npos);
}

TEST_F(PreparedTest, InListProbeMatchesHeapScanResults) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  const char* q = "SELECT id FROM runs WHERE nprocs IN (8, 32) ORDER BY id";
  const ResultSet indexed = sql_.exec(q);
  sql_.setUseIndexes(false);
  const ResultSet scanned = sql_.exec(q);
  ASSERT_EQ(indexed.rows.size(), 4u);
  ASSERT_EQ(scanned.rows.size(), indexed.rows.size());
  for (std::size_t i = 0; i < indexed.rows.size(); ++i) {
    EXPECT_EQ(indexed.rows[i][0].asInt(), scanned.rows[i][0].asInt());
  }
}

TEST_F(PreparedTest, InListProbeDedupsAndIgnoresNullKeys) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  // Duplicate keys must not duplicate rows; NULL list items match nothing.
  const ResultSet rs = sql_.exec(
      "SELECT id FROM runs WHERE nprocs IN (8, 8, NULL, 8) ORDER BY id");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(PreparedTest, InListProbeWithBoundParameters) {
  sql_.exec("CREATE INDEX runs_by_np ON runs (nprocs)");
  PreparedStatement stmt =
      sql_.prepare("SELECT id FROM runs WHERE nprocs IN (?, ?) ORDER BY id");
  EXPECT_EQ(stmt.execute({Value(8), Value(32)}).rows.size(), 4u);
  EXPECT_EQ(stmt.execute({Value(16), Value(16)}).rows.size(), 2u);
  EXPECT_EQ(stmt.execute({Value(7), Value(9)}).rows.size(), 0u);
}

TEST_F(PreparedTest, InListProbeOnJoinColumn) {
  sql_.setInvidx(false);  // assert the B-tree probe shape specifically
  sql_.exec("CREATE TABLE tags (run_id INTEGER, tag TEXT)");
  sql_.exec("CREATE INDEX tags_by_run ON tags (run_id)");
  sql_.exec("INSERT INTO tags VALUES (1, 'a'), (2, 'b'), (4, 'c'), (4, 'd')");
  const ResultSet plan = sql_.exec(
      "EXPLAIN SELECT t.tag FROM tags t WHERE t.run_id IN (1, 4)");
  EXPECT_NE(planText(plan).find("multi-point probe"), std::string::npos);
  const ResultSet rs = sql_.exec(
      "SELECT t.tag FROM tags t WHERE t.run_id IN (1, 4) ORDER BY t.tag");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].asText(), "a");
  EXPECT_EQ(rs.rows[2][0].asText(), "d");
}

}  // namespace
}  // namespace perftrack::minidb::sql
