// Property-based tests of the SQL engine: for randomized table contents,
// the engine must agree with straightforward reference computations, and
// the planner's index choices must never change results.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "minidb/sql/executor.h"
#include "util/rng.h"

namespace perftrack::minidb::sql {
namespace {

struct Dataset {
  std::unique_ptr<Database> db;
  // Reference copy: (group, score, name) rows.
  std::vector<std::tuple<std::int64_t, double, std::string>> rows;
};

Dataset makeDataset(std::uint64_t seed, int row_count) {
  Dataset data;
  data.db = Database::openMemory();
  Engine sql(*data.db);
  sql.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, score REAL, "
           "name TEXT)");
  sql.exec("CREATE INDEX t_by_grp ON t (grp)");
  sql.exec("CREATE INDEX t_by_score ON t (score)");
  util::Rng rng(seed);
  for (int i = 0; i < row_count; ++i) {
    const std::int64_t grp = rng.uniformInt(0, 9);
    // Round-trip through the SQL literal so the reference copy holds the
    // exact value stored (std::to_string keeps 6 decimals).
    const double score = std::stod(std::to_string(rng.uniform(0.0, 100.0)));
    const std::string name = "name" + std::to_string(rng.uniformInt(0, 25));
    data.rows.emplace_back(grp, score, name);
    sql.exec("INSERT INTO t (grp, score, name) VALUES (" + std::to_string(grp) + ", " +
             std::to_string(score) + ", '" + name + "')");
  }
  return data;
}

class SqlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlProperty, IndexAndScanPlansAgree) {
  Dataset data = makeDataset(GetParam(), 300);
  Engine sql(*data.db);
  for (const std::string query :
       {"SELECT id FROM t WHERE grp = 4 ORDER BY id",
        "SELECT id FROM t WHERE score > 50 ORDER BY id",
        "SELECT id FROM t WHERE score >= 25 AND score <= 75 ORDER BY id",
        "SELECT id FROM t WHERE grp = 2 AND score < 40 ORDER BY id"}) {
    sql.setUseIndexes(true);
    const ResultSet indexed = sql.exec(query);
    sql.setUseIndexes(false);
    const ResultSet scanned = sql.exec(query);
    ASSERT_EQ(indexed.rows.size(), scanned.rows.size()) << query;
    for (std::size_t i = 0; i < indexed.rows.size(); ++i) {
      EXPECT_EQ(indexed.rows[i][0].asInt(), scanned.rows[i][0].asInt()) << query;
    }
  }
}

TEST_P(SqlProperty, CountsMatchReference) {
  Dataset data = makeDataset(GetParam(), 250);
  Engine sql(*data.db);
  for (std::int64_t grp = 0; grp < 10; ++grp) {
    const auto expected = std::count_if(
        data.rows.begin(), data.rows.end(),
        [&](const auto& row) { return std::get<0>(row) == grp; });
    const ResultSet rs =
        sql.exec("SELECT COUNT(*) FROM t WHERE grp = " + std::to_string(grp));
    EXPECT_EQ(rs.rows[0][0].asInt(), expected) << "grp=" << grp;
  }
}

TEST_P(SqlProperty, GroupByMatchesReferenceAggregation) {
  Dataset data = makeDataset(GetParam(), 250);
  Engine sql(*data.db);
  std::map<std::int64_t, std::pair<int, double>> reference;  // grp -> (n, sum)
  for (const auto& [grp, score, name] : data.rows) {
    reference[grp].first++;
    reference[grp].second += score;
  }
  const ResultSet rs =
      sql.exec("SELECT grp, COUNT(*), SUM(score) FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(rs.rows.size(), reference.size());
  std::size_t i = 0;
  for (const auto& [grp, agg] : reference) {
    EXPECT_EQ(rs.rows[i][0].asInt(), grp);
    EXPECT_EQ(rs.rows[i][1].asInt(), agg.first);
    EXPECT_NEAR(rs.rows[i][2].asReal(), agg.second, 1e-6);
    ++i;
  }
}

TEST_P(SqlProperty, OrderByMatchesStdSort) {
  Dataset data = makeDataset(GetParam(), 200);
  Engine sql(*data.db);
  std::vector<double> expected;
  for (const auto& row : data.rows) expected.push_back(std::get<1>(row));
  std::sort(expected.begin(), expected.end());
  const ResultSet rs = sql.exec("SELECT score FROM t ORDER BY score");
  ASSERT_EQ(rs.rows.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(rs.rows[i][0].asReal(), expected[i]);
  }
  // DESC is the exact reverse.
  const ResultSet desc = sql.exec("SELECT score FROM t ORDER BY score DESC");
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(desc.rows[i][0].asReal(), expected[expected.size() - 1 - i]);
  }
}

TEST_P(SqlProperty, DeleteThenCountIsConsistent) {
  Dataset data = makeDataset(GetParam(), 200);
  Engine sql(*data.db);
  const auto before = sql.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt();
  const auto doomed = std::count_if(
      data.rows.begin(), data.rows.end(),
      [](const auto& row) { return std::get<1>(row) < 30.0; });
  const ResultSet del = sql.exec("DELETE FROM t WHERE score < 30");
  EXPECT_EQ(del.rows_affected, doomed);
  EXPECT_EQ(sql.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt(), before - doomed);
  // Index consistency after bulk delete: indexed query equals scan.
  sql.setUseIndexes(true);
  const auto indexed = sql.exec("SELECT COUNT(*) FROM t WHERE grp = 3");
  sql.setUseIndexes(false);
  const auto scanned = sql.exec("SELECT COUNT(*) FROM t WHERE grp = 3");
  EXPECT_EQ(indexed.rows[0][0].asInt(), scanned.rows[0][0].asInt());
}

TEST_P(SqlProperty, JoinMatchesNestedLoopsReference) {
  Dataset data = makeDataset(GetParam(), 120);
  Engine sql(*data.db);
  sql.exec("CREATE TABLE grps (gid INTEGER, label TEXT)");
  for (int g = 0; g < 10; g += 2) {  // only even groups labeled
    sql.exec("INSERT INTO grps VALUES (" + std::to_string(g) + ", 'even" +
             std::to_string(g) + "')");
  }
  std::size_t expected = 0;
  for (const auto& row : data.rows) {
    if (std::get<0>(row) % 2 == 0) ++expected;
  }
  const ResultSet rs =
      sql.exec("SELECT t.id FROM t JOIN grps g ON t.grp = g.gid");
  EXPECT_EQ(rs.rows.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace perftrack::minidb::sql
