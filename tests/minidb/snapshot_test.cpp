// WAL snapshot-read semantics (DESIGN.md §5.7): a reader pinned to a
// committed version never sees — and never blocks — later commits.
//
// Covers, at the embedded Database/Pager level:
//   * a snapshot cursor stays frozen while committed DML lands around it;
//   * a writer's rollback cannot disturb an open snapshot cursor;
//   * SnapshotScope redirects storage reads to the pinned version, and a
//     SnapshotToken carries that pin onto a worker thread;
//   * an explicit checkpoint folds the WAL while a snapshot stays readable;
//   * concurrent committers sharing group-commit fsyncs lose no commit;
//   * a reader/writer stress run in which every scan observes exactly one
//     committed generation (run under TSan by scripts/ci.sh, label `wal`).
//
// The server-level half of this matrix (snapshots over the wire protocol)
// lives in tests/server/wal_isolation_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "minidb/sql/executor.h"
#include "util/tempdir.h"

namespace perftrack::minidb {
namespace {

OpenOptions walOptions(std::uint32_t autocheckpoint = 0) {
  OpenOptions options;
  options.durability = Durability::Wal;
  options.wal_autocheckpoint = autocheckpoint;
  return options;
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest()
      : path_(tmp_.file("snap.db").string()),
        db_(Database::open(path_, walOptions())),
        sql_(*db_) {
    sql_.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    commit("INSERT INTO t (v) VALUES (10), (20), (30)");
  }

  /// Runs one DML statement as its own committed transaction. Embedded
  /// callers persist on COMMIT (the server wraps every autocommit write the
  /// same way); a bare exec would only mutate the working state.
  void commit(const std::string& dml) {
    sql_.exec("BEGIN");
    sql_.exec(dml);
    sql_.exec("COMMIT");
  }

  /// Drains `cur` and returns the values of its single column, in order.
  static std::vector<std::int64_t> drain(sql::Cursor& cur) {
    std::vector<std::int64_t> out;
    Row row;
    while (cur.next(row)) out.push_back(row[0].asInt());
    return out;
  }

  /// COUNT(*) of t through a plain (non-snapshot) statement.
  std::int64_t liveCount() {
    return sql_.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt();
  }

  util::TempDir tmp_;
  std::string path_;
  std::unique_ptr<Database> db_;
  sql::Engine sql_;
};

TEST_F(SnapshotTest, SnapshotCursorSeesFrozenVersion) {
  sql::PreparedStatement stmt = sql_.prepare("SELECT v FROM t ORDER BY id");
  sql::Cursor cur = stmt.openCursor(db_->takeSnapshot());

  Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_EQ(row[0].asInt(), 10);

  // Committed DML lands mid-scan: the cursor's snapshot predates it.
  commit("UPDATE t SET v = v + 1000");
  commit("INSERT INTO t (v) VALUES (40)");

  EXPECT_EQ(drain(cur), (std::vector<std::int64_t>{20, 30}));

  // A fresh statement (no snapshot) sees the post-commit state.
  EXPECT_EQ(liveCount(), 4);
  EXPECT_EQ(sql_.exec("SELECT MIN(v) FROM t").rows[0][0].asInt(), 40);
}

TEST_F(SnapshotTest, SnapshotCursorSurvivesWriterRollback) {
  sql::PreparedStatement stmt = sql_.prepare("SELECT v FROM t ORDER BY id");
  sql::Cursor cur = stmt.openCursor(db_->takeSnapshot());
  Row row;
  ASSERT_TRUE(cur.next(row));

  // A rolled-back transaction bumps the schema epoch (cached plans replan),
  // but a snapshot cursor reads the pinned version and must keep streaming.
  sql_.exec("BEGIN");
  sql_.exec("UPDATE t SET v = -1");
  sql_.exec("DELETE FROM t WHERE id = 2");
  sql_.exec("ROLLBACK");

  EXPECT_EQ(drain(cur), (std::vector<std::int64_t>{20, 30}));
  EXPECT_EQ(liveCount(), 3);
}

TEST_F(SnapshotTest, ScopeRedirectsStorageReadsAndTokenCrossesThreads) {
  Pager::ReadSnapshot snap = db_->takeSnapshot();
  commit("UPDATE t SET v = 7");
  commit("INSERT INTO t (v) VALUES (7)");

  auto countRows = [&] {
    std::int64_t n = 0;
    db_->scan("t", [&](RecordId, const Row&) {
      ++n;
      return true;
    });
    return n;
  };

  {
    Pager::SnapshotScope scope(snap);
    EXPECT_EQ(countRows(), 3);  // frozen: pre-update row count
    std::int64_t max_v = 0;
    db_->scan("t", [&](RecordId, const Row& row) {
      max_v = std::max(max_v, row[1].asInt());
      return true;
    });
    EXPECT_EQ(max_v, 30);  // the UPDATE to 7 is invisible under the scope
  }
  EXPECT_EQ(countRows(), 4);  // scope gone: reads resolve to the live state

  // A worker thread joins the same snapshot through its token (the parallel
  // executor's propagation path); the originating pin outlives the scope.
  std::int64_t worker_count = -1;
  std::thread worker([&] {
    Pager::SnapshotScope scope(snap.token());
    worker_count = countRows();
  });
  worker.join();
  EXPECT_EQ(worker_count, 3);
}

TEST_F(SnapshotTest, CheckpointFoldsWalWhileSnapshotStaysReadable) {
  sql::PreparedStatement stmt = sql_.prepare("SELECT v FROM t ORDER BY id");
  sql::Cursor cur = stmt.openCursor(db_->takeSnapshot());
  ASSERT_GT(db_->walSizeBytes(), 0u);

  commit("UPDATE t SET v = 99");
  // Folding the newest committed version into the db file must not disturb
  // the pinned reader: its pages live in memory, not in the folded WAL.
  db_->checkpoint();
  EXPECT_EQ(db_->walSizeBytes(), 0u);

  EXPECT_EQ(drain(cur), (std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_EQ(sql_.exec("SELECT MAX(v) FROM t").rows[0][0].asInt(), 99);
}

TEST_F(SnapshotTest, GroupCommitLosesNoConcurrentCommit) {
  constexpr int kWriters = 4;
  constexpr int kCommitsEach = 24;

  // Writers are mutually excluded around begin..commitDeferred (the server's
  // DbGate plays this role in-process), but each one fsyncs OUTSIDE the
  // lock: overlapping waitDurable() calls batch behind one leader.
  std::mutex write_mu;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kCommitsEach; ++i) {
        std::uint64_t lsn = 0;
        {
          std::lock_guard<std::mutex> lk(write_mu);
          db_->begin();
          db_->insertRow("t", {Value(), Value(std::int64_t{1000} + w)});
          lsn = db_->commitDeferred();
        }
        db_->waitDurable(lsn);
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(liveCount(), 3 + kWriters * kCommitsEach);

  // Every acknowledged commit survives a close/reopen cycle, and the clean
  // close leaves no WAL behind.
  db_.reset();
  EXPECT_FALSE(std::filesystem::exists(path_ + ".wal"));
  db_ = Database::open(path_, walOptions());
  sql::Engine reopened(*db_);
  EXPECT_EQ(reopened.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt(),
            3 + kWriters * kCommitsEach);
}

TEST_F(SnapshotTest, ConcurrentScansEachSeeExactlyOneGeneration) {
  constexpr int kRows = 16;
  constexpr int kGenerations = 30;
  constexpr int kReaders = 3;

  commit("DELETE FROM t");
  for (int i = 0; i < kRows; ++i) commit("INSERT INTO t (v) VALUES (0)");

  std::atomic<bool> done{false};
  std::thread writer([&] {
    sql::Engine writer_sql(*db_);
    for (int g = 1; g <= kGenerations; ++g) {
      writer_sql.exec("BEGIN");
      writer_sql.exec("UPDATE t SET v = " + std::to_string(g));
      writer_sql.exec("COMMIT");
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<int> scans{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::int64_t last_gen = 0;
      // One snapshotted scan. Invariants: one committed version, whole and
      // alone — no torn generation, no half-applied UPDATE — and time never
      // moves backwards between a reader's consecutive scans.
      auto scanOnce = [&] {
        Pager::ReadSnapshot snap = db_->takeSnapshot();
        Pager::SnapshotScope scope(snap);
        std::int64_t min_v = kGenerations + 1, max_v = -1, rows = 0;
        db_->scan("t", [&](RecordId, const Row& row) {
          const std::int64_t v = row[1].asInt();
          min_v = std::min(min_v, v);
          max_v = std::max(max_v, v);
          ++rows;
          return true;
        });
        EXPECT_EQ(rows, kRows);
        EXPECT_EQ(min_v, max_v);
        EXPECT_GE(min_v, last_gen);
        last_gen = min_v;
        scans.fetch_add(1, std::memory_order_relaxed);
      };
      while (!done.load(std::memory_order_acquire)) scanOnce();
      scanOnce();  // guaranteed after the final commit published
      EXPECT_EQ(last_gen, kGenerations);
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GE(scans.load(), kReaders);
}

}  // namespace
}  // namespace perftrack::minidb
