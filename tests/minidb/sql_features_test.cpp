// Tests for the extended SQL features: LEFT JOIN, IN (SELECT ...) and VACUUM.
#include <gtest/gtest.h>

#include "minidb/sql/executor.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::minidb::sql {
namespace {

class SqlFeaturesTest : public ::testing::Test {
 protected:
  SqlFeaturesTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE machines (id INTEGER PRIMARY KEY, name TEXT, os TEXT)");
    sql_.exec("INSERT INTO machines (name, os) VALUES "
              "('frost', 'AIX'), ('mcr', 'Linux'), ('bgl', 'CNK')");
    sql_.exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, machine TEXT, secs REAL)");
    sql_.exec("INSERT INTO runs (machine, secs) VALUES "
              "('frost', 10.0), ('frost', 12.0), ('mcr', 5.0)");
    // bgl has machines row but no runs; 'ghost' runs have no machines row.
    sql_.exec("INSERT INTO runs (machine, secs) VALUES ('ghost', 1.0)");
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

// --- LEFT JOIN ---------------------------------------------------------------

TEST_F(SqlFeaturesTest, LeftJoinNullExtendsUnmatchedRows) {
  const ResultSet rs = sql_.exec(
      "SELECT m.name, r.secs FROM machines m LEFT JOIN runs r "
      "ON m.name = r.machine ORDER BY m.name, r.secs");
  // frost x2, mcr x1, bgl x1 (null-extended) = 4 rows.
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0].asText(), "bgl");
  EXPECT_TRUE(rs.rows[0][1].isNull());
  EXPECT_EQ(rs.rows[1][0].asText(), "frost");
  EXPECT_DOUBLE_EQ(rs.rows[1][1].asReal(), 10.0);
}

TEST_F(SqlFeaturesTest, LeftJoinFindsRowsWithoutPartners) {
  // The canonical "which machines have no runs" query.
  const ResultSet rs = sql_.exec(
      "SELECT m.name FROM machines m LEFT JOIN runs r ON m.name = r.machine "
      "WHERE r.id IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "bgl");
}

TEST_F(SqlFeaturesTest, InnerJoinStillDropsUnmatched) {
  const ResultSet rs = sql_.exec(
      "SELECT m.name FROM machines m JOIN runs r ON m.name = r.machine");
  EXPECT_EQ(rs.rows.size(), 3u);  // no bgl row
}

TEST_F(SqlFeaturesTest, LeftJoinWhereAppliesAfterExtension) {
  // WHERE on the left table keeps filtering; WHERE on the right table
  // eliminates null-extended rows unless IS NULL.
  const ResultSet rs = sql_.exec(
      "SELECT m.name FROM machines m LEFT JOIN runs r ON m.name = r.machine "
      "WHERE m.os = 'CNK'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "bgl");
  const ResultSet rs2 = sql_.exec(
      "SELECT m.name FROM machines m LEFT JOIN runs r ON m.name = r.machine "
      "WHERE r.secs > 0");
  EXPECT_EQ(rs2.rows.size(), 3u);  // null secs fails the comparison
}

TEST_F(SqlFeaturesTest, LeftJoinWithAggregates) {
  const ResultSet rs = sql_.exec(
      "SELECT m.name, COUNT(r.id) FROM machines m LEFT JOIN runs r "
      "ON m.name = r.machine GROUP BY m.name ORDER BY m.name");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].asText(), "bgl");
  EXPECT_EQ(rs.rows[0][1].asInt(), 0);  // COUNT ignores the NULL id
  EXPECT_EQ(rs.rows[1][1].asInt(), 2);  // frost
}

TEST_F(SqlFeaturesTest, LeftOuterJoinSynonym) {
  const ResultSet rs = sql_.exec(
      "SELECT COUNT(*) FROM machines m LEFT OUTER JOIN runs r ON m.name = r.machine");
  EXPECT_EQ(rs.rows[0][0].asInt(), 4);
}

TEST_F(SqlFeaturesTest, LeftJoinUsesIndexOnInnerTable) {
  sql_.exec("CREATE INDEX runs_by_machine ON runs (machine)");
  const ResultSet plan = sql_.exec(
      "EXPLAIN SELECT * FROM machines m LEFT JOIN runs r ON r.machine = m.name");
  std::string text;
  for (const auto& row : plan.rows) text += row[0].asText() + "\n";
  EXPECT_NE(text.find("USING INDEX runs_by_machine"), std::string::npos) << text;
  const ResultSet rs = sql_.exec(
      "SELECT COUNT(*) FROM machines m LEFT JOIN runs r ON r.machine = m.name");
  EXPECT_EQ(rs.rows[0][0].asInt(), 4);
}

// --- IN (SELECT ...) ---------------------------------------------------------

TEST_F(SqlFeaturesTest, InSelectFilters) {
  const ResultSet rs = sql_.exec(
      "SELECT machine FROM runs WHERE machine IN (SELECT name FROM machines) "
      "ORDER BY machine");
  ASSERT_EQ(rs.rows.size(), 3u);  // ghost run dropped
  EXPECT_EQ(rs.rows[0][0].asText(), "frost");
}

TEST_F(SqlFeaturesTest, NotInSelect) {
  const ResultSet rs = sql_.exec(
      "SELECT machine FROM runs WHERE machine NOT IN (SELECT name FROM machines)");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "ghost");
}

TEST_F(SqlFeaturesTest, InSelectWithInnerWhere) {
  const ResultSet rs = sql_.exec(
      "SELECT COUNT(*) FROM runs WHERE machine IN "
      "(SELECT name FROM machines WHERE os = 'AIX')");
  EXPECT_EQ(rs.rows[0][0].asInt(), 2);
}

TEST_F(SqlFeaturesTest, InSelectEmptySubquery) {
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE machine IN "
                      "(SELECT name FROM machines WHERE os = 'Plan9')")
                .rows[0][0].asInt(),
            0);
  // NOT IN over the empty set keeps everything.
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE machine NOT IN "
                      "(SELECT name FROM machines WHERE os = 'Plan9')")
                .rows[0][0].asInt(),
            4);
}

TEST_F(SqlFeaturesTest, InSelectWithAggregatingSubquery) {
  const ResultSet rs = sql_.exec(
      "SELECT name FROM machines WHERE name IN "
      "(SELECT machine FROM runs GROUP BY machine HAVING COUNT(*) > 1)");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "frost");
}

TEST_F(SqlFeaturesTest, InSelectInDeleteAndUpdate) {
  sql_.exec("UPDATE runs SET secs = 0 WHERE machine IN "
            "(SELECT name FROM machines WHERE os = 'AIX')");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE secs = 0").rows[0][0].asInt(), 2);
  sql_.exec("DELETE FROM runs WHERE machine NOT IN (SELECT name FROM machines)");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs").rows[0][0].asInt(), 3);
}

// --- VACUUM --------------------------------------------------------------------

TEST_F(SqlFeaturesTest, VacuumPreservesDataAndIndexes) {
  sql_.exec("CREATE INDEX runs_by_machine ON runs (machine)");
  sql_.exec("DELETE FROM runs WHERE machine = 'frost'");
  sql_.exec("VACUUM");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs").rows[0][0].asInt(), 2);
  // Index still answers queries (and agrees with a scan).
  const ResultSet indexed = sql_.exec("SELECT secs FROM runs WHERE machine = 'mcr'");
  ASSERT_EQ(indexed.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(indexed.rows[0][0].asReal(), 5.0);
  // Auto-increment continues correctly after the rewrite.
  const ResultSet ins = sql_.exec("INSERT INTO runs (machine, secs) VALUES ('x', 1)");
  EXPECT_EQ(ins.last_insert_id, 5);
}

TEST_F(SqlFeaturesTest, VacuumReclaimsSpace) {
  // Bulk-insert then delete most rows: the heap is mostly tombstones. The
  // pager never truncates (logical size is monotonic), so the reclamation
  // guarantee is about *reuse*: after VACUUM, re-inserting a comparable
  // volume must run from the free list without growing the database.
  auto bulkInsert = [&](const std::string& tag) {
    for (int i = 0; i < 2000; ++i) {
      sql_.exec("INSERT INTO runs (machine, secs) VALUES ('" + tag +
                std::to_string(i) + "-padpadpadpadpadpadpad', 1.0)");
    }
  };
  bulkInsert("bulk");
  sql_.exec("DELETE FROM runs WHERE machine LIKE 'bulk%'");
  sql_.exec("VACUUM");
  const auto after_vacuum = db_->sizeBytes();
  bulkInsert("re");
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM runs WHERE machine LIKE 're%'")
                .rows[0][0].asInt(),
            2000);
  EXPECT_LE(db_->sizeBytes(), after_vacuum);

  // Control: without VACUUM the same churn would have grown the file, so
  // the ceiling above is meaningful.
  sql_.exec("DELETE FROM runs WHERE machine LIKE 're%'");
  bulkInsert("again");
  EXPECT_GT(db_->sizeBytes(), after_vacuum);
}

TEST_F(SqlFeaturesTest, VacuumInsideTransactionRejected) {
  sql_.exec("BEGIN");
  EXPECT_THROW(sql_.exec("VACUUM"), util::StorageError);
  sql_.exec("ROLLBACK");
}

TEST_F(SqlFeaturesTest, VacuumOnFileBackendPersists) {
  util::TempDir dir;
  const std::string path = dir.file("vac.db").string();
  {
    auto db = Database::open(path);
    Engine sql(*db);
    sql.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    for (int i = 0; i < 50; ++i) sql.exec("INSERT INTO t (v) VALUES ('x')");
    sql.exec("DELETE FROM t WHERE id <= 40");
    sql.exec("VACUUM");
  }
  auto db = Database::open(path);
  Engine sql(*db);
  EXPECT_EQ(sql.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt(), 10);
  EXPECT_EQ(sql.exec("SELECT MIN(id) FROM t").rows[0][0].asInt(), 41);
}

}  // namespace
}  // namespace perftrack::minidb::sql
