// Differential SQL fuzzing: the literal path vs the prepared path vs the
// streaming cursor path vs the batch cursor path, plus a rollback-journal
// vs WAL durability differential over the same statement stream
// (DurabilityFuzz below).
//
// Four twin in-memory databases receive the same seeded random statement
// stream. One executes every statement with inlined literals through
// Engine::exec; the second executes the parameterized form ('?'
// placeholders) through prepare()/bind/execute; the third also prepares, but
// drains every SELECT one row at a time through openCursor()/next(); the
// fourth drains through fetchBatch() with a deliberately odd batch size (7)
// so every query ends on a partial batch. The paths share the parser but
// diverge at parameter substitution, plan caching, epoch revalidation, and
// (for the cursor twins) the materializing wrapper vs the row-at-a-time vs
// the vectorized operator pipeline. Any divergence (different rows,
// different rows_affected, an error on one side only) is a bug in one of
// the paths.
//
// Statement mix: INSERT (with NULLs, negative ints, reals, text), UPDATE,
// DELETE, point/range/IN SELECTs with ORDER BY, occasional CREATE/DROP
// INDEX, transaction brackets with rollbacks, and deliberately invalid
// statements (unknown table/column) that must fail identically on both
// sides. Every 40 statements the full table contents and storage integrity
// of both twins are compared.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace perftrack::minidb::sql {
namespace {

/// One generated statement: literal SQL for the exec twin, parameterized SQL
/// plus bindings for the prepared twin.
struct GenStmt {
  std::string literal;
  std::string parameterized;
  std::vector<Value> params;
};

std::string renderLiteral(const Value& v) {
  if (v.isNull()) return "NULL";
  if (v.isText()) return "'" + v.asText() + "'";  // generator emits quote-free text
  return v.toDisplayString();
}

/// Substitutes each '?' in `sql` with the rendered literal of the matching
/// parameter, producing the literal twin of a parameterized statement.
std::string inlineParams(const std::string& sql, const std::vector<Value>& params) {
  std::string out;
  std::size_t next = 0;
  for (char c : sql) {
    if (c == '?') {
      out += renderLiteral(params.at(next++));
    } else {
      out += c;
    }
  }
  return out;
}

class FuzzGen {
 public:
  explicit FuzzGen(std::uint64_t seed) : rng_(seed) {}

  Value randomValue() {
    switch (rng_.uniformInt(0, 3)) {
      case 0: return Value(rng_.uniformInt(-50, 50));
      case 1: // reals with exact binary representations round-trip as text
        return Value(static_cast<double>(rng_.uniformInt(-40, 40)) + 0.5);
      case 2: return Value("s" + std::to_string(rng_.uniformInt(0, 30)));
      default: return Value::null();
    }
  }

  GenStmt next() {
    GenStmt g;
    const int kind = static_cast<int>(rng_.uniformInt(0, 99));
    if (kind < 40) {  // INSERT
      g.parameterized = "INSERT INTO t (k, v, r) VALUES (?, ?, ?)";
      g.params = {Value(rng_.uniformInt(0, 9)), randomValue(), randomValue()};
    } else if (kind < 55) {  // UPDATE
      g.parameterized = "UPDATE t SET v = ? WHERE k " + comparator() + " ?";
      g.params = {randomValue(), Value(rng_.uniformInt(0, 9))};
    } else if (kind < 65) {  // DELETE (bounded so the table keeps growing)
      g.parameterized = "DELETE FROM t WHERE k = ? AND id > ?";
      g.params = {Value(rng_.uniformInt(0, 9)), Value(rng_.uniformInt(5, 200))};
    } else if (kind < 90) {  // SELECT
      switch (rng_.uniformInt(0, 3)) {
        case 0:
          g.parameterized = "SELECT id, k, v FROM t WHERE k = ? ORDER BY id";
          g.params = {Value(rng_.uniformInt(0, 9))};
          break;
        case 1:
          g.parameterized =
              "SELECT id, v FROM t WHERE k >= ? AND k <= ? ORDER BY id";
          g.params = {Value(rng_.uniformInt(0, 5)), Value(rng_.uniformInt(5, 9))};
          break;
        case 2:
          g.parameterized = "SELECT COUNT(*) FROM t WHERE k IN (?, ?, ?)";
          g.params = {Value(rng_.uniformInt(0, 9)), Value(rng_.uniformInt(0, 9)),
                      Value(rng_.uniformInt(0, 9))};
          break;
        default:
          g.parameterized = "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k";
          break;
      }
    } else if (kind < 94) {  // index DDL: flips the schema epoch mid-stream
      if (index_exists_) {
        g.parameterized = "DROP INDEX t_by_k";
      } else {
        g.parameterized = "CREATE INDEX t_by_k ON t (k)";
      }
      index_exists_ = !index_exists_;
    } else {  // invalid: must fail identically on both paths
      if (rng_.chance(0.5)) {
        g.parameterized = "SELECT nosuch FROM t WHERE k = ?";
        g.params = {Value(rng_.uniformInt(0, 9))};
      } else {
        g.parameterized = "INSERT INTO missing (k) VALUES (?)";
        g.params = {Value(1)};
      }
    }
    g.literal = inlineParams(g.parameterized, g.params);
    return g;
  }

  util::Rng& rng() { return rng_; }

 private:
  std::string comparator() {
    switch (rng_.uniformInt(0, 2)) {
      case 0: return "=";
      case 1: return "<";
      default: return ">=";
    }
  }

  util::Rng rng_;
  bool index_exists_ = false;
};

void expectSameResult(const ResultSet& a, const ResultSet& b, const std::string& sql) {
  SCOPED_TRACE("statement: " + sql);
  EXPECT_EQ(a.columns, b.columns);
  EXPECT_EQ(a.rows_affected, b.rows_affected);
  EXPECT_EQ(a.last_insert_id, b.last_insert_id);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size());
    for (std::size_t j = 0; j < a.rows[i].size(); ++j) {
      EXPECT_EQ(a.rows[i][j], b.rows[i][j])
          << "row " << i << " col " << j << " diverged";
    }
  }
}

/// The cursor twin's executor: prepares `sql`, then drains SELECTs row by
/// row through the streaming cursor instead of the materializing execute().
/// Non-SELECT statements run through the prepared path so all twins apply
/// identical mutations.
ResultSet runViaCursor(Engine& eng, const std::string& sql,
                       const std::vector<Value>& params) {
  PreparedStatement stmt = eng.prepare(sql);
  if (stmt.kind() != Statement::Kind::Select) return stmt.execute(params);
  stmt.bindAll(params);
  Cursor cur = stmt.openCursor();
  ResultSet rs;
  rs.columns = cur.columns();
  Row row;
  while (cur.next(row)) rs.rows.push_back(row);
  return rs;
}

/// The batch-cursor twin's executor: like runViaCursor, but drains SELECTs
/// through the vectorized fetchBatch() surface, materializing rows from the
/// columnar batches.
ResultSet runViaBatchCursor(Engine& eng, const std::string& sql,
                            const std::vector<Value>& params) {
  PreparedStatement stmt = eng.prepare(sql);
  if (stmt.kind() != Statement::Kind::Select) return stmt.execute(params);
  stmt.bindAll(params);
  Cursor cur = stmt.openCursor();
  ResultSet rs;
  rs.columns = cur.columns();
  RowBatch batch;
  Row row;
  while (cur.fetchBatch(batch)) {
    for (const std::uint32_t i : batch.sel) {
      batch.materializeRow(i, row);
      rs.rows.push_back(row);
    }
  }
  return rs;
}

class SqlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlFuzz, LiteralPreparedAndCursorPathsAgree) {
  auto db_lit = Database::openMemory();
  auto db_par = Database::openMemory();
  auto db_cur = Database::openMemory();
  auto db_bat = Database::openMemory();
  Engine lit(*db_lit);
  Engine par(*db_par);
  Engine cur(*db_cur);
  Engine bat(*db_bat);
  // Odd batch size so nearly every SELECT ends on a partial final batch.
  bat.setExecBatchRows(7);
  const char* ddl =
      "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT, r REAL)";
  lit.exec(ddl);
  par.exec(ddl);
  cur.exec(ddl);
  bat.exec(ddl);

  FuzzGen gen(GetParam());
  int in_txn = 0;
  for (int step = 0; step < 400; ++step) {
    // Transaction brackets: both twins enter/leave together; one in three
    // brackets ends in ROLLBACK, exercising the undo journal + epoch paths.
    if (in_txn == 0 && gen.rng().chance(0.15)) {
      db_lit->begin();
      db_par->begin();
      db_cur->begin();
      db_bat->begin();
      in_txn = static_cast<int>(gen.rng().uniformInt(3, 10));
    } else if (in_txn > 0 && --in_txn == 0) {
      if (gen.rng().chance(0.33)) {
        db_lit->rollback();
        db_par->rollback();
        db_cur->rollback();
        db_bat->rollback();
      } else {
        db_lit->commit();
        db_par->commit();
        db_cur->commit();
        db_bat->commit();
      }
    }

    const GenStmt g = gen.next();
    std::optional<ResultSet> ra, rb, rc, rd;
    std::string err_a, err_b, err_c, err_d;
    try {
      ra = lit.exec(g.literal);
    } catch (const util::PTError& e) {
      err_a = e.what();
    }
    try {
      PreparedStatement stmt = par.prepare(g.parameterized);
      ASSERT_EQ(stmt.paramCount(), static_cast<int>(g.params.size()));
      rb = stmt.execute(g.params);
    } catch (const util::PTError& e) {
      err_b = e.what();
    }
    try {
      rc = runViaCursor(cur, g.parameterized, g.params);
    } catch (const util::PTError& e) {
      err_c = e.what();
    }
    try {
      rd = runViaBatchCursor(bat, g.parameterized, g.params);
    } catch (const util::PTError& e) {
      err_d = e.what();
    }
    ASSERT_EQ(ra.has_value(), rb.has_value())
        << "one path errored: literal=[" << err_a << "] prepared=[" << err_b
        << "] for: " << g.literal;
    ASSERT_EQ(ra.has_value(), rc.has_value())
        << "one path errored: literal=[" << err_a << "] cursor=[" << err_c
        << "] for: " << g.literal;
    ASSERT_EQ(ra.has_value(), rd.has_value())
        << "one path errored: literal=[" << err_a << "] batch=[" << err_d
        << "] for: " << g.literal;
    if (ra) {
      expectSameResult(*ra, *rb, g.literal);
      {
        SCOPED_TRACE("cursor path");
        ASSERT_EQ(ra->columns, rc->columns);
        ASSERT_EQ(ra->rows.size(), rc->rows.size()) << "for: " << g.literal;
        for (std::size_t i = 0; i < ra->rows.size(); ++i) {
          for (std::size_t j = 0; j < ra->rows[i].size(); ++j) {
            EXPECT_EQ(ra->rows[i][j], rc->rows[i][j])
                << "cursor row " << i << " col " << j << " diverged for: "
                << g.literal;
          }
        }
      }
      {
        SCOPED_TRACE("batch cursor path");
        ASSERT_EQ(ra->columns, rd->columns);
        ASSERT_EQ(ra->rows.size(), rd->rows.size()) << "for: " << g.literal;
        for (std::size_t i = 0; i < ra->rows.size(); ++i) {
          for (std::size_t j = 0; j < ra->rows[i].size(); ++j) {
            EXPECT_EQ(ra->rows[i][j], rd->rows[i][j])
                << "batch row " << i << " col " << j << " diverged for: "
                << g.literal;
          }
        }
      }
    } else {
      EXPECT_EQ(err_a, err_b) << "error text diverged for: " << g.literal;
      EXPECT_EQ(err_a, err_c) << "cursor error text diverged for: " << g.literal;
      EXPECT_EQ(err_a, err_d) << "batch error text diverged for: " << g.literal;
    }

    if (step % 40 == 39) {
      const char* all = "SELECT id, k, v, r FROM t ORDER BY id";
      expectSameResult(lit.exec(all), par.exec(all), all);
      expectSameResult(lit.exec(all), runViaCursor(cur, all, {}), all);
      expectSameResult(lit.exec(all), runViaBatchCursor(bat, all, {}), all);
      EXPECT_TRUE(db_lit->verifyIntegrity().empty());
      EXPECT_TRUE(db_par->verifyIntegrity().empty());
      EXPECT_TRUE(db_cur->verifyIntegrity().empty());
      EXPECT_TRUE(db_bat->verifyIntegrity().empty());
    }
  }
  if (in_txn > 0) {
    db_lit->commit();
    db_par->commit();
    db_cur->commit();
    db_bat->commit();
  }
  const char* all = "SELECT id, k, v, r FROM t ORDER BY id";
  const ResultSet fin = lit.exec(all);
  expectSameResult(fin, par.exec(all), all);
  expectSameResult(fin, runViaCursor(cur, all, {}), all);
  expectSameResult(fin, runViaBatchCursor(bat, all, {}), all);
  EXPECT_GT(fin.rows.size(), 50u) << "workload degenerated; generator is off";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 20260805u));

// Durability differential: the same seeded statement stream against a
// rollback-journal store and a WAL store (file-backed, tiny autocheckpoint
// so the log folds mid-stream). The two commit paths share nothing below
// the pager — undo images + in-place flush vs redo frames + snapshot
// publish + checkpoint — so any divergence in results, table contents, or
// post-reopen state is a bug in one of them.
class DurabilityFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DurabilityFuzz, JournalAndWalStoresAgree) {
  util::TempDir tmp;
  const std::string journal_path = tmp.file("journal.db").string();
  const std::string wal_path = tmp.file("wal.db").string();
  OpenOptions journal_options;  // Durability::Full
  OpenOptions wal_options;
  wal_options.durability = Durability::Wal;
  wal_options.wal_autocheckpoint = 16;

  auto db_j = Database::open(journal_path, journal_options);
  auto db_w = Database::open(wal_path, wal_options);
  Engine jrn(*db_j);
  Engine wal(*db_w);
  const char* ddl =
      "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT, r REAL)";
  jrn.exec(ddl);
  wal.exec(ddl);

  FuzzGen gen(GetParam());
  int in_txn = 0;
  for (int step = 0; step < 300; ++step) {
    if (in_txn == 0 && gen.rng().chance(0.2)) {
      db_j->begin();
      db_w->begin();
      in_txn = static_cast<int>(gen.rng().uniformInt(3, 10));
    } else if (in_txn > 0 && --in_txn == 0) {
      if (gen.rng().chance(0.33)) {
        db_j->rollback();
        db_w->rollback();
      } else {
        db_j->commit();
        db_w->commit();
      }
    }

    const GenStmt g = gen.next();
    std::optional<ResultSet> rj, rw;
    std::string err_j, err_w;
    try {
      rj = jrn.exec(g.literal);
    } catch (const util::PTError& e) {
      err_j = e.what();
    }
    try {
      rw = wal.exec(g.literal);
    } catch (const util::PTError& e) {
      err_w = e.what();
    }
    ASSERT_EQ(rj.has_value(), rw.has_value())
        << "one durability mode errored: journal=[" << err_j << "] wal=["
        << err_w << "] for: " << g.literal;
    if (rj) {
      expectSameResult(*rj, *rw, g.literal);
    } else {
      EXPECT_EQ(err_j, err_w) << "error text diverged for: " << g.literal;
    }

    if (step % 40 == 39) {
      const char* all = "SELECT id, k, v, r FROM t ORDER BY id";
      expectSameResult(jrn.exec(all), wal.exec(all), all);
      EXPECT_TRUE(db_j->verifyIntegrity().empty());
      EXPECT_TRUE(db_w->verifyIntegrity().empty());
    }
  }
  if (in_txn > 0) {
    db_j->commit();
    db_w->commit();
  }

  // Close both stores and reopen: the on-disk state (journal's in-place
  // pages vs WAL's close-time checkpoint fold) must read back identically,
  // and the clean WAL close must leave no log behind.
  db_j.reset();
  db_w.reset();
  EXPECT_FALSE(std::filesystem::exists(wal_path + ".wal"));
  db_j = Database::open(journal_path, journal_options);
  db_w = Database::open(wal_path, wal_options);
  EXPECT_FALSE(db_j->recoveryStats().recovered);
  EXPECT_FALSE(db_w->recoveryStats().wal_replayed);
  Engine jrn2(*db_j);
  Engine wal2(*db_w);
  const char* all = "SELECT id, k, v, r FROM t ORDER BY id";
  const ResultSet fin = jrn2.exec(all);
  expectSameResult(fin, wal2.exec(all), all);
  EXPECT_GT(fin.rows.size(), 40u) << "workload degenerated; generator is off";
  EXPECT_TRUE(db_j->verifyIntegrity().empty());
  EXPECT_TRUE(db_w->verifyIntegrity().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurabilityFuzz,
                         ::testing::Values(5u, 23u, 4242u));

}  // namespace
}  // namespace perftrack::minidb::sql
