#include <gtest/gtest.h>

#include "minidb/sql/executor.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::minidb::sql {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() : db_(Database::openMemory()), sql_(*db_) {
    sql_.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    sql_.exec("INSERT INTO t (v) VALUES ('base1'), ('base2')");
  }

  std::int64_t count() {
    return sql_.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt();
  }

  std::unique_ptr<Database> db_;
  Engine sql_;
};

TEST_F(TransactionTest, CommitKeepsInserts) {
  sql_.exec("BEGIN");
  sql_.exec("INSERT INTO t (v) VALUES ('tx')");
  sql_.exec("COMMIT");
  EXPECT_EQ(count(), 3);
}

TEST_F(TransactionTest, RollbackDiscardsInserts) {
  sql_.exec("BEGIN");
  sql_.exec("INSERT INTO t (v) VALUES ('gone'), ('gone2')");
  EXPECT_EQ(count(), 4);  // visible within the transaction
  sql_.exec("ROLLBACK");
  EXPECT_EQ(count(), 2);
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE v = 'gone'").rows[0][0].asInt(), 0);
}

TEST_F(TransactionTest, RollbackRestoresUpdatesAndDeletes) {
  sql_.exec("BEGIN");
  sql_.exec("UPDATE t SET v = 'mangled'");
  sql_.exec("DELETE FROM t WHERE id = 2");
  sql_.exec("ROLLBACK");
  const ResultSet rs = sql_.exec("SELECT v FROM t ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].asText(), "base1");
  EXPECT_EQ(rs.rows[1][0].asText(), "base2");
}

TEST_F(TransactionTest, RollbackRestoresIndexConsistency) {
  sql_.exec("CREATE INDEX t_by_v ON t (v)");
  sql_.exec("BEGIN");
  sql_.exec("INSERT INTO t (v) VALUES ('indexed')");
  sql_.exec("ROLLBACK");
  // Index scans must not surface the rolled-back row (dangling entries
  // would throw inside indexScanEqual).
  const ResultSet rs = sql_.exec("SELECT COUNT(*) FROM t WHERE v = 'indexed'");
  EXPECT_EQ(rs.rows[0][0].asInt(), 0);
  // Index still works for surviving rows.
  EXPECT_EQ(sql_.exec("SELECT COUNT(*) FROM t WHERE v = 'base1'").rows[0][0].asInt(), 1);
}

TEST_F(TransactionTest, RollbackRestoresDdl) {
  sql_.exec("BEGIN");
  sql_.exec("CREATE TABLE scratch (a INTEGER)");
  sql_.exec("INSERT INTO scratch VALUES (1)");
  sql_.exec("ROLLBACK");
  EXPECT_EQ(db_->catalog().findTable("scratch"), nullptr);
  EXPECT_THROW(sql_.exec("SELECT * FROM scratch"), util::SqlError);
}

TEST_F(TransactionTest, RollbackRestoresDroppedTable) {
  sql_.exec("BEGIN");
  sql_.exec("DROP TABLE t");
  EXPECT_THROW(sql_.exec("SELECT * FROM t"), util::SqlError);
  sql_.exec("ROLLBACK");
  EXPECT_EQ(count(), 2);
}

TEST_F(TransactionTest, AutoIncrementDoesNotReuseAfterCommit) {
  sql_.exec("BEGIN");
  sql_.exec("INSERT INTO t (v) VALUES ('three')");
  sql_.exec("COMMIT");
  const ResultSet rs = sql_.exec("INSERT INTO t (v) VALUES ('four')");
  EXPECT_EQ(rs.last_insert_id, 4);
}

TEST_F(TransactionTest, AutoIncrementRestartsAfterRollback) {
  sql_.exec("BEGIN");
  const ResultSet in_tx = sql_.exec("INSERT INTO t (v) VALUES ('tmp')");
  EXPECT_EQ(in_tx.last_insert_id, 3);
  sql_.exec("ROLLBACK");
  const ResultSet after = sql_.exec("INSERT INTO t (v) VALUES ('real')");
  EXPECT_EQ(after.last_insert_id, 3);  // id 3 was never committed
}

TEST_F(TransactionTest, CommitWithoutBeginThrows) {
  EXPECT_THROW(sql_.exec("COMMIT"), util::StorageError);
  EXPECT_THROW(sql_.exec("ROLLBACK"), util::StorageError);
}

TEST_F(TransactionTest, NestedBeginThrows) {
  sql_.exec("BEGIN");
  EXPECT_THROW(sql_.exec("BEGIN"), util::StorageError);
  sql_.exec("ROLLBACK");
}

TEST(TransactionPersistence, CommittedDataSurvivesReopen) {
  util::TempDir dir;
  const std::string path = dir.file("txn.db").string();
  {
    auto db = Database::open(path);
    Engine sql(*db);
    sql.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    sql.exec("BEGIN");
    sql.exec("INSERT INTO t (v) VALUES ('committed')");
    sql.exec("COMMIT");
    sql.exec("BEGIN");
    sql.exec("INSERT INTO t (v) VALUES ('rolled-back')");
    sql.exec("ROLLBACK");
  }
  auto db = Database::open(path);
  Engine sql(*db);
  const ResultSet rs = sql.exec("SELECT v FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].asText(), "committed");
}

TEST(TransactionStress, ManyRollbackCyclesStayConsistent) {
  auto db = Database::openMemory();
  Engine sql(*db);
  sql.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  sql.exec("CREATE INDEX t_by_v ON t (v)");
  for (int cycle = 0; cycle < 30; ++cycle) {
    sql.exec("BEGIN");
    for (int i = 0; i < 20; ++i) {
      sql.exec("INSERT INTO t (v) VALUES ('cycle" + std::to_string(cycle) + "')");
    }
    if (cycle % 2 == 0) {
      sql.exec("COMMIT");
    } else {
      sql.exec("ROLLBACK");
    }
  }
  EXPECT_EQ(sql.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt(), 15 * 20);
  // Every surviving row came from an even (committed) cycle.
  const ResultSet odd = sql.exec("SELECT COUNT(*) FROM t WHERE v LIKE 'cycle1'");
  EXPECT_EQ(odd.rows[0][0].asInt(), 0);
}

}  // namespace
}  // namespace perftrack::minidb::sql
