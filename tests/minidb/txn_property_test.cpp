// Property test: random interleavings of DML and transactions against a
// reference model. After any sequence of INSERT/UPDATE/DELETE wrapped in
// randomly committed or rolled-back transactions, the table contents must
// equal the model's, and the indexes must stay consistent with the heap.
#include <gtest/gtest.h>

#include <map>

#include "minidb/sql/executor.h"
#include "util/error.h"
#include "util/rng.h"

namespace perftrack::minidb::sql {
namespace {

class TxnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnProperty, RandomOpsMatchReferenceModel) {
  auto db = Database::openMemory();
  Engine sql(*db);
  sql.execScript(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT);"
      "CREATE INDEX t_by_k ON t (k);");

  util::Rng rng(GetParam());
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> committed;  // id->(k,v)
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> working = committed;
  bool in_txn = false;

  for (int step = 0; step < 400; ++step) {
    const int dice = static_cast<int>(rng.uniformInt(0, 9));
    if (dice == 0 && !in_txn) {
      sql.exec("BEGIN");
      in_txn = true;
    } else if (dice == 1 && in_txn) {
      sql.exec("COMMIT");
      committed = working;
      in_txn = false;
    } else if (dice == 2 && in_txn) {
      sql.exec("ROLLBACK");
      working = committed;
      in_txn = false;
    } else if (dice <= 5) {  // insert
      const std::int64_t k = rng.uniformInt(0, 20);
      const std::string v = "v" + std::to_string(rng.uniformInt(0, 99));
      const ResultSet rs =
          sql.exec("INSERT INTO t (k, v) VALUES (" + std::to_string(k) + ", '" + v +
                   "')");
      working[rs.last_insert_id] = {k, v};
    } else if (dice <= 7 && !working.empty()) {  // update one key group
      const std::int64_t k = rng.uniformInt(0, 20);
      const std::string v = "u" + std::to_string(step);
      sql.exec("UPDATE t SET v = '" + v + "' WHERE k = " + std::to_string(k));
      for (auto& [id, kv] : working) {
        if (kv.first == k) kv.second = v;
      }
    } else if (!working.empty()) {  // delete one key group
      const std::int64_t k = rng.uniformInt(0, 20);
      sql.exec("DELETE FROM t WHERE k = " + std::to_string(k));
      std::erase_if(working, [&](const auto& entry) { return entry.second.first == k; });
    }
    // Statements outside a transaction auto-commit.
    if (!in_txn) committed = working;

    // Periodically compare full contents with the model.
    if (step % 50 == 49) {
      const ResultSet rs = sql.exec("SELECT id, k, v FROM t ORDER BY id");
      ASSERT_EQ(rs.rows.size(), working.size()) << "step " << step;
      std::size_t i = 0;
      for (const auto& [id, kv] : working) {
        ASSERT_EQ(rs.rows[i][0].asInt(), id);
        ASSERT_EQ(rs.rows[i][1].asInt(), kv.first);
        ASSERT_EQ(rs.rows[i][2].asText(), kv.second);
        ++i;
      }
    }
  }
  if (in_txn) {
    sql.exec("ROLLBACK");
    working = committed;
  }

  // Final checks: contents, index consistency, and integrity.
  const ResultSet rs = sql.exec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs.rows[0][0].asInt(), static_cast<std::int64_t>(working.size()));
  for (std::int64_t k = 0; k <= 20; ++k) {
    const auto expected = std::count_if(
        working.begin(), working.end(),
        [&](const auto& entry) { return entry.second.first == k; });
    sql.setUseIndexes(true);
    const auto indexed =
        sql.exec("SELECT COUNT(*) FROM t WHERE k = " + std::to_string(k));
    EXPECT_EQ(indexed.rows[0][0].asInt(), expected) << "k=" << k;
  }
  EXPECT_TRUE(db->verifyIntegrity().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnProperty,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

TEST(ExecScript, RunsAllStatementsAndReturnsLast) {
  auto db = Database::openMemory();
  Engine sql(*db);
  const ResultSet rs = sql.execScript(
      "-- a script\n"
      "CREATE TABLE s (a INTEGER);\n"
      "INSERT INTO s VALUES (1); INSERT INTO s VALUES (2);\n"
      "SELECT COUNT(*) FROM s;");
  EXPECT_EQ(rs.rows[0][0].asInt(), 2);
}

TEST(ExecScript, RespectsQuotedSemicolons) {
  auto db = Database::openMemory();
  Engine sql(*db);
  sql.execScript("CREATE TABLE s (a TEXT); INSERT INTO s VALUES ('x;y')");
  EXPECT_EQ(sql.exec("SELECT a FROM s").rows[0][0].asText(), "x;y");
}

TEST(ExecScript, EmptyScriptThrows) {
  auto db = Database::openMemory();
  Engine sql(*db);
  EXPECT_THROW(sql.execScript("  -- nothing here\n"), util::SqlError);
  EXPECT_THROW(sql.execScript(";;;"), util::SqlError);
}

}  // namespace
}  // namespace perftrack::minidb::sql
