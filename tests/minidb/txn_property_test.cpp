// Property test: random interleavings of DML and transactions against a
// reference model. After any sequence of INSERT/UPDATE/DELETE wrapped in
// randomly committed or rolled-back transactions, the table contents must
// equal the model's, and the indexes must stay consistent with the heap.
#include <gtest/gtest.h>

#include <map>

#include "minidb/sql/executor.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace perftrack::minidb::sql {
namespace {

class TxnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnProperty, RandomOpsMatchReferenceModel) {
  auto db = Database::openMemory();
  Engine sql(*db);
  sql.execScript(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT);"
      "CREATE INDEX t_by_k ON t (k);");

  util::Rng rng(GetParam());
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> committed;  // id->(k,v)
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> working = committed;
  bool in_txn = false;

  for (int step = 0; step < 400; ++step) {
    const int dice = static_cast<int>(rng.uniformInt(0, 9));
    if (dice == 0 && !in_txn) {
      sql.exec("BEGIN");
      in_txn = true;
    } else if (dice == 1 && in_txn) {
      sql.exec("COMMIT");
      committed = working;
      in_txn = false;
    } else if (dice == 2 && in_txn) {
      sql.exec("ROLLBACK");
      working = committed;
      in_txn = false;
    } else if (dice <= 5) {  // insert
      const std::int64_t k = rng.uniformInt(0, 20);
      const std::string v = "v" + std::to_string(rng.uniformInt(0, 99));
      const ResultSet rs =
          sql.exec("INSERT INTO t (k, v) VALUES (" + std::to_string(k) + ", '" + v +
                   "')");
      working[rs.last_insert_id] = {k, v};
    } else if (dice <= 7 && !working.empty()) {  // update one key group
      const std::int64_t k = rng.uniformInt(0, 20);
      const std::string v = "u" + std::to_string(step);
      sql.exec("UPDATE t SET v = '" + v + "' WHERE k = " + std::to_string(k));
      for (auto& [id, kv] : working) {
        if (kv.first == k) kv.second = v;
      }
    } else if (!working.empty()) {  // delete one key group
      const std::int64_t k = rng.uniformInt(0, 20);
      sql.exec("DELETE FROM t WHERE k = " + std::to_string(k));
      std::erase_if(working, [&](const auto& entry) { return entry.second.first == k; });
    }
    // Statements outside a transaction auto-commit.
    if (!in_txn) committed = working;

    // Periodically compare full contents with the model.
    if (step % 50 == 49) {
      const ResultSet rs = sql.exec("SELECT id, k, v FROM t ORDER BY id");
      ASSERT_EQ(rs.rows.size(), working.size()) << "step " << step;
      std::size_t i = 0;
      for (const auto& [id, kv] : working) {
        ASSERT_EQ(rs.rows[i][0].asInt(), id);
        ASSERT_EQ(rs.rows[i][1].asInt(), kv.first);
        ASSERT_EQ(rs.rows[i][2].asText(), kv.second);
        ++i;
      }
    }
  }
  if (in_txn) {
    sql.exec("ROLLBACK");
    working = committed;
  }

  // Final checks: contents, index consistency, and integrity.
  const ResultSet rs = sql.exec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs.rows[0][0].asInt(), static_cast<std::int64_t>(working.size()));
  for (std::int64_t k = 0; k <= 20; ++k) {
    const auto expected = std::count_if(
        working.begin(), working.end(),
        [&](const auto& entry) { return entry.second.first == k; });
    sql.setUseIndexes(true);
    const auto indexed =
        sql.exec("SELECT COUNT(*) FROM t WHERE k = " + std::to_string(k));
    EXPECT_EQ(indexed.rows[0][0].asInt(), expected) << "k=" << k;
  }
  EXPECT_TRUE(db->verifyIntegrity().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnProperty,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// Durability differential: the same random transaction interleavings
// replayed against a rollback-journal store and a WAL store, both
// file-backed. The journal undoes aborted work from saved before-images;
// the WAL never writes aborted work and publishes committed snapshots —
// after every sequence both must hold exactly the model's committed state,
// including after a close/reopen of each store.
class TxnDurability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnDurability, JournalAndWalReplaysMatchTheModel) {
  util::TempDir tmp;
  const std::string journal_path = tmp.file("journal.db").string();
  const std::string wal_path = tmp.file("wal.db").string();
  OpenOptions journal_options;  // Durability::Full
  OpenOptions wal_options;
  wal_options.durability = Durability::Wal;
  wal_options.wal_autocheckpoint = 8;  // fold the log mid-sequence

  auto db_j = Database::open(journal_path, journal_options);
  auto db_w = Database::open(wal_path, wal_options);
  Engine jrn(*db_j);
  Engine wal(*db_w);
  for (Engine* e : {&jrn, &wal}) {
    e->execScript(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT);"
        "CREATE INDEX t_by_k ON t (k);");
  }
  auto both = [&](const std::string& stmt) {
    const ResultSet rj = jrn.exec(stmt);
    const ResultSet rw = wal.exec(stmt);
    EXPECT_EQ(rj.rows_affected, rw.rows_affected) << stmt;
    EXPECT_EQ(rj.last_insert_id, rw.last_insert_id) << stmt;
    return rj;
  };

  util::Rng rng(GetParam());
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> committed;
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> working = committed;
  bool in_txn = false;

  for (int step = 0; step < 300; ++step) {
    const int dice = static_cast<int>(rng.uniformInt(0, 9));
    if (dice == 0 && !in_txn) {
      both("BEGIN");
      in_txn = true;
    } else if (dice == 1 && in_txn) {
      both("COMMIT");
      committed = working;
      in_txn = false;
    } else if (dice == 2 && in_txn) {
      both("ROLLBACK");
      working = committed;
      in_txn = false;
    } else if (dice <= 5) {  // insert
      const std::int64_t k = rng.uniformInt(0, 20);
      const std::string v = "v" + std::to_string(rng.uniformInt(0, 99));
      const ResultSet rs = both("INSERT INTO t (k, v) VALUES (" +
                                std::to_string(k) + ", '" + v + "')");
      working[rs.last_insert_id] = {k, v};
    } else if (dice <= 7 && !working.empty()) {  // update one key group
      const std::int64_t k = rng.uniformInt(0, 20);
      const std::string v = "u" + std::to_string(step);
      both("UPDATE t SET v = '" + v + "' WHERE k = " + std::to_string(k));
      for (auto& [id, kv] : working) {
        if (kv.first == k) kv.second = v;
      }
    } else if (!working.empty()) {  // delete one key group
      const std::int64_t k = rng.uniformInt(0, 20);
      both("DELETE FROM t WHERE k = " + std::to_string(k));
      std::erase_if(working, [&](const auto& entry) { return entry.second.first == k; });
    }
    if (!in_txn) committed = working;

    if (step % 50 == 49) {
      const char* all = "SELECT id, k, v FROM t ORDER BY id";
      const ResultSet rj = jrn.exec(all);
      const ResultSet rw = wal.exec(all);
      ASSERT_EQ(rj.rows.size(), working.size()) << "journal twin, step " << step;
      ASSERT_EQ(rw.rows.size(), working.size()) << "wal twin, step " << step;
      std::size_t i = 0;
      for (const auto& [id, kv] : working) {
        for (const ResultSet* rs : {&rj, &rw}) {
          ASSERT_EQ(rs->rows[i][0].asInt(), id);
          ASSERT_EQ(rs->rows[i][1].asInt(), kv.first);
          ASSERT_EQ(rs->rows[i][2].asText(), kv.second);
        }
        ++i;
      }
    }
  }
  if (in_txn) both("ROLLBACK");

  EXPECT_TRUE(db_j->verifyIntegrity().empty());
  EXPECT_TRUE(db_w->verifyIntegrity().empty());

  // Reopen both stores: the committed model state must have survived each
  // mode's own persistence path (in-place flush vs checkpoint fold).
  db_j.reset();
  db_w.reset();
  db_j = Database::open(journal_path, journal_options);
  db_w = Database::open(wal_path, wal_options);
  Engine jrn2(*db_j);
  Engine wal2(*db_w);
  const char* all = "SELECT id, k, v FROM t ORDER BY id";
  const ResultSet rj = jrn2.exec(all);
  const ResultSet rw = wal2.exec(all);
  ASSERT_EQ(rj.rows.size(), committed.size());
  ASSERT_EQ(rw.rows.size(), committed.size());
  std::size_t i = 0;
  for (const auto& [id, kv] : committed) {
    for (const ResultSet* rs : {&rj, &rw}) {
      ASSERT_EQ(rs->rows[i][0].asInt(), id);
      ASSERT_EQ(rs->rows[i][1].asInt(), kv.first);
      ASSERT_EQ(rs->rows[i][2].asText(), kv.second);
    }
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnDurability,
                         ::testing::Values(7u, 1234u, 99999u));

TEST(ExecScript, RunsAllStatementsAndReturnsLast) {
  auto db = Database::openMemory();
  Engine sql(*db);
  const ResultSet rs = sql.execScript(
      "-- a script\n"
      "CREATE TABLE s (a INTEGER);\n"
      "INSERT INTO s VALUES (1); INSERT INTO s VALUES (2);\n"
      "SELECT COUNT(*) FROM s;");
  EXPECT_EQ(rs.rows[0][0].asInt(), 2);
}

TEST(ExecScript, RespectsQuotedSemicolons) {
  auto db = Database::openMemory();
  Engine sql(*db);
  sql.execScript("CREATE TABLE s (a TEXT); INSERT INTO s VALUES ('x;y')");
  EXPECT_EQ(sql.exec("SELECT a FROM s").rows[0][0].asText(), "x;y");
}

TEST(ExecScript, EmptyScriptThrows) {
  auto db = Database::openMemory();
  Engine sql(*db);
  EXPECT_THROW(sql.execScript("  -- nothing here\n"), util::SqlError);
  EXPECT_THROW(sql.execScript(";;;"), util::SqlError);
}

}  // namespace
}  // namespace perftrack::minidb::sql
