#include "minidb/value.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::minidb {
namespace {

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_TRUE(Value(std::int64_t{5}).isInt());
  EXPECT_TRUE(Value(2.5).isReal());
  EXPECT_TRUE(Value("x").isText());
}

TEST(Value, AccessorsThrowOnWrongType) {
  EXPECT_THROW(Value("x").asInt(), util::StorageError);
  EXPECT_THROW(Value(std::int64_t{1}).asText(), util::StorageError);
  EXPECT_THROW(Value("x").asReal(), util::StorageError);
}

TEST(Value, AsRealWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{7}).asReal(), 7.0);
}

TEST(Value, CompareWithinTypes) {
  EXPECT_LT(Value(std::int64_t{1}).compare(Value(std::int64_t{2})), 0);
  EXPECT_GT(Value(2.5).compare(Value(1.5)), 0);
  EXPECT_EQ(Value("abc").compare(Value("abc")), 0);
  EXPECT_LT(Value("abc").compare(Value("abd")), 0);
}

TEST(Value, NumericTypesInterleave) {
  EXPECT_EQ(Value(std::int64_t{2}).compare(Value(2.0)), 0);
  EXPECT_LT(Value(std::int64_t{2}).compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).compare(Value(std::int64_t{3})), 0);
}

TEST(Value, StorageClassOrdering) {
  // NULL < numeric < text, per the documented ordering.
  EXPECT_LT(Value::null().compare(Value(std::int64_t{0})), 0);
  EXPECT_LT(Value(std::int64_t{999}).compare(Value("")), 0);
}

TEST(Value, DisplayString) {
  EXPECT_EQ(Value::null().toDisplayString(), "");
  EXPECT_EQ(Value(std::int64_t{42}).toDisplayString(), "42");
  EXPECT_EQ(Value(1.5).toDisplayString(), "1.5");
  EXPECT_EQ(Value("text").toDisplayString(), "text");
}

TEST(RowSerialization, RoundTripsAllTypes) {
  const Row row{Value::null(), Value(std::int64_t{-7}), Value(3.25), Value("hello")};
  std::vector<std::uint8_t> buf;
  serializeRow(row, buf);
  const Row back = deserializeRow(buf.data(), buf.size());
  ASSERT_EQ(back.size(), 4u);
  EXPECT_TRUE(back[0].isNull());
  EXPECT_EQ(back[1].asInt(), -7);
  EXPECT_DOUBLE_EQ(back[2].asReal(), 3.25);
  EXPECT_EQ(back[3].asText(), "hello");
}

TEST(RowSerialization, EmptyRowAndEmptyText) {
  std::vector<std::uint8_t> buf;
  serializeRow({}, buf);
  EXPECT_TRUE(deserializeRow(buf.data(), buf.size()).empty());

  buf.clear();
  serializeRow({Value("")}, buf);
  const Row back = deserializeRow(buf.data(), buf.size());
  EXPECT_EQ(back.at(0).asText(), "");
}

TEST(RowSerialization, TextWithEmbeddedNulAndUnicode) {
  std::string tricky("a\0b", 3);
  std::vector<std::uint8_t> buf;
  serializeRow({Value(tricky), Value("héllo→")}, buf);
  const Row back = deserializeRow(buf.data(), buf.size());
  EXPECT_EQ(back.at(0).asText(), tricky);
  EXPECT_EQ(back.at(1).asText(), "héllo→");
}

TEST(RowSerialization, TruncatedBufferThrows) {
  std::vector<std::uint8_t> buf;
  serializeRow({Value("hello world")}, buf);
  EXPECT_THROW(deserializeRow(buf.data(), buf.size() - 3), util::StorageError);
  EXPECT_THROW(deserializeRow(buf.data(), 1), util::StorageError);
}

}  // namespace
}  // namespace perftrack::minidb
