// Cross-thread exercises for the metrics registry and the tracer. These run
// under ThreadSanitizer in CI (ctest label `obs`, scripts/ci.sh tsan): the
// assertions matter less than the interleavings — lookups racing lookups,
// relaxed-atomic hot paths racing renderPrometheus snapshots, and tracer
// records racing ring snapshots.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace perftrack::obs {
namespace {

TEST(RegistryConcurrency, ParallelLookupsResolveToOneMetric) {
  Registry r;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&r, &seen, i] {
      seen[static_cast<std::size_t>(i)] = &r.counter("pt_conc_shared_total");
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
  }
}

TEST(RegistryConcurrency, CountersSumAcrossThreads) {
  Registry r;
  Counter& c = r.counter("pt_conc_adds_total");
  Histogram& h = r.histogram("pt_conc_lat_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c, &h] {
      for (int n = 0; n < kPerThread; ++n) {
        c.inc();
        h.observe(0.1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryConcurrency, RenderRacesWriters) {
  Registry r;
  Counter& c = r.counter("pt_conc_render_total");
  Gauge& g = r.gauge("pt_conc_render_level");
  Histogram& h = r.histogram("pt_conc_render_ms");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        c.inc();
        g.add(1);
        h.observe(0.5);
      }
    });
  }
  // Registration of new metrics also races the snapshot path.
  std::thread registrar([&r, &stop] {
    int n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      r.counter("pt_conc_dynamic_" + std::to_string(n++ % 16));
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string text = r.renderPrometheus();
    EXPECT_NE(text.find("pt_conc_render_total"), std::string::npos);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  registrar.join();
}

TEST(TracerConcurrency, RecordsRaceSnapshots) {
  Tracer tracer;
  tracer.setSlowQueryMillis(1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int i = 0; i < 4; ++i) {
    recorders.emplace_back([&tracer, &stop, i] {
      // A guaranteed floor of records (the stop flag may be set before this
      // thread is even scheduled), then keep racing until told to stop.
      std::uint64_t n = 0;
      while (n < 200 || !stop.load(std::memory_order_acquire)) {
        QueryTrace q;
        q.sql = "SELECT " + std::to_string(i) + "/" + std::to_string(n);
        // An occasional "slow" record exercises the slow ring without
        // flooding stderr with [slow-query] lines.
        q.exec_us = (n % 97 == 0) ? 5000 : 50;
        tracer.record(std::move(q));
        ++n;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const auto recent = tracer.recent();
    EXPECT_LE(recent.size(), Tracer::kRingCapacity);
    const auto slow = tracer.slow();
    EXPECT_LE(slow.size(), Tracer::kSlowRingCapacity);
    (void)tracer.last();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : recorders) t.join();
  EXPECT_GT(tracer.recordedCount(), 0u);
  // Seq numbers in the ring are unique and increasing oldest-to-newest.
  const auto recent = tracer.recent();
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].seq, recent[i].seq);
  }
}

}  // namespace
}  // namespace perftrack::obs
