// Unit tests for the observability layer: counter/gauge semantics,
// histogram bucket and percentile math, Prometheus rendering, and the
// query-trace rings.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace perftrack::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndNegatives) {
  Gauge g;
  g.set(10);
  g.add(-15);
  EXPECT_EQ(g.value(), -5);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, CountsAndSum) {
  Histogram h;
  h.observe(0.04);  // first bucket (<= 0.05)
  h.observe(0.2);   // <= 0.25
  h.observe(3.0);   // <= 5
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sumMs(), 0.04 + 0.2 + 3.0 + 5000.0, 0.01);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  Histogram h;
  h.observe(0.05);  // exactly the first bound -> first bucket
  const auto cum = h.snapshot();
  EXPECT_EQ(cum[0], 1u);
  EXPECT_EQ(cum[Histogram::kBucketCount - 1], 1u);
}

TEST(Histogram, PercentileInterpolation) {
  Histogram h;
  // 100 observations spread uniformly in (0.5, 1.0]: all land in the
  // bucket bounded by (0.5, 1.0], so percentiles interpolate inside it.
  for (int i = 1; i <= 100; ++i) h.observe(0.5 + 0.005 * i);
  const double p50 = h.percentile(50);
  EXPECT_GT(p50, 0.5);
  EXPECT_LE(p50, 1.0);
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 1.0);
}

TEST(Histogram, PercentileEmptyAndSingle) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0.0);
  h.observe(0.3);
  const double p50 = h.percentile(50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 0.5);  // the covering bucket's upper bound
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  h.observe(0.01);
  h.observe(1.5);
  h.observe(40.0);
  h.observe(900.0);
  const double p50 = h.percentile(50);
  const double p95 = h.percentile(95);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(Registry, LookupIsStableAndIdempotent) {
  Registry r;
  Counter& a = r.counter("pt_test_events_total");
  Counter& b = r.counter("pt_test_events_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  Gauge& g = r.gauge("pt_test_level");
  g.set(7);
  EXPECT_EQ(r.gauge("pt_test_level").value(), 7);
}

TEST(Registry, RenderPrometheusShape) {
  Registry r;
  r.counter("pt_test_events_total").inc(5);
  r.gauge("pt_test_level").set(-2);
  r.histogram("pt_test_latency_ms").observe(0.7);
  const std::string text = r.renderPrometheus();
  EXPECT_NE(text.find("# TYPE pt_test_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("pt_test_events_total 5"), std::string::npos);
  EXPECT_NE(text.find("pt_test_level -2"), std::string::npos);
  EXPECT_NE(text.find("pt_test_latency_ms_bucket{le="), std::string::npos);
  EXPECT_NE(text.find("pt_test_latency_ms_count 1"), std::string::npos);
  EXPECT_NE(text.find("+Inf"), std::string::npos);
  EXPECT_NE(text.find("pt_test_latency_ms_p95"), std::string::npos);
}

TEST(Registry, ResetAllKeepsRegistrations) {
  Registry r;
  Counter& c = r.counter("pt_test_reset_total");
  c.inc(9);
  r.resetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&r.counter("pt_test_reset_total"), &c);
}

TEST(Tracer, RingKeepsNewestAndAssignsSeq) {
  Tracer t;
  for (int i = 0; i < 300; ++i) {
    QueryTrace q;
    q.sql = "SELECT " + std::to_string(i);
    q.exec_us = static_cast<std::uint64_t>(i);
    t.record(std::move(q));
  }
  EXPECT_EQ(t.recordedCount(), 300u);
  const auto recent = t.recent();
  ASSERT_EQ(recent.size(), Tracer::kRingCapacity);
  // Oldest-to-newest: the last entry is the 300th trace.
  EXPECT_EQ(recent.back().sql, "SELECT 299");
  EXPECT_EQ(recent.front().sql, "SELECT " + std::to_string(300 - 256));
  EXPECT_LT(recent.front().seq, recent.back().seq);
  ASSERT_TRUE(t.last().has_value());
  EXPECT_EQ(t.last()->sql, "SELECT 299");
}

TEST(Tracer, SlowRingRespectsThreshold) {
  Tracer t;
  t.setSlowQueryMillis(10);
  QueryTrace fast;
  fast.sql = "fast";
  fast.exec_us = 500;  // 0.5ms
  t.record(std::move(fast));
  QueryTrace slow;
  slow.sql = "slow";
  slow.exec_us = 50000;  // 50ms
  t.record(std::move(slow));
  const auto slow_ring = t.slow();
  ASSERT_EQ(slow_ring.size(), 1u);
  EXPECT_EQ(slow_ring[0].sql, "slow");
  EXPECT_EQ(t.recent().size(), 2u);
}

TEST(Tracer, TruncatesLongSql) {
  Tracer t;
  QueryTrace q;
  q.sql = std::string(1000, 'x');
  t.record(std::move(q));
  ASSERT_TRUE(t.last().has_value());
  EXPECT_EQ(t.last()->sql.size(), Tracer::kMaxSqlBytes);
  EXPECT_EQ(t.last()->sql.substr(Tracer::kMaxSqlBytes - 3), "...");
}

TEST(Tracer, ClearEmptiesRings) {
  Tracer t;
  QueryTrace q;
  q.sql = "x";
  t.record(std::move(q));
  t.clear();
  EXPECT_TRUE(t.recent().empty());
  EXPECT_FALSE(t.last().has_value());
  EXPECT_EQ(t.recordedCount(), 0u);
}

TEST(Tracer, DisabledSwitchSkipsRecording) {
  Tracer t;
  setEnabled(false);
  QueryTrace q;
  q.sql = "dropped";
  t.record(std::move(q));
  setEnabled(true);
  EXPECT_EQ(t.recordedCount(), 0u);
  EXPECT_TRUE(t.recent().empty());
}

TEST(QueryTrace, ToLineAndTotal) {
  QueryTrace q;
  q.seq = 7;
  q.sql = "SELECT 1";
  q.parse_us = 10;
  q.plan_us = 20;
  q.bind_us = 30;
  q.exec_us = 40;
  q.rows = 2;
  q.remote = true;
  EXPECT_EQ(q.totalUs(), 100u);
  const std::string line = q.toLine();
  EXPECT_NE(line.find("#7"), std::string::npos);
  EXPECT_NE(line.find("[remote]"), std::string::npos);
  EXPECT_NE(line.find("rows=2"), std::string::npos);
  EXPECT_NE(line.find("SELECT 1"), std::string::npos);
}

TEST(TracerSampling, RateLimitsToOneSamplePerTick) {
  Tracer tracer;
  // A fresh tracer samples its first query...
  EXPECT_TRUE(tracer.shouldSample());
  // ...then a tight loop gets throttled to roughly one sample per coarse
  // clock tick — orders of magnitude fewer samples than calls.
  constexpr int kCalls = 200000;
  int samples = 0;
  for (int i = 0; i < kCalls; ++i) {
    if (tracer.shouldSample()) ++samples;
  }
  EXPECT_LT(samples, kCalls / 10);
}

TEST(TracerSampling, SlowThresholdDisablesTheLimiter) {
  Tracer tracer;
  tracer.setSlowQueryMillis(50);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(tracer.shouldSample());
}

TEST(TracerSampling, AlwaysSampleDefeatsTheLimiter) {
  Tracer tracer;
  tracer.setAlwaysSample(true);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(tracer.shouldSample());
}

TEST(TracerSampling, KillSwitchBeatsAlwaysSample) {
  Tracer tracer;
  tracer.setAlwaysSample(true);
  setEnabled(false);
  EXPECT_FALSE(tracer.shouldSample());
  setEnabled(true);
  EXPECT_TRUE(tracer.shouldSample());
}

TEST(TracerSampling, ClearResetsTheLimiter) {
  Tracer tracer;
  EXPECT_TRUE(tracer.shouldSample());  // consumes the current tick
  tracer.clear();
  EXPECT_TRUE(tracer.shouldSample());  // fresh again after clear
}

TEST(RenderTraces, ContainsBothSections) {
  Tracer t;
  t.setSlowQueryMillis(1);
  QueryTrace q;
  q.sql = "SELECT slow";
  q.exec_us = 5000;
  t.record(std::move(q));
  const std::string text = renderTraces(t);
  EXPECT_NE(text.find("== recent queries"), std::string::npos);
  EXPECT_NE(text.find("== slow queries"), std::string::npos);
  EXPECT_NE(text.find("SELECT slow"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::obs
