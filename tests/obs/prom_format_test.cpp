// Prometheus text-exposition format guarantees (DESIGN.md §5.5): a golden
// rendering for a fixed registry, stable (sorted) metric ordering, # TYPE
// lines for every family, histogram bucket monotonicity, and label-value
// escaping. ptserverd's /metrics endpoint and the METRICS wire verb both
// serve this rendering, so scrapers may rely on every property here.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace perftrack::obs {
namespace {

TEST(PromFormatTest, GoldenExposition) {
  // Registered deliberately out of name order: the rendering must sort.
  Registry reg;
  reg.counter("pt_zz_last_total").inc(3);
  reg.counter("pt_aa_first_total").inc(41);
  reg.gauge("pt_mid_level").set(-7);

  const std::string expected =
      "# TYPE pt_aa_first_total counter\n"
      "pt_aa_first_total 41\n"
      "# TYPE pt_zz_last_total counter\n"
      "pt_zz_last_total 3\n"
      "# TYPE pt_mid_level gauge\n"
      "pt_mid_level -7\n";
  EXPECT_EQ(reg.renderPrometheus(), expected);
  // Rendering is a pure snapshot: byte-stable across calls.
  EXPECT_EQ(reg.renderPrometheus(), expected);
}

TEST(PromFormatTest, EveryFamilyHasAWellFormedTypeLine) {
  Registry reg;
  reg.counter("pt_x_total").inc();
  reg.gauge("pt_y");
  reg.histogram("pt_z_ms").observe(1.0);

  std::istringstream in(reg.renderPrometheus());
  std::string line;
  std::size_t type_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    ++type_lines;
    std::istringstream fields(line);
    std::string hash, word, name, kind;
    fields >> hash >> word >> name >> kind;
    EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
        << line;
    EXPECT_FALSE(name.empty()) << line;
  }
  EXPECT_EQ(type_lines, 3u);
}

TEST(PromFormatTest, HistogramBucketsAreCumulativeAndMonotonic) {
  Registry reg;
  auto& h = reg.histogram("pt_lat_ms");
  for (double ms : {0.01, 0.2, 0.2, 3.0, 40.0, 5000.0}) h.observe(ms);

  std::istringstream in(reg.renderPrometheus());
  std::string line;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  while (std::getline(in, line)) {
    if (line.rfind("pt_lat_ms_bucket", 0) == 0) {
      buckets.push_back(std::stoull(line.substr(line.rfind(' ') + 1)));
    }
    if (line.rfind("pt_lat_ms_count ", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(buckets.size(), Histogram::kBucketCount);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]) << "bucket " << i << " not monotone";
  }
  // The +Inf bucket equals _count equals the number of observations — the
  // overflow observation (5000ms) must not be lost.
  EXPECT_EQ(buckets.back(), 6u);
  EXPECT_EQ(count, 6u);
}

TEST(PromFormatTest, LabelValueEscaping) {
  EXPECT_EQ(promEscapeLabel("plain"), "plain");
  EXPECT_EQ(promEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(promEscapeLabel("back\\slash"), "back\\\\slash");
  EXPECT_EQ(promEscapeLabel("two\nlines"), "two\\nlines");
  EXPECT_EQ(promEscapeLabel(""), "");
}

TEST(PromFormatTest, ResetAllZeroesWithoutDroppingFamilies) {
  Registry reg;
  reg.counter("pt_c_total").inc(9);
  reg.histogram("pt_h_ms").observe(2.0);
  reg.resetAll();
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("pt_c_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("pt_h_ms_count 0\n"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::obs
