#include "ptdf/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/irs_gen.h"
#include "sim/machines.h"
#include "tools/irs_parser.h"
#include "util/tempdir.h"

namespace perftrack::ptdf {
namespace {

/// Fixture: a store populated by a real IRS run (machine data, collectors,
/// per-function results — the full record mix).
class ExportTest : public ::testing::Test {
 protected:
  ExportTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    util::TempDir workspace("export-test");
    const auto run_dir = workspace.file("run");
    sim::generateIrsRun({sim::frostConfig(), 4, "MPI", 6, ""}, run_dir);
    std::ostringstream out;
    Writer writer(out);
    tools::convertIrsRun(run_dir, sim::frostConfig(), writer);
    std::istringstream in(out.str());
    load(store_, in);
  }

  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(ExportTest, FullStoreRoundTripPreservesEverything) {
  std::ostringstream out;
  Writer writer(out);
  const ExportStats ex = exportStore(store_, writer);
  EXPECT_GT(ex.resources, 0u);
  EXPECT_GT(ex.perf_results, 0u);

  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore copy(*conn2);
  copy.initialize();
  std::istringstream in(out.str());
  load(copy, in);

  const core::StoreStats original = store_.stats();
  const core::StoreStats restored = copy.stats();
  EXPECT_EQ(restored.resources, original.resources);
  EXPECT_EQ(restored.attributes, original.attributes);
  EXPECT_EQ(restored.metrics, original.metrics);
  EXPECT_EQ(restored.executions, original.executions);
  EXPECT_EQ(restored.performance_results, original.performance_results);
  EXPECT_EQ(restored.foci, original.foci);
  EXPECT_EQ(restored.resource_types, original.resource_types);
}

TEST_F(ExportTest, RoundTripPreservesResultDetails) {
  std::ostringstream out;
  Writer writer(out);
  exportStore(store_, writer);
  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore copy(*conn2);
  copy.initialize();
  std::istringstream in(out.str());
  load(copy, in);

  const std::string exec = store_.executions().at(0);
  const auto src_ids = store_.resultsForExecution(exec);
  const auto dst_ids = copy.resultsForExecution(exec);
  ASSERT_EQ(src_ids.size(), dst_ids.size());
  // Spot-check several records: metric, value, context size all survive.
  for (std::size_t i = 0; i < src_ids.size(); i += 97) {
    const auto a = store_.getResult(src_ids[i]);
    const auto b = copy.getResult(dst_ids[i]);
    EXPECT_EQ(a.metric, b.metric);
    EXPECT_EQ(a.tool, b.tool);
    EXPECT_NEAR(a.value, b.value, std::abs(a.value) * 1e-6 + 1e-9);
    EXPECT_EQ(a.contexts.size(), b.contexts.size());
    EXPECT_EQ(a.contexts.at(0).size(), b.contexts.at(0).size());
  }
}

TEST_F(ExportTest, RoundTripPreservesConstraints) {
  // The IRS build capture links the build to its compiler via a constraint.
  std::ostringstream out;
  Writer writer(out);
  const ExportStats ex = exportStore(store_, writer);
  EXPECT_GT(ex.constraints, 0u);
  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore copy(*conn2);
  copy.initialize();
  std::istringstream in(out.str());
  load(copy, in);
  const auto build = copy.findResource("/build-irs-frost-np4-s6");
  ASSERT_TRUE(build.has_value());
  EXPECT_FALSE(copy.constraintsOf(*build).empty());
}

TEST_F(ExportTest, ExportIntoPopulatedStoreMerges) {
  // Loading an export into a store that already has other data merges
  // instead of clobbering.
  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore other(*conn2);
  other.initialize();
  other.addExecution("unrelated", "otherapp");
  other.addResource("/unrelated", "execution");
  other.addPerformanceResult("unrelated", {{{"/unrelated"}, core::FocusType::Primary}},
                             "t", "m", 1.0);

  std::ostringstream out;
  Writer writer(out);
  exportStore(store_, writer);
  std::istringstream in(out.str());
  load(other, in);

  EXPECT_EQ(other.executions().size(), 2u);
  EXPECT_EQ(other.stats().performance_results,
            store_.stats().performance_results + 1);
}

TEST_F(ExportTest, SingleExecutionExportIsSelfContained) {
  const std::string exec = store_.executions().at(0);
  std::ostringstream out;
  Writer writer(out);
  const ExportStats ex = exportExecution(store_, exec, writer);
  EXPECT_EQ(ex.executions, 1u);
  EXPECT_GT(ex.perf_results, 1000u);

  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore copy(*conn2);
  copy.initialize();
  std::istringstream in(out.str());
  EXPECT_NO_THROW(load(copy, in));  // self-contained: no dangling references
  EXPECT_EQ(copy.resultsForExecution(exec).size(),
            store_.resultsForExecution(exec).size());
}

TEST_F(ExportTest, ExportIsAFixedPoint) {
  // Property: export(load(export(S))) is byte-identical to export(S) —
  // the PTdf form is canonical, so repeated round trips cannot drift.
  std::ostringstream first;
  {
    Writer writer(first);
    exportStore(store_, writer);
  }
  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore copy(*conn2);
  copy.initialize();
  {
    std::istringstream in(first.str());
    load(copy, in);
  }
  std::ostringstream second;
  {
    Writer writer(second);
    exportStore(copy, writer);
  }
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(ExportTest, ExportedFileIsIdempotentToReload) {
  // Loading the same export twice adds no duplicate resources (results do
  // duplicate — they carry no natural key — which matches the paper's
  // append-oriented loading model).
  std::ostringstream out;
  Writer writer(out);
  exportStore(store_, writer);
  auto conn2 = dbal::Connection::open(":memory:");
  core::PTDataStore copy(*conn2);
  copy.initialize();
  {
    std::istringstream in(out.str());
    load(copy, in);
  }
  const auto resources_once = copy.stats().resources;
  {
    std::istringstream in(out.str());
    load(copy, in);
  }
  EXPECT_EQ(copy.stats().resources, resources_once);
}

}  // namespace
}  // namespace perftrack::ptdf
