// Robustness: the PTdf loader must reject arbitrary malformed input with a
// line-numbered ParseError — never crash, never leave the store broken.
#include <gtest/gtest.h>

#include <sstream>

#include "core/integrity.h"
#include "ptdf/ptdf.h"
#include "util/error.h"
#include "util/rng.h"

namespace perftrack::ptdf {
namespace {

class LoaderRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoaderRobustness, RandomGarbageNeverCrashesAndStoreStaysConsistent) {
  util::Rng rng(GetParam());
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();

  static const char* kFragments[] = {
      "Application", "Execution", "Resource", "ResourceAttribute", "PerfResult",
      "PerfHistogram", "ResourceConstraint", "ResourceType", "Bogus", "/a/b",
      "grid/machine", "(primary)", "(sender)", "nan", "1.5", "-", "\"unterminated",
      "x,y(primary):z", "''", "##", "string", "resource", "exec1", "IRS",
  };
  for (int trial = 0; trial < 60; ++trial) {
    std::string script;
    const int lines = static_cast<int>(rng.uniformInt(1, 6));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng.uniformInt(1, 6));
      for (int w = 0; w < words; ++w) {
        if (w) script.push_back(' ');
        script += kFragments[rng.uniformInt(0, std::size(kFragments) - 1)];
      }
      script.push_back('\n');
    }
    std::istringstream in(script);
    try {
      load(store, in);  // a lucky valid script is fine too
    } catch (const util::ParseError&) {
      // expected for most random scripts
    }
  }
  // Whatever subset of lines loaded, the store must still be consistent.
  const auto problems = core::verifyStore(store);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoaderRobustness,
                         ::testing::Values(5u, 55u, 555u, 5555u));

TEST(LoaderLineNumbers, ReportedPositionMatchesOffendingLine) {
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  std::istringstream in(
      "Application IRS\n"
      "# a comment\n"
      "Execution e IRS\n"
      "Resource /e execution\n"
      "PerfResult e /e(primary) tool metric NOTANUMBER s\n");
  try {
    load(store, in);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), 5u);
  }
}

TEST(LoaderLineNumbers, PartialLoadKeepsEarlierRecords) {
  // The loader is streaming: records before the bad line are applied (the
  // transactional wrapper in ptdfload/examples is what makes loads atomic).
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  std::istringstream in(
      "Application IRS\n"
      "Execution early IRS\n"
      "ThisLineIsBroken\n");
  EXPECT_THROW(load(store, in), util::ParseError);
  EXPECT_EQ(store.executions(), std::vector<std::string>{"early"});
  EXPECT_TRUE(core::verifyStore(store).empty());
}

}  // namespace
}  // namespace perftrack::ptdf
