#include "ptdf/ptdf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace perftrack::ptdf {
namespace {

core::PTDataStore makeStore(std::unique_ptr<dbal::Connection>& conn) {
  conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  return store;
}

TEST(SplitFields, PlainWhitespace) {
  const auto fields = splitFields("Resource /a/b grid/machine");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "Resource");
  EXPECT_EQ(fields[1], "/a/b");
}

TEST(SplitFields, QuotedFieldWithSpaces) {
  const auto fields = splitFields("ResourceAttribute /r \"clock MHz\" 375 string");
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[2], "clock MHz");
}

TEST(SplitFields, EscapedQuote) {
  const auto fields = splitFields("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(SplitFields, UnterminatedQuoteThrows) {
  EXPECT_THROW(splitFields("Resource \"oops"), util::ParseError);
}

TEST(QuoteField, RoundTripsThroughSplit) {
  for (const std::string original :
       {"plain", "two words", "with\"quote", "", "tab\there"}) {
    const auto fields = splitFields(quoteField(original));
    ASSERT_EQ(fields.size(), original.empty() ? 1u : 1u);
    EXPECT_EQ(fields[0], original);
  }
}

TEST(ResourceSets, SingleSetParses) {
  const auto sets = parseResourceSets("/a,/b(primary)");
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].set_type, core::FocusType::Primary);
  ASSERT_EQ(sets[0].resource_names.size(), 2u);
  EXPECT_EQ(sets[0].resource_names[1], "/b");
}

TEST(ResourceSets, MultipleSetsParse) {
  const auto sets = parseResourceSets("/caller(parent):/callee,/p0(child)");
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].set_type, core::FocusType::Parent);
  EXPECT_EQ(sets[1].set_type, core::FocusType::Child);
  EXPECT_EQ(sets[1].resource_names.size(), 2u);
}

TEST(ResourceSets, FormatRoundTrips) {
  const std::string expr = "/a,/b(primary):/c(sender)";
  EXPECT_EQ(formatResourceSets(parseResourceSets(expr)), expr);
}

TEST(ResourceSets, MalformedThrows) {
  EXPECT_THROW(parseResourceSets(""), util::ParseError);
  EXPECT_THROW(parseResourceSets("/a"), util::ParseError);           // no type
  EXPECT_THROW(parseResourceSets("/a(bogus)"), util::PTError);      // bad type
  EXPECT_THROW(parseResourceSets("(primary)"), util::ParseError);   // no names
  EXPECT_THROW(parseResourceSets("/a(primary):"), util::ParseError);
}

TEST(Load, FullRecordMix) {
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  std::istringstream in(R"(# comment line
Application IRS
ResourceType syncObject/class
Execution run1 IRS
Resource /run1 execution
Resource /run1/p0 execution/process run1
ResourceAttribute /run1/p0 rank 0 string
Resource /G/M grid/machine
ResourceAttribute /run1 machineRes /G/M resource
PerfResult run1 /run1/p0(primary) mytool "cpu time" 1.25 seconds
PerfResult run1 /run1/p0(primary) mytool "cpu time" 2.5 seconds 0 10
ResourceConstraint /run1/p0 /G/M
)");
  const LoadStats stats = load(store, in);
  EXPECT_EQ(stats.applications, 1u);
  EXPECT_EQ(stats.resource_types, 1u);
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.resources, 3u);
  EXPECT_EQ(stats.attributes, 1u);
  EXPECT_EQ(stats.constraints, 2u);  // explicit + attribute of type resource
  EXPECT_EQ(stats.perf_results, 2u);
  EXPECT_EQ(stats.records, 11u);
  EXPECT_EQ(stats.lines, 12u);  // 11 records + 1 comment line

  // The data is really in the store.
  EXPECT_TRUE(store.hasResourceType("syncObject/class"));
  const auto ids = store.resultsForExecution("run1");
  ASSERT_EQ(ids.size(), 2u);
  const auto rec = store.getResult(ids[1]);
  EXPECT_DOUBLE_EQ(rec.value, 2.5);
  EXPECT_DOUBLE_EQ(rec.start_time, 0.0);
  EXPECT_DOUBLE_EQ(rec.end_time, 10.0);
}

TEST(Load, ErrorsCarryLineNumbers) {
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  std::istringstream in("Application IRS\nBogusRecord x\n");
  try {
    load(store, in);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("BogusRecord"), std::string::npos);
  }
}

TEST(Load, SemanticErrorsBecomeParseErrors) {
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  // PerfResult for an execution that was never defined.
  std::istringstream in("Resource /r time\nPerfResult ghost /r(primary) t m 1 s\n");
  EXPECT_THROW(load(store, in), util::ParseError);
}

TEST(Load, BadFieldCountsThrow) {
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  std::istringstream a("Application\n");
  EXPECT_THROW(load(store, a), util::ParseError);
  std::istringstream b("Execution onlyone\n");
  EXPECT_THROW(load(store, b), util::ParseError);
  std::istringstream c("PerfResult run set tool metric notanumber units\n");
  EXPECT_THROW(load(store, c), util::ParseError);
}

TEST(Load, UnknownAttributeTypeThrows) {
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  std::istringstream in("Resource /r time\nResourceAttribute /r a b weird\n");
  EXPECT_THROW(load(store, in), util::ParseError);
}

TEST(Writer, RoundTripsThroughLoader) {
  std::ostringstream out;
  Writer writer(out);
  writer.comment("round trip");
  writer.application("IRS");
  writer.execution("run1", "IRS");
  writer.resource("/run1", "execution");
  writer.resource("/run1/p0", "execution/process", "run1");
  writer.resourceAttribute("/run1/p0", "clock MHz", "375");
  writer.resource("/G/M", "grid/machine");
  writer.resourceConstraint("/run1/p0", "/G/M");
  writer.perfResult("run1", {{{"/run1/p0"}, core::FocusType::Primary}}, "tool",
                    "metric with spaces", 3.5, "seconds");
  EXPECT_EQ(writer.linesWritten(), 9u);

  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  std::istringstream in(out.str());
  const LoadStats stats = load(store, in);
  EXPECT_EQ(stats.perf_results, 1u);
  EXPECT_EQ(stats.resources, 3u);
  const auto ids = store.resultsForExecution("run1");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(store.getResult(ids[0]).metric, "metric with spaces");
}

TEST(Writer, MultiSetPerfResultRoundTrips) {
  std::ostringstream out;
  Writer writer(out);
  writer.application("A");
  writer.execution("e", "A");
  writer.resource("/caller", "build");
  writer.resource("/callee", "environment");
  writer.perfResult("e",
                    {{{"/caller"}, core::FocusType::Parent},
                     {{"/callee"}, core::FocusType::Child}},
                    "mpiP", "time", 1.0, "ms");
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  std::istringstream in(out.str());
  load(store, in);
  const auto rec = store.getResult(store.resultsForExecution("e").at(0));
  EXPECT_EQ(rec.contexts.size(), 2u);
}

TEST(LoadFile, MissingFileThrows) {
  std::unique_ptr<dbal::Connection> conn;
  auto store = makeStore(conn);
  EXPECT_THROW(loadFile(store, "/no/such/file.ptdf"), util::PTError);
}

}  // namespace
}  // namespace perftrack::ptdf
