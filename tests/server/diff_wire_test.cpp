// The DIFF wire verb: a remote dbal::Connection::diff() against ptserverd
// must reproduce the in-process engine's report byte-for-byte (stats, row
// order, REAL fidelity), honor the request knobs, map unknown executions to
// SqlError, and leave no server-side cursor behind.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/datastore.h"
#include "core/diag.h"
#include "dbal/connection.h"
#include "dbal/remote.h"
#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "server/server.h"
#include "util/error.h"

namespace perftrack {
namespace {

class DiffWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = minidb::Database::openMemory();
    server::ServerConfig config;
    config.port = 0;
    server_ = std::make_unique<server::PtServer>(*db_, config);
    server_->start();
    conn_ = dbal::Connection::open("pt://127.0.0.1:" +
                                   std::to_string(server_->boundPort()));
    store_ = std::make_unique<core::PTDataStore>(*conn_);
    store_->initialize();

    // Two runs with per-run execution resources plus a planted divergence.
    for (const char* exec : {"runA", "runB"}) {
      const bool is_b = exec == std::string("runB");
      store_->addExecution(exec, "app");
      const std::string root = std::string("/") + exec;
      store_->addResource(root + "/p0", "execution/process");
      store_->addResource(root + "/p1", "execution/process");
      addResult(exec, root + "/p0", "wall_ms", is_b ? 250.0 : 100.0);
      addResult(exec, root + "/p1", "wall_ms", is_b ? 55.0 : 50.0);
      addResult(exec, root + "/p0", "rss_kb", 2048.0);
    }
    addResult("runA", "/runA/p1", "a_only_metric", 1.0);
  }

  void addResult(const std::string& exec, const std::string& resource,
                 const std::string& metric, double value) {
    store_->addPerformanceResult(exec, {{{resource}, core::FocusType::Primary}},
                                 "tool", metric, value);
  }

  void TearDown() override {
    store_.reset();
    conn_.reset();
    server_->stop();
  }

  core::diag::Request request(std::uint32_t top_k = 0, double ratio = 0.10,
                              double abs = 0.0) {
    core::diag::Request r;
    r.exec_a = "runA";
    r.exec_b = "runB";
    r.top_k = top_k;
    r.ratio_threshold = ratio;
    r.abs_threshold = abs;
    return r;
  }

  std::unique_ptr<minidb::Database> db_;
  std::unique_ptr<server::PtServer> server_;
  std::unique_ptr<dbal::Connection> conn_;
  std::unique_ptr<core::PTDataStore> store_;
};

TEST_F(DiffWireTest, WireReportMatchesLocalEngineByteForByte) {
  const auto remote = conn_->diff(request());
  minidb::sql::Engine engine(*db_);
  const auto local = core::diag::diagnose(engine, request());
  EXPECT_EQ(remote.toText(), local.toText());
  EXPECT_EQ(remote.stats.results_a, local.stats.results_a);
  EXPECT_EQ(remote.stats.aligned, local.stats.aligned);
  EXPECT_EQ(remote.stats.only_a, local.stats.only_a);
  EXPECT_EQ(remote.stats.divergent, local.stats.divergent);
  ASSERT_EQ(remote.rows.size(), local.rows.size());
  for (std::size_t i = 0; i < remote.rows.size(); ++i) {
    EXPECT_EQ(remote.rows[i].metric, local.rows[i].metric);
    EXPECT_EQ(remote.rows[i].context, local.rows[i].context);
    // REAL fidelity over the wire: exact, not formatted-and-reparsed.
    EXPECT_EQ(remote.rows[i].value_a, local.rows[i].value_a);
    EXPECT_EQ(remote.rows[i].value_b, local.rows[i].value_b);
    EXPECT_EQ(remote.rows[i].ratio, local.rows[i].ratio);
    EXPECT_EQ(remote.rows[i].contribution_pct, local.rows[i].contribution_pct);
  }
}

TEST_F(DiffWireTest, PlantedDivergenceIsRankedFirst) {
  const auto report = conn_->diff(request());
  ASSERT_GE(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].metric, "wall_ms");
  EXPECT_EQ(report.rows[0].context, "/$EXEC/p0");
  EXPECT_DOUBLE_EQ(report.rows[0].ratio, 2.5);
  EXPECT_EQ(report.stats.only_a, 1u);  // a_only_metric
}

TEST_F(DiffWireTest, KnobsSurviveTheWire) {
  // 10% threshold keeps both wall_ms changes; 50% keeps only the 2.5x one.
  EXPECT_EQ(conn_->diff(request(0, 0.05)).rows.size(), 2u);
  EXPECT_EQ(conn_->diff(request(0, 0.50)).rows.size(), 1u);
  const auto top = conn_->diff(request(1, 0.05));
  EXPECT_EQ(top.rows.size(), 1u);
  EXPECT_EQ(top.stats.divergent, 2u);
}

TEST_F(DiffWireTest, UnknownExecutionMapsToSqlError) {
  core::diag::Request bad = request();
  bad.exec_b = "no-such-run";
  EXPECT_THROW(conn_->diff(bad), util::SqlError);
  // The session must stay usable after the error.
  EXPECT_EQ(conn_->diff(request()).stats.aligned, 3u);
}

TEST_F(DiffWireTest, DiffLeaksNoServerCursor) {
  for (int i = 0; i < 5; ++i) (void)conn_->diff(request());
  EXPECT_EQ(server_->counters().open_cursors.load(), 0u);
}

}  // namespace
}  // namespace perftrack
