// Wire-protocol codec tests: byte-level round trips and the malformed
// payloads a hostile or buggy client can produce.
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "minidb/value.h"

namespace perftrack::server {
namespace {

using minidb::Value;

TEST(WireCodec, IntegerRoundTripLittleEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  w.i64(-42);

  const auto bytes = w.bytes();
  // Spot-check the layout: little-endian, no padding.
  ASSERT_EQ(bytes.size(), 1u + 2 + 4 + 8 + 8);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0x34);  // u16 low byte first
  EXPECT_EQ(bytes[2], 0x12);
  EXPECT_EQ(bytes[3], 0xEF);  // u32 low byte first

  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.atEnd());
}

TEST(WireCodec, StringRoundTrip) {
  WireWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string("emb\0edded", 9));

  WireReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("emb\0edded", 9));
}

TEST(WireCodec, ValueRoundTripAllTags) {
  WireWriter w;
  w.value(Value::null());
  w.value(Value(std::int64_t{-123456789}));
  w.value(Value(3.25));
  w.value(Value("metric/papi/L1_DCM"));

  WireReader r(w.bytes());
  EXPECT_TRUE(r.value().isNull());
  EXPECT_EQ(r.value().asInt(), -123456789);
  EXPECT_DOUBLE_EQ(r.value().asReal(), 3.25);
  EXPECT_EQ(r.value().asText(), "metric/papi/L1_DCM");
}

TEST(WireCodec, RealSurvivesBitExact) {
  // std::bit_cast transport: NaN payloads and signed zero survive.
  const double values[] = {0.0, -0.0, 1e308, -1e-308,
                           std::numeric_limits<double>::infinity()};
  for (const double d : values) {
    WireWriter w;
    w.value(Value(d));
    WireReader r(w.bytes());
    const Value v = r.value();
    EXPECT_EQ(std::signbit(v.asReal()), std::signbit(d));
    EXPECT_EQ(v.asReal(), d);
  }
}

TEST(WireCodec, RowRoundTrip) {
  minidb::Row row{Value(std::int64_t{7}), Value("cluster/node7"), Value::null()};
  WireWriter w;
  w.row(row);
  WireReader r(w.bytes());
  const minidb::Row back = r.row();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].asInt(), 7);
  EXPECT_EQ(back[1].asText(), "cluster/node7");
  EXPECT_TRUE(back[2].isNull());
}

TEST(WireCodec, TruncatedPayloadThrows) {
  WireWriter w;
  w.u32(12345);
  auto bytes = w.take();
  bytes.pop_back();  // 3 of 4 bytes
  WireReader r(bytes);
  EXPECT_THROW(r.u32(), WireError);
}

TEST(WireCodec, TruncatedStringThrows) {
  WireWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  WireReader r(w.bytes());
  EXPECT_THROW(r.str(), WireError);
}

TEST(WireCodec, BadValueTagThrows) {
  std::vector<std::uint8_t> bytes{99};  // no such tag
  WireReader r(bytes);
  EXPECT_THROW(r.value(), WireError);
}

TEST(WireCodec, RowColumnCountLieThrows) {
  WireWriter w;
  w.u32(1u << 30);  // "a billion columns" in a 4-byte payload
  WireReader r(w.bytes());
  EXPECT_THROW(r.row(), WireError);
}

TEST(WireCodec, ExpectEndCatchesTrailingGarbage) {
  WireWriter w;
  w.u32(1);
  w.u8(0xFF);
  WireReader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.expectEnd("TEST"), WireError);
}

TEST(WireCodec, ErrorFrameRoundTrip) {
  const Frame frame = makeError(ErrCode::Busy, "writer active");
  EXPECT_EQ(frame.op, Op::Error);
  const auto [code, message] = readError(frame);
  EXPECT_EQ(code, ErrCode::Busy);
  EXPECT_EQ(message, "writer active");
}

TEST(WireCodec, OpAndErrCodeNames) {
  EXPECT_EQ(opName(Op::Fetch), "FETCH");
  EXPECT_EQ(opName(Op::CursorOk), "CURSOR_OK");
  EXPECT_EQ(errCodeName(ErrCode::TooBig), "TOO_BIG");
}

}  // namespace
}  // namespace perftrack::server
