// ptserverd integration tests: a real PtServer on an ephemeral port, driven
// through dbal::RemoteConnection and through raw sockets (for the protocol
// edge cases a well-behaved client never produces).
#include "server/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dbal/connection.h"
#include "dbal/remote.h"
#include "minidb/database.h"
#include "obs/trace.h"
#include "server/net.h"
#include "server/protocol.h"
#include "util/error.h"

namespace perftrack {
namespace {

using dbal::Connection;
using dbal::RemoteConnection;
using server::ErrCode;
using server::Frame;
using server::Op;
using server::WireReader;
using server::WireWriter;

/// One in-memory store behind one server, torn down per fixture.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = minidb::Database::openMemory();
    server::ServerConfig config;
    config.port = 0;  // ephemeral
    config.workers = 4;
    config.limits.lock_timeout = std::chrono::milliseconds(2000);
    server_ = std::make_unique<server::PtServer>(*db_, config);
    server_->start();
    target_ = "127.0.0.1:" + std::to_string(server_->boundPort());
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<Connection> connect() {
    return Connection::open("pt://" + target_);
  }

  /// Raw socket with the handshake already done.
  server::Socket rawClient() {
    server::Socket sock =
        server::connectTo(target_, std::chrono::milliseconds(5000));
    WireWriter hello;
    hello.u32(server::kProtocolVersion);
    sock.sendFrame(server::makeFrame(Op::Hello, std::move(hello)));
    auto reply = sock.recvFrame();
    EXPECT_TRUE(reply.has_value());
    EXPECT_EQ(reply->op, Op::HelloOk);
    return sock;
  }

  std::unique_ptr<minidb::Database> db_;
  std::unique_ptr<server::PtServer> server_;
  std::string target_;
};

TEST_F(ServerTest, ExecAndQueryRoundTrip) {
  auto conn = connect();
  conn->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  const auto ins = conn->exec("INSERT INTO t (name) VALUES ('alpha')");
  EXPECT_EQ(ins.rows_affected, 1);
  EXPECT_EQ(ins.last_insert_id, 1);
  conn->execPrepared("INSERT INTO t (name) VALUES (?)", {minidb::Value("beta")});

  // exec() of a SELECT materializes (columns + rows), like the local backend.
  const auto rs = conn->exec("SELECT id, name FROM t");
  ASSERT_EQ(rs.columns.size(), 2u);
  EXPECT_EQ(rs.columns[0], "id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[1][1].asText(), "beta");

  // query() streams through a server-side cursor.
  auto cur = conn->query("SELECT name FROM t WHERE id = ?",
                         {minidb::Value(std::int64_t{2})});
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_EQ(row[0].asText(), "beta");
  EXPECT_FALSE(cur.next(row));
}

TEST_F(ServerTest, ScalarHelpersWork) {
  auto conn = connect();
  conn->exec("CREATE TABLE n (v INTEGER)");
  conn->exec("INSERT INTO n VALUES (41)");
  EXPECT_EQ(conn->queryInt("SELECT v + 1 FROM n"), 42);
  EXPECT_TRUE(conn->queryValue("SELECT v FROM n WHERE v > 100").isNull());
}

TEST_F(ServerTest, TransactionsRejectedOverWire) {
  auto conn = connect();
  EXPECT_THROW(conn->begin(), util::SqlError);
  EXPECT_THROW(conn->exec("BEGIN"), util::SqlError);
  EXPECT_FALSE(conn->inTransaction());
  // Autocommit means the write is durable without an explicit commit.
  conn->exec("CREATE TABLE t (v INTEGER)");
  conn->exec("INSERT INTO t VALUES (1)");
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM t"), 1);
}

TEST_F(ServerTest, SqlErrorsComeBackTyped) {
  auto conn = connect();
  EXPECT_THROW(conn->exec("SELEKT nonsense"), util::SqlError);
  EXPECT_THROW(conn->exec("SELECT * FROM missing_table"), util::SqlError);
  // The connection survives server-side errors.
  conn->exec("CREATE TABLE ok (v INTEGER)");
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM ok"), 0);
}

TEST_F(ServerTest, BusyStatementFallbackExecDuringOpenCursor) {
  // Satellite regression: exec()/execPrepared() on a statement whose remote
  // cursor is still streaming must not re-enter it (the server-side
  // statement would throw "cursor already open").
  auto conn = connect();
  conn->exec("CREATE TABLE t (v INTEGER)");
  for (int i = 1; i <= 10; ++i) {
    conn->execPrepared("INSERT INTO t VALUES (?)", {minidb::Value(i)});
  }

  auto cur = conn->query("SELECT v FROM t");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));  // the cursor is now mid-stream

  // Same SQL text while the cursor is open: must take the temporary-
  // statement path, not corrupt the stream.
  const auto rs = conn->exec("SELECT v FROM t");
  EXPECT_EQ(rs.rows.size(), 10u);

  // An interleaved write is also safe (it waits on the gate until the
  // reader's hold drains, so drain the cursor first).
  int streamed = 1;
  while (cur.next(row)) ++streamed;
  EXPECT_EQ(streamed, 10);
  conn->exec("INSERT INTO t VALUES (11)");
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM t"), 11);
}

TEST_F(ServerTest, QueryDuringOpenCursorUsesFreshStatement) {
  auto conn = connect();
  conn->exec("CREATE TABLE t (v INTEGER)");
  conn->exec("INSERT INTO t VALUES (1)");
  conn->exec("INSERT INTO t VALUES (2)");

  auto a = conn->query("SELECT v FROM t");
  auto b = conn->query("SELECT v FROM t");  // same text, cursor a still open
  minidb::Row ra, rb;
  ASSERT_TRUE(a.next(ra));
  ASSERT_TRUE(b.next(rb));
  EXPECT_EQ(ra[0].asInt(), rb[0].asInt());
  a.close();
  ASSERT_TRUE(b.next(rb));
  EXPECT_EQ(rb[0].asInt(), 2);
}

TEST_F(ServerTest, LargeResultStreamsInBatches) {
  auto conn = connect();
  conn->exec("CREATE TABLE big (id INTEGER PRIMARY KEY, v INTEGER)");
  for (int i = 1; i <= 2000; ++i) {
    conn->execPrepared("INSERT INTO big (v) VALUES (?)", {minidb::Value(i * 7)});
  }
  // 2000 rows > the 256-row default batch: exercises repeated FETCH.
  auto cur = conn->query("SELECT id, v FROM big");
  minidb::Row row;
  int n = 0;
  while (cur.next(row)) {
    ++n;
    EXPECT_EQ(row[1].asInt(), row[0].asInt() * 7);
  }
  EXPECT_EQ(n, 2000);
}

TEST_F(ServerTest, SetUseIndexesIsSessionScoped) {
  auto conn = connect();
  conn->exec("CREATE TABLE t (v INTEGER)");
  conn->exec("CREATE INDEX idx_v ON t (v)");
  conn->exec("INSERT INTO t VALUES (5)");
  conn->setUseIndexes(false);
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM t WHERE v = 5"), 1);
  conn->setUseIndexes(true);
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM t WHERE v = 5"), 1);
}

TEST_F(ServerTest, SizeBytesAndRecoveryStats) {
  auto conn = connect();
  EXPECT_GT(conn->sizeBytes(), 0u);
  EXPECT_FALSE(conn->recoveryStats().recovered);
  EXPECT_THROW(conn->database(), util::SqlError);
}

TEST_F(ServerTest, StatReportsSessionsCursorsAndUptime) {
  auto a = dbal::RemoteConnection::connect(target_);
  auto b = dbal::RemoteConnection::connect(target_);
  a->exec("CREATE TABLE t (v INTEGER)");
  for (int i = 0; i < 600; ++i) {
    a->execPrepared("INSERT INTO t VALUES (?)", {minidb::Value(i)});
  }

  dbal::ServerStat stat = a->serverStat();
  ASSERT_TRUE(stat.extended);
  EXPECT_EQ(stat.sessions, 2u);
  EXPECT_EQ(stat.open_cursors, 0u);
  EXPECT_GT(stat.frames_served, 0u);
  EXPECT_LT(stat.uptime_ms, 10u * 60 * 1000);  // sane, not garbage
  EXPECT_EQ(stat.size_bytes, a->sizeBytes());

  // A streaming cursor (600 rows > one batch) holds a server-side cursor
  // open; STAT must see it, and see it gone after the stream is drained.
  auto cur = b->query("SELECT v FROM t");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  stat = a->serverStat();
  EXPECT_EQ(stat.open_cursors, 1u);
  while (cur.next(row)) {
  }
  stat = a->serverStat();
  EXPECT_EQ(stat.open_cursors, 0u);
}

TEST(ServerStatFile, ReportsDbFileAndJournalSizes) {
  const std::string path = ::testing::TempDir() + "/pt_stat_file_test.db";
  std::remove(path.c_str());
  std::remove((path + "-journal").c_str());
  auto db = minidb::Database::open(path);
  server::ServerConfig config;
  config.port = 0;
  server::PtServer srv(*db, config);
  srv.start();
  {
    auto conn = dbal::RemoteConnection::connect(
        "127.0.0.1:" + std::to_string(srv.boundPort()));
    conn->exec("CREATE TABLE t (v INTEGER)");
    conn->exec("INSERT INTO t VALUES (1)");
    const dbal::ServerStat stat = conn->serverStat();
    ASSERT_TRUE(stat.extended);
    EXPECT_GT(stat.db_file_bytes, 0u);
    // Between commits the rollback journal is truncated/removed.
    EXPECT_EQ(stat.journal_bytes, 0u);
    EXPECT_EQ(stat.db_file_bytes, stat.size_bytes);
  }
  srv.stop();
  std::remove(path.c_str());
}

TEST_F(ServerTest, MetricsVerbReturnsLiveCounters) {
  auto conn = dbal::RemoteConnection::connect(target_);
  conn->exec("CREATE TABLE t (v INTEGER)");
  const std::string before = conn->serverMetrics();
  EXPECT_NE(before.find("# TYPE pt_sql_queries_total counter"), std::string::npos);
  EXPECT_NE(before.find("pt_server_sessions 1"), std::string::npos);
  EXPECT_NE(before.find("pt_server_frames_served_total"), std::string::npos);
  EXPECT_NE(before.find("pt_server_uptime_ms"), std::string::npos);

  auto countersOf = [](const std::string& text, const std::string& name) {
    const std::size_t pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << name;
    return std::stoull(text.substr(pos + name.size() + 2));
  };
  const auto frames_before = countersOf(before, "pt_server_frames_served_total");
  for (int i = 0; i < 5; ++i) conn->exec("INSERT INTO t VALUES (1)");
  const std::string after = conn->serverMetrics();
  EXPECT_GT(countersOf(after, "pt_server_frames_served_total"), frames_before);
}

TEST_F(ServerTest, RemoteExplainAnalyzeStreamsAnnotatedPlan) {
  auto conn = connect();
  conn->exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, app TEXT)");
  conn->exec("INSERT INTO runs (app) VALUES ('irs'), ('smg'), ('irs')");
  auto cur = conn->query("EXPLAIN ANALYZE SELECT * FROM runs WHERE app = 'irs'");
  ASSERT_EQ(cur.columns().size(), 1u);
  EXPECT_EQ(cur.columns()[0], "plan");
  minidb::Row row;
  std::size_t lines = 0;
  bool saw_actuals = false;
  while (cur.next(row)) {
    ++lines;
    if (row[0].asText().find("actual rows=2") != std::string::npos) {
      saw_actuals = true;
    }
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(saw_actuals);
  // Plain EXPLAIN over the wire stays annotation-free.
  auto plain = conn->query("EXPLAIN SELECT * FROM runs WHERE app = 'irs'");
  while (plain.next(row)) {
    EXPECT_EQ(row[0].asText().find("actual"), std::string::npos);
  }
}

TEST(ServerMetricsHttp, EndpointServesPrometheusAndTraces) {
  // The workload below runs back to back inside one coarse clock tick, so
  // defeat the tracer's one-sample-per-tick rate limiter: this test asserts
  // that specific statements land in the /traces ring.
  obs::Tracer::global().setAlwaysSample(true);
  struct SamplerReset {
    ~SamplerReset() { obs::Tracer::global().setAlwaysSample(false); }
  } sampler_reset;

  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;
  config.metrics_port = 0;  // ephemeral
  server::PtServer srv(*db, config);
  srv.start();
  ASSERT_GT(srv.boundMetricsPort(), 0);

  auto httpGet = [&srv](const std::string& path) {
    server::Socket sock = server::connectTo(
        "127.0.0.1:" + std::to_string(srv.boundMetricsPort()),
        std::chrono::milliseconds(5000));
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    sock.sendAll(request.data(), request.size());
    std::string response;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  };

  {
    auto conn = dbal::RemoteConnection::connect(
        "127.0.0.1:" + std::to_string(srv.boundPort()));
    conn->exec("CREATE TABLE t (v INTEGER)");
    conn->exec("INSERT INTO t VALUES (7)");
    conn->exec("SELECT * FROM t");
  }

  // The poller reaps the disconnected session asynchronously, so the gauge
  // may still read 1 on the first scrape under load; retry until it drops.
  std::string metrics = httpGet("/metrics");
  for (int i = 0; i < 100 && metrics.find("pt_server_sessions 0") == std::string::npos;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    metrics = httpGet("/metrics");
  }
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("pt_sql_queries_total"), std::string::npos);
  EXPECT_NE(metrics.find("pt_server_sessions 0"), std::string::npos);

  const std::string traces = httpGet("/traces");
  EXPECT_NE(traces.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(traces.find("== recent queries"), std::string::npos);
  EXPECT_NE(traces.find("SELECT * FROM t"), std::string::npos);

  EXPECT_NE(httpGet("/nope").find("HTTP/1.0 404"), std::string::npos);
  srv.stop();
}

TEST_F(ServerTest, TwoClientsSeeEachOthersWrites) {
  auto a = connect();
  auto b = connect();
  a->exec("CREATE TABLE shared (v INTEGER)");
  a->exec("INSERT INTO shared VALUES (123)");
  EXPECT_EQ(b->queryInt("SELECT v FROM shared"), 123);
}

TEST_F(ServerTest, VacuumRunsExclusively) {
  auto conn = connect();
  conn->exec("CREATE TABLE t (v INTEGER)");
  for (int i = 0; i < 50; ++i) {
    conn->execPrepared("INSERT INTO t VALUES (?)", {minidb::Value(i)});
  }
  conn->exec("DELETE FROM t WHERE v < 25");
  conn->exec("VACUUM");
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM t"), 25);
}

// --- raw-socket protocol edge cases ------------------------------------------

TEST_F(ServerTest, HelloRequiredFirst) {
  server::Socket sock =
      server::connectTo(target_, std::chrono::milliseconds(5000));
  sock.sendFrame(Frame{Op::Ping, {}});
  auto reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->op, Op::Error);
  EXPECT_EQ(server::readError(*reply).first, ErrCode::Protocol);
}

TEST_F(ServerTest, UnknownOpcodeKeepsConnectionAlive) {
  server::Socket sock = rawClient();
  Frame bogus;
  bogus.op = static_cast<Op>(200);
  sock.sendFrame(bogus);
  auto reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->op, Op::Error);
  EXPECT_EQ(server::readError(*reply).first, ErrCode::UnknownOpcode);

  // The same connection still serves requests.
  sock.sendFrame(Frame{Op::Ping, {}});
  reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->op, Op::Pong);
}

TEST_F(ServerTest, OversizedFrameRejectedThenClosed) {
  server::Socket sock = rawClient();
  // Hand-build a header advertising a payload beyond kMaxFrameBytes.
  std::uint8_t header[server::kFrameHeaderBytes];
  const std::uint32_t lie = server::kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(lie >> (8 * i));
  header[4] = static_cast<std::uint8_t>(Op::Ping);
  sock.sendAll(header, sizeof(header));

  auto reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->op, Op::Error);
  EXPECT_EQ(server::readError(*reply).first, ErrCode::TooBig);
  // The stream cannot be resynced: the server closes after the error frame.
  EXPECT_FALSE(sock.recvFrame().has_value());
}

TEST_F(ServerTest, TruncatedFrameDoesNotKillServer) {
  {
    server::Socket sock = rawClient();
    // A header promising 100 bytes, then a hangup after 3.
    std::uint8_t header[server::kFrameHeaderBytes] = {100, 0, 0, 0,
                                                      static_cast<std::uint8_t>(Op::Prepare)};
    sock.sendAll(header, sizeof(header));
    const std::uint8_t partial[3] = {1, 2, 3};
    sock.sendAll(partial, sizeof(partial));
    sock.close();
  }
  // The daemon must shrug it off and serve the next client.
  auto conn = connect();
  conn->exec("CREATE TABLE after_truncation (v INTEGER)");
  EXPECT_EQ(conn->queryInt("SELECT COUNT(*) FROM after_truncation"), 0);
}

TEST_F(ServerTest, MalformedPayloadGetsProtocolError) {
  server::Socket sock = rawClient();
  WireWriter w;
  w.u8(7);  // PREPARE wants {str sql}; one stray byte is a truncated string
  sock.sendFrame(server::makeFrame(Op::Prepare, std::move(w)));
  auto reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->op, Op::Error);
  EXPECT_EQ(server::readError(*reply).first, ErrCode::Protocol);
}

TEST_F(ServerTest, FetchAfterCloseIsBadState) {
  server::Socket sock = rawClient();

  WireWriter prep;
  prep.str("SELECT 1");
  sock.sendFrame(server::makeFrame(Op::Prepare, std::move(prep)));
  auto reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value() && reply->op == Op::StmtOk);
  WireReader sr(reply->payload);
  const std::uint32_t stmt_id = sr.u32();

  WireWriter ex;
  ex.u32(stmt_id);
  sock.sendFrame(server::makeFrame(Op::Execute, std::move(ex)));
  reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value() && reply->op == Op::CursorOk);
  WireReader cr(reply->payload);
  const std::uint32_t cursor_id = cr.u32();

  WireWriter close;
  close.u32(cursor_id);
  sock.sendFrame(server::makeFrame(Op::CloseCursor, std::move(close)));
  reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value() && reply->op == Op::Ok);

  WireWriter fetch;
  fetch.u32(cursor_id);
  fetch.u32(10);
  sock.sendFrame(server::makeFrame(Op::Fetch, std::move(fetch)));
  reply = sock.recvFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->op, Op::Error);
  EXPECT_EQ(server::readError(*reply).first, ErrCode::BadState);
}

TEST_F(ServerTest, AbandonedCursorReleasesLockOnDisconnect) {
  auto writer = connect();
  writer->exec("CREATE TABLE t (v INTEGER)");
  for (int i = 0; i < 100; ++i) {
    writer->execPrepared("INSERT INTO t VALUES (?)", {minidb::Value(i)});
  }
  {
    auto reader = connect();
    auto cur = reader->query("SELECT v FROM t");
    minidb::Row row;
    ASSERT_TRUE(cur.next(row));
    // Abrupt disconnect with the cursor (and its shared gate hold) still
    // open: kill the connection first, so the cursor never sends CLOSE.
    reader.reset();
  }
  // The disconnect teardown released the hold; a write must get through
  // within the lock timeout.
  writer->exec("INSERT INTO t VALUES (-1)");
  EXPECT_EQ(writer->queryInt("SELECT COUNT(*) FROM t"), 101);
}

TEST_F(ServerTest, RemoteShutdownDrains) {
  auto conn = connect();
  conn->exec("CREATE TABLE t (v INTEGER)");
  dynamic_cast<RemoteConnection&>(*conn).shutdownServer();
  server_->waitUntilStopped();
  EXPECT_FALSE(server_->running());
  // The store is still intact in-process.
  minidb::sql::Engine engine(*db_);
  EXPECT_EQ(engine.exec("SELECT COUNT(*) FROM t").rows[0][0].asInt(), 0);
}

TEST(ServerLimits, ConnectionCapSendsBusy) {
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;
  config.max_connections = 2;
  server::PtServer srv(*db, config);
  srv.start();
  const std::string target = "127.0.0.1:" + std::to_string(srv.boundPort());

  auto a = Connection::open("pt://" + target);
  auto b = Connection::open("pt://" + target);
  // Third connection: the server answers with a BUSY error frame and closes.
  EXPECT_THROW(Connection::open("pt://" + target), dbal::ServerBusyError);
  srv.stop();
}

TEST(ServerLimits, UnixSocketEndToEnd) {
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.tcp = false;
  config.unix_path = ::testing::TempDir() + "ptserverd_test.sock";
  server::PtServer srv(*db, config);
  srv.start();

  auto conn = Connection::open("pt://unix:" + config.unix_path);
  conn->exec("CREATE TABLE t (v INTEGER)");
  conn->exec("INSERT INTO t VALUES (9)");
  EXPECT_EQ(conn->queryInt("SELECT v FROM t"), 9);
  srv.stop();
}

}  // namespace
}  // namespace perftrack
