// ptserverd concurrency stress: many reader clients streaming prepared
// SELECTs while a writer inserts and runs DDL, with random mid-stream
// disconnects. Run under ThreadSanitizer by scripts/ci.sh tsan mode.
//
// Invariants checked:
//   * every streamed row is internally consistent (v == id * 3) — a torn
//     read under a concurrent writer would break this;
//   * observed row counts only grow (writes are atomic and ordered);
//   * the final table contents are byte-identical to a single-process
//     differential run of the same writer workload;
//   * the server survives every disconnect and abandoned cursor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dbal/connection.h"
#include "dbal/remote.h"
#include "minidb/database.h"
#include "minidb/sql/executor.h"
#include "server/server.h"
#include "util/error.h"

namespace perftrack {
namespace {

using dbal::Connection;
using dbal::ServerBusyError;

constexpr int kReaders = 8;
constexpr int kWriterRows = 300;
constexpr auto kRetryPause = std::chrono::milliseconds(2);

/// Runs `fn`, retrying while the server reports BUSY (lock contention is
/// expected under stress; losing a timeout race is not a failure).
template <typename Fn>
void withBusyRetry(Fn&& fn) {
  for (;;) {
    try {
      fn();
      return;
    } catch (const ServerBusyError&) {
      std::this_thread::sleep_for(kRetryPause);
    }
  }
}

TEST(ServerStress, ConcurrentReadersWriterAndDisconnects) {
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;
  config.workers = 8;
  config.max_connections = 64;
  config.limits.lock_timeout = std::chrono::milliseconds(200);
  server::PtServer srv(*db, config);
  srv.start();
  const std::string url = "pt://127.0.0.1:" + std::to_string(srv.boundPort());

  {
    auto setup = Connection::open(url);
    setup->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  }

  std::atomic<bool> writer_done{false};
  std::atomic<int> rows_written{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    try {
      auto conn = Connection::open(url);
      for (int i = 1; i <= kWriterRows; ++i) {
        withBusyRetry([&] {
          conn->execPrepared("INSERT INTO t (v) VALUES (?)",
                             {minidb::Value(std::int64_t{3} * i)});
        });
        rows_written.fetch_add(1, std::memory_order_release);
        if (i % 100 == 0) {
          // DDL forces the exclusive path against live cursor holds.
          withBusyRetry([&] {
            conn->exec("CREATE TABLE IF NOT EXISTS side_" + std::to_string(i) +
                       " (x INTEGER)");
          });
        }
      }
    } catch (const std::exception&) {
      failures.fetch_add(1);
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(1234u + static_cast<unsigned>(r));
      int last_count = 0;
      try {
        auto conn = Connection::open(url);
        while (!writer_done.load(std::memory_order_acquire)) {
          int seen = 0;
          bool completed = true;
          withBusyRetry([&] {
            seen = 0;
            completed = true;
            auto cur = conn->query("SELECT id, v FROM t");
            minidb::Row row;
            while (cur.next(row)) {
              if (row[1].asInt() != row[0].asInt() * 3) {
                failures.fetch_add(1);
                return;
              }
              ++seen;
              // Random disconnect: abandon the cursor mid-stream and drop
              // the whole connection; the server must reap the session.
              if (seen > 5 && rng() % 97 == 0) {
                conn.reset();
                conn = Connection::open(url);
                completed = false;
                return;
              }
            }
          });
          if (completed) {
            // A full scan can never see fewer rows than an earlier full
            // scan: autocommit inserts only add.
            if (seen < last_count) failures.fetch_add(1);
            last_count = seen;
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rows_written.load(), kWriterRows);

  // Differential check: replay the writer workload single-process and
  // compare the full table contents row by row.
  auto reference = minidb::Database::openMemory();
  minidb::sql::Engine ref_engine(*reference);
  ref_engine.exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  {
    auto ins = ref_engine.prepare("INSERT INTO t (v) VALUES (?)");
    for (int i = 1; i <= kWriterRows; ++i) {
      ins.execute({minidb::Value(std::int64_t{3} * i)});
    }
  }
  const auto expected = ref_engine.exec("SELECT id, v FROM t ORDER BY id");

  auto conn = Connection::open(url);
  const auto actual = conn->exec("SELECT id, v FROM t ORDER BY id");
  ASSERT_EQ(actual.rows.size(), expected.rows.size());
  for (std::size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_EQ(actual.rows[i][0].asInt(), expected.rows[i][0].asInt());
    EXPECT_EQ(actual.rows[i][1].asInt(), expected.rows[i][1].asInt());
  }

  srv.stop();
}

TEST(ServerStress, ParallelSelectsMakeProgressTogether) {
  // All-reader load: every session should stream under a shared hold with
  // no serialization failures and no BUSY (no writer ever queues).
  auto db = minidb::Database::openMemory();
  server::ServerConfig config;
  config.port = 0;
  config.workers = 8;
  server::PtServer srv(*db, config);
  srv.start();
  const std::string url = "pt://127.0.0.1:" + std::to_string(srv.boundPort());

  {
    auto setup = Connection::open(url);
    setup->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    for (int i = 1; i <= 500; ++i) {
      setup->execPrepared("INSERT INTO t (v) VALUES (?)", {minidb::Value(i)});
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      try {
        auto conn = Connection::open(url);
        for (int pass = 0; pass < 5; ++pass) {
          auto cur = conn->query("SELECT id, v FROM t");
          minidb::Row row;
          int n = 0;
          while (cur.next(row)) ++n;
          if (n != 500) failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(srv.counters().busy_rejections.load(), 0u);

  srv.stop();
}

}  // namespace
}  // namespace perftrack
