// Server-level WAL isolation: snapshot reads over the wire protocol while
// remote writers commit through the group-commit path. Runs under
// ThreadSanitizer via the `wal`/`server` labels (scripts/ci.sh tsan).
//
// The embedded half of this matrix lives in tests/minidb/snapshot_test.cpp;
// here the full client → frame → session → DbGate → pager path is live:
//   * a streaming cursor pins one committed version and drains it unchanged
//     while a writer commits generation after generation around it;
//   * an open reader cursor does not make a writer BUSY (WAL mode swaps the
//     exclusive gate for writer-writer exclusion), and the writer's commits
//     do not stall the readers;
//   * a cursor stays consistent across WAL auto-checkpoints (tiny threshold
//     forces folds between its FETCH batches);
//   * every scan sees MIN(g) == MAX(g): one whole committed generation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dbal/connection.h"
#include "dbal/remote.h"
#include "minidb/database.h"
#include "server/server.h"
#include "util/tempdir.h"

namespace perftrack {
namespace {

using dbal::Connection;
using dbal::ServerBusyError;

// More rows than one FETCH batch (the server default is 256), so a scan
// takes several round trips and writers get windows to commit mid-cursor.
constexpr int kRows = 900;
constexpr int kGenerations = 25;
constexpr int kReaders = 3;

class WalIsolationTest : public ::testing::Test {
 protected:
  WalIsolationTest() {
    minidb::OpenOptions options;
    options.durability = minidb::Durability::Wal;
    options.wal_autocheckpoint = 8;  // fold often: checkpoints mid-workload
    db_ = minidb::Database::open(tmp_.file("wal_iso.db").string(), options);

    server::ServerConfig config;
    config.port = 0;
    config.workers = 2 + kReaders;
    config.limits.lock_timeout = std::chrono::milliseconds(200);
    srv_ = std::make_unique<server::PtServer>(*db_, config);
    srv_->start();
    url_ = "pt://127.0.0.1:" + std::to_string(srv_->boundPort());

    auto setup = Connection::open(url_);
    setup->exec("CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER)");
    std::string values;
    for (int i = 0; i < 100; ++i) values += i ? ", (0)" : "(0)";
    for (int i = 0; i < kRows / 100; ++i) {
      setup->exec("INSERT INTO t (g) VALUES " + values);
    }
  }

  /// Retries `fn` through BUSY (writer-writer contention is expected; losing
  /// a lock-timeout race is not a failure).
  template <typename Fn>
  static void withBusyRetry(Fn&& fn) {
    for (;;) {
      try {
        fn();
        return;
      } catch (const ServerBusyError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }

  /// Streams SELECT g FROM t through a server-side cursor and returns
  /// {generation, rows seen}, asserting the scan saw exactly one generation.
  static std::pair<std::int64_t, std::int64_t> scanOneGeneration(
      Connection& conn) {
    dbal::Cursor cur = conn.query("SELECT g FROM t");
    std::int64_t min_g = INT64_MAX, max_g = INT64_MIN, rows = 0;
    minidb::Row row;
    while (cur.next(row)) {
      const std::int64_t g = row[0].asInt();
      min_g = std::min(min_g, g);
      max_g = std::max(max_g, g);
      ++rows;
    }
    EXPECT_EQ(min_g, max_g) << "scan straddled a commit";
    return {min_g, rows};
  }

  util::TempDir tmp_;
  std::unique_ptr<minidb::Database> db_;
  std::unique_ptr<server::PtServer> srv_;
  std::string url_;
};

TEST_F(WalIsolationTest, OpenReaderCursorDoesNotBlockAWriter) {
  auto reader = Connection::open(url_);
  auto writer = Connection::open(url_);

  // Open a cursor and pull one batch; the session now holds a shared gate
  // hold AND a pinned snapshot until the cursor drains.
  dbal::Cursor cur = reader->query("SELECT g FROM t");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));
  EXPECT_EQ(row[0].asInt(), 0);

  // In journal mode this UPDATE would be BUSY until the cursor closed (the
  // exclusive gate waits out readers). In WAL mode it must land first try.
  ASSERT_NO_THROW(writer->exec("UPDATE t SET g = 1"));

  // ... and the cursor keeps draining generation 0, to the last row.
  std::int64_t rows = 1;
  while (cur.next(row)) {
    EXPECT_EQ(row[0].asInt(), 0) << "open cursor leaked a later commit";
    ++rows;
  }
  EXPECT_EQ(rows, kRows);

  EXPECT_EQ(reader->queryInt("SELECT MIN(g) FROM t"), 1);
}

TEST_F(WalIsolationTest, CursorStaysConsistentAcrossAutoCheckpoints) {
  auto reader = Connection::open(url_);
  auto writer = Connection::open(url_);

  dbal::Cursor cur = reader->query("SELECT g FROM t");
  minidb::Row row;
  ASSERT_TRUE(cur.next(row));

  // Each UPDATE commits hundreds of WAL frames against an autocheckpoint
  // threshold of 8, so checkpoint attempts happen between the cursor's
  // FETCH batches. The pinned snapshot defers the folds it still needs.
  for (int g = 1; g <= 5; ++g) {
    withBusyRetry([&] { writer->exec("UPDATE t SET g = " + std::to_string(g)); });
  }

  std::int64_t rows = 1;
  do {
    EXPECT_EQ(row[0].asInt(), 0) << "checkpoint disturbed a pinned cursor";
  } while (cur.next(row) && ++rows);
  EXPECT_EQ(rows, kRows);

  // With the pin released, later write traffic folds the log back down.
  withBusyRetry([&] { writer->exec("UPDATE t SET g = 6") ; });
  EXPECT_EQ(reader->queryInt("SELECT MAX(g) FROM t"), 6);
}

TEST_F(WalIsolationTest, ConcurrentScansEachSeeOneCommittedGeneration) {
  std::atomic<bool> done{false};
  std::thread writer([&] {
    auto conn = Connection::open(url_);
    for (int g = 1; g <= kGenerations; ++g) {
      withBusyRetry([&] { conn->exec("UPDATE t SET g = " + std::to_string(g)); });
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<int> scans{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto conn = Connection::open(url_);
      std::int64_t last_gen = 0;
      auto scanOnce = [&] {
        const auto [gen, rows] = scanOneGeneration(*conn);
        EXPECT_EQ(rows, kRows);
        EXPECT_GE(gen, last_gen) << "a later scan saw an earlier commit";
        last_gen = gen;
        scans.fetch_add(1, std::memory_order_relaxed);
      };
      while (!done.load(std::memory_order_acquire)) scanOnce();
      scanOnce();  // guaranteed to start after the final commit published
      EXPECT_EQ(last_gen, kGenerations);
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GE(scans.load(), kReaders);
}

}  // namespace
}  // namespace perftrack
