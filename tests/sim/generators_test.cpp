#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/irs_gen.h"
#include "sim/paradyn_gen.h"
#include "sim/smg_gen.h"
#include "util/tempdir.h"

namespace perftrack::sim {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(IrsGen, FunctionCatalogMatchesPaperScale) {
  // "timings for approximately 80 different functions".
  EXPECT_GE(irsFunctionNames().size(), 75u);
  EXPECT_LE(irsFunctionNames().size(), 85u);
  EXPECT_EQ(irsBaseMetrics().size(), 5u);
}

TEST(IrsGen, ProducesSixFiles) {
  util::TempDir dir;
  IrsRunSpec spec{frostConfig(), 8, "MPI", 1, ""};
  const GeneratedRun run = generateIrsRun(spec, dir.path());
  EXPECT_EQ(run.files.size(), 6u);  // Table 1: IRS has 6 files per execution
  for (const auto& file : run.files) {
    EXPECT_TRUE(std::filesystem::exists(file)) << file;
  }
  EXPECT_GT(run.rawBytes(), 10000u);
  EXPECT_EQ(run.exec_name, "irs-frost-np8-s1");
}

TEST(IrsGen, DeterministicForSameSeed) {
  util::TempDir dir_a;
  util::TempDir dir_b;
  IrsRunSpec spec{frostConfig(), 16, "MPI", 99, ""};
  generateIrsRun(spec, dir_a.path());
  generateIrsRun(spec, dir_b.path());
  EXPECT_EQ(slurp(dir_a.file("irs_timing.txt")), slurp(dir_b.file("irs_timing.txt")));
  EXPECT_EQ(slurp(dir_a.file("irs_summary.txt")), slurp(dir_b.file("irs_summary.txt")));
}

TEST(IrsGen, DifferentSeedsDiffer) {
  util::TempDir dir_a;
  util::TempDir dir_b;
  generateIrsRun({frostConfig(), 16, "MPI", 1, ""}, dir_a.path());
  generateIrsRun({frostConfig(), 16, "MPI", 2, ""}, dir_b.path());
  EXPECT_NE(slurp(dir_a.file("irs_timing.txt")), slurp(dir_b.file("irs_timing.txt")));
}

TEST(IrsGen, ExecNameOverride) {
  IrsRunSpec spec{frostConfig(), 8, "MPI", 1, "custom-name"};
  EXPECT_EQ(spec.effectiveExecName(), "custom-name");
}

TEST(IrsGen, TimingRowsHaveMaxGeMin) {
  util::TempDir dir;
  generateIrsRun({mcrConfig(), 32, "MPI", 5, ""}, dir.path());
  std::ifstream in(dir.file("irs_timing.txt"));
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line.rfind("IRS", 0) == 0) continue;
    // function "metric" agg avg max min
    std::istringstream fields(line);
    std::string func;
    fields >> func;
    std::string rest;
    std::getline(fields, rest);
    const auto close = rest.rfind('"');
    std::istringstream nums(rest.substr(close + 1));
    double agg, avg, max, min;
    nums >> agg >> avg >> max >> min;
    EXPECT_GE(max, min);
    EXPECT_GE(max, avg);
    EXPECT_LE(min, avg);
    EXPECT_NEAR(agg, avg * 32, agg * 0.01 + 1e-9);
    ++rows;
  }
  // ~80 functions x 5 metrics minus the ~5% "doesn't apply" rows.
  EXPECT_GT(rows, 330);
  EXPECT_LT(rows, 400);
}

TEST(SmgGen, BglRunHasOnlyStandardOutput) {
  util::TempDir dir;
  SmgRunSpec spec;
  spec.machine = bglConfig();
  spec.nprocs = 128;
  const GeneratedRun run = generateSmgRun(spec, dir.path());
  EXPECT_EQ(run.files.size(), 1u);  // Table 1: SMG-BG/L has 1 file
  const std::string text = slurp(run.files[0]);
  EXPECT_NE(text.find("SMG Setup"), std::string::npos);
  EXPECT_NE(text.find("SMG Solve"), std::string::npos);
  EXPECT_EQ(text.find("PMAPI"), std::string::npos);
  EXPECT_EQ(smgOutputMetrics().size(), 8u);  // "only eight data values"
}

TEST(SmgGen, UvRunAddsPmapiAndMpip) {
  util::TempDir dir;
  SmgRunSpec spec;
  spec.machine = uvConfig();
  spec.nprocs = 16;
  spec.with_mpip = true;
  spec.with_pmapi = true;
  const GeneratedRun run = generateSmgRun(spec, dir.path());
  EXPECT_EQ(run.files.size(), 2u);  // Table 1: SMG-UV has 2 files
  const std::string stdout_text = slurp(dir.file("smg_stdout.txt"));
  EXPECT_NE(stdout_text.find("PMAPI task 0 PM_CYC"), std::string::npos);
  EXPECT_NE(stdout_text.find("PMAPI task 15"), std::string::npos);
  const std::string mpip_text = slurp(dir.file("smg_mpip.txt"));
  EXPECT_NE(mpip_text.find("@ mpiP"), std::string::npos);
  EXPECT_NE(mpip_text.find("Parent_Funct"), std::string::npos);
  EXPECT_NE(mpip_text.find("Callsite Time statistics"), std::string::npos);
}

TEST(SmgGen, SolveSlowerAtFewerProcs) {
  // Sanity on the analytic model through the generator: the solve phase
  // takes longer at 8 procs than at 64 on the same machine/seed.
  auto solveTime = [](int nprocs) {
    util::TempDir dir;
    SmgRunSpec spec;
    spec.machine = uvConfig();
    spec.nprocs = nprocs;
    generateSmgRun(spec, dir.path());
    std::ifstream in(dir.file("smg_stdout.txt"));
    std::string line;
    bool in_solve = false;
    while (std::getline(in, line)) {
      if (line.find("SMG Solve") != std::string::npos) in_solve = true;
      if (in_solve && line.find("wall clock time") != std::string::npos) {
        const auto eq = line.find('=');
        return std::stod(line.substr(eq + 1));
      }
    }
    return -1.0;
  };
  EXPECT_GT(solveTime(8), solveTime(64));
}

TEST(ParadynGen, ExportHasAllArtifacts) {
  util::TempDir dir;
  ParadynRunSpec spec;
  spec.machine = mcrConfig();
  spec.nprocs = 4;
  spec.metric_focus_pairs = 5;
  spec.histogram_bins = 50;
  spec.code_resources = 100;
  const GeneratedRun run = generateParadynRun(spec, dir.path());
  EXPECT_TRUE(std::filesystem::exists(dir.file("resources.txt")));
  EXPECT_TRUE(std::filesystem::exists(dir.file("index.txt")));
  EXPECT_TRUE(std::filesystem::exists(dir.file("shg.txt")));
  EXPECT_TRUE(std::filesystem::exists(dir.file("histogram_000.hist")));
  EXPECT_TRUE(std::filesystem::exists(dir.file("histogram_004.hist")));
  EXPECT_EQ(run.files.size(), 5u + 3u);  // 5 histograms + resources/index/shg
}

TEST(ParadynGen, HistogramsContainNanPrefix) {
  util::TempDir dir;
  ParadynRunSpec spec;
  spec.machine = mcrConfig();
  spec.nprocs = 4;
  spec.metric_focus_pairs = 10;
  spec.histogram_bins = 100;
  spec.code_resources = 50;
  generateParadynRun(spec, dir.path());
  // At least one histogram must carry 'nan' bins (late instrumentation).
  bool saw_nan = false;
  for (int h = 0; h < 10; ++h) {
    char name[64];
    std::snprintf(name, sizeof(name), "histogram_%03d.hist", h);
    if (slurp(dir.file(name)).find("nan") != std::string::npos) saw_nan = true;
  }
  EXPECT_TRUE(saw_nan);
}

TEST(ParadynGen, ResourceListCoversAllHierarchies) {
  util::TempDir dir;
  ParadynRunSpec spec;
  spec.machine = mcrConfig();
  spec.nprocs = 4;
  spec.metric_focus_pairs = 2;
  spec.histogram_bins = 10;
  spec.code_resources = 20;
  generateParadynRun(spec, dir.path());
  const std::string text = slurp(dir.file("resources.txt"));
  EXPECT_NE(text.find("/Code/"), std::string::npos);
  EXPECT_NE(text.find("/Machine/MCR"), std::string::npos);
  EXPECT_NE(text.find("/SyncObject/Message/"), std::string::npos);
  EXPECT_NE(text.find("DEFAULT_MODULE"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::sim
