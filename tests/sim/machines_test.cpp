#include "sim/machines.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ptdf/ptdf.h"

namespace perftrack::sim {
namespace {

TEST(Machines, CaseStudyConfigsMatchPaperDescriptions) {
  const MachineConfig frost = frostConfig();
  EXPECT_EQ(frost.os_name, "AIX");
  EXPECT_EQ(frost.processor.model, "Power3");
  EXPECT_EQ(frost.processor.clock_mhz, 375);
  EXPECT_EQ(frost.processors_per_node, 16);

  const MachineConfig mcr = mcrConfig();
  EXPECT_EQ(mcr.os_name, "Linux");
  EXPECT_EQ(mcr.nodes, 1152);

  const MachineConfig bgl = bglConfig();
  EXPECT_EQ(bgl.nodes, 16384);
  EXPECT_EQ(bgl.processor.model, "PowerPC440");
  EXPECT_LT(bgl.noise_amplitude, 0.01);  // near-noiseless kernel

  const MachineConfig uv = uvConfig();
  EXPECT_EQ(uv.nodes, 128);
  EXPECT_EQ(uv.processors_per_node, 8);
  EXPECT_EQ(uv.processor.model, "Power4+");
  EXPECT_EQ(uv.processor.clock_mhz, 1500);
}

TEST(Machines, ResourceNamesFollowGridHierarchy) {
  const MachineConfig frost = frostConfig();
  EXPECT_EQ(frost.machineResource(), "/SingleMachineFrost/Frost");
  EXPECT_EQ(frost.partitionResource(), "/SingleMachineFrost/Frost/batch");
  EXPECT_EQ(frost.nodeResource(121), "/SingleMachineFrost/Frost/batch/Frost121");
  EXPECT_EQ(frost.processorResource(121, 0),
            "/SingleMachineFrost/Frost/batch/Frost121/p0");
}

TEST(Machines, TotalProcessors) {
  EXPECT_EQ(frostConfig().totalProcessors(), 68 * 16);
  EXPECT_EQ(uvConfig().totalProcessors(), 1024);
}

TEST(Machines, EmitMachinePtdfRespectsNodeCap) {
  std::ostringstream out;
  ptdf::Writer writer(out);
  emitMachinePtdf(writer, frostConfig(), /*max_nodes=*/2);
  const std::string text = out.str();
  EXPECT_NE(text.find("/SingleMachineFrost/Frost/batch/Frost0/p0"), std::string::npos);
  EXPECT_NE(text.find("/SingleMachineFrost/Frost/batch/Frost1/p15"), std::string::npos);
  EXPECT_EQ(text.find("Frost2/"), std::string::npos);  // capped at 2 nodes
  EXPECT_NE(text.find("\"clock MHz\" 375"), std::string::npos);
  EXPECT_NE(text.find("\"operating system\" AIX"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::sim
