#include "sim/perfmodel.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace perftrack::sim {
namespace {

FunctionWork computeBoundWork() {
  FunctionWork work;
  work.work_mflop = 10000.0;
  work.serial_fraction = 0.01;
  work.comm_bytes_per_proc = 1e6;
  work.messages_per_proc = 100;
  return work;
}

TEST(PerfModel, IdealTimeDecreasesWithProcessCount) {
  PerfModel model(mcrConfig());
  const FunctionWork work = computeBoundWork();
  double prev = model.idealSeconds(work, 1);
  for (int p : {2, 4, 8, 16, 32}) {
    const double t = model.idealSeconds(work, p);
    EXPECT_LT(t, prev) << "p=" << p;
    prev = t;
  }
}

TEST(PerfModel, SerialFractionBoundsSpeedup) {
  PerfModel model(mcrConfig());
  FunctionWork work = computeBoundWork();
  work.serial_fraction = 0.1;
  work.comm_bytes_per_proc = 0.0;
  work.messages_per_proc = 0;
  const double t1 = model.idealSeconds(work, 1);
  const double t_many = model.idealSeconds(work, 4096);
  // Amdahl: speedup can't exceed 1/serial_fraction.
  EXPECT_GT(t_many, t1 * 0.09);
}

TEST(PerfModel, CommunicationGrowsWithTreeDepth) {
  PerfModel model(mcrConfig());
  FunctionWork work;
  work.work_mflop = 0.0;
  work.messages_per_proc = 1000;
  // Pure-latency workload: more processes -> deeper trees -> more time.
  EXPECT_LT(model.idealSeconds(work, 2), model.idealSeconds(work, 256));
}

TEST(PerfModel, InvalidProcessCountThrows) {
  PerfModel model(mcrConfig());
  EXPECT_THROW(model.idealSeconds(computeBoundWork(), 0), util::ModelError);
  EXPECT_THROW(model.idealSeconds(computeBoundWork(), -4), util::ModelError);
}

TEST(PerfModel, RunIsDeterministicForSameSeed) {
  PerfModel model(frostConfig());
  util::Rng a(42);
  util::Rng b(42);
  const auto ta = model.run(computeBoundWork(), 16, a);
  const auto tb = model.run(computeBoundWork(), 16, b);
  EXPECT_EQ(ta.per_process_seconds, tb.per_process_seconds);
}

TEST(PerfModel, TimingStatisticsAreConsistent) {
  PerfModel model(frostConfig());
  util::Rng rng(7);
  const auto timing = model.run(computeBoundWork(), 32, rng);
  ASSERT_EQ(timing.per_process_seconds.size(), 32u);
  EXPECT_LE(timing.minimum(), timing.average());
  EXPECT_LE(timing.average(), timing.maximum());
  EXPECT_NEAR(timing.aggregate(), timing.average() * 32.0, 1e-9);
}

TEST(PerfModel, NoisyMachineShowsMoreImbalanceThanQuietOne) {
  // The Figure-5 driver: max/min spread at p=128 on Frost vs BG/L, averaged
  // over several seeds to suppress sampling luck.
  const FunctionWork work = computeBoundWork();
  double frost_imbalance = 0.0;
  double bgl_imbalance = 0.0;
  for (int seed = 1; seed <= 10; ++seed) {
    util::Rng rng_f(static_cast<std::uint64_t>(seed));
    util::Rng rng_b(static_cast<std::uint64_t>(seed));
    const auto frost = PerfModel(frostConfig()).run(work, 128, rng_f);
    const auto bgl = PerfModel(bglConfig()).run(work, 128, rng_b);
    frost_imbalance += frost.maximum() / frost.minimum();
    bgl_imbalance += bgl.maximum() / bgl.minimum();
  }
  EXPECT_GT(frost_imbalance, bgl_imbalance * 1.02);
}

TEST(PerfModel, ImbalanceGrowsWithProcessCountOnNoisyMachine) {
  const FunctionWork work = computeBoundWork();
  auto avg_imbalance = [&](int nprocs) {
    double total = 0.0;
    for (int seed = 1; seed <= 20; ++seed) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 31);
      const auto t = PerfModel(frostConfig()).run(work, nprocs, rng);
      total += t.maximum() / t.minimum();
    }
    return total / 20.0;
  };
  EXPECT_LT(avg_imbalance(4), avg_imbalance(256));
}

TEST(PerfModel, EmptyTimingStatistics) {
  FunctionTiming timing;
  EXPECT_DOUBLE_EQ(timing.aggregate(), 0.0);
  EXPECT_DOUBLE_EQ(timing.average(), 0.0);
  EXPECT_DOUBLE_EQ(timing.maximum(), 0.0);
  EXPECT_DOUBLE_EQ(timing.minimum(), 0.0);
}

}  // namespace
}  // namespace perftrack::sim
