#include "tools/irs_parser.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/filter.h"
#include "sim/irs_gen.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::tools {
namespace {

class IrsParserTest : public ::testing::Test {
 protected:
  IrsParserTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    sim::IrsRunSpec spec{sim::frostConfig(), 8, "MPI", 4, ""};
    run_ = sim::generateIrsRun(spec, dir_.path());
  }

  /// Converts the generated run and loads it; returns conversion count.
  std::size_t convertAndLoad() {
    std::ostringstream out;
    ptdf::Writer writer(out);
    const std::size_t converted = convertIrsRun(dir_.path(), sim::frostConfig(), writer);
    std::istringstream in(out.str());
    stats_ = ptdf::load(store_, in);
    return converted;
  }

  util::TempDir dir_;
  sim::GeneratedRun run_;
  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
  ptdf::LoadStats stats_;
};

TEST_F(IrsParserTest, StdoutHeaderParses) {
  const IrsRunHeader header = parseIrsStdout(dir_.file("irs_stdout.txt"));
  EXPECT_EQ(header.exec_name, "irs-frost-np8-s4");
  EXPECT_EQ(header.machine, "Frost");
  EXPECT_EQ(header.version, "1.4");
  EXPECT_EQ(header.nprocs, 8);
  EXPECT_EQ(header.concurrency, "MPI");
}

TEST_F(IrsParserTest, MissingHeaderFieldsThrow) {
  const auto bad = dir_.file("bad_stdout.txt");
  {
    std::ofstream out(bad);
    out << "IRS banner without required fields\n";
  }
  EXPECT_THROW(parseIrsStdout(bad), util::ParseError);
}

TEST_F(IrsParserTest, ConversionCountMatchesLoad) {
  const std::size_t converted = convertAndLoad();
  EXPECT_EQ(converted, stats_.perf_results);
  // ~80 functions x 5 metrics x 4 stats, minus ~5% n/a, plus 5 summaries.
  EXPECT_GT(converted, 1300u);
  EXPECT_LT(converted, 1650u);
}

TEST_F(IrsParserTest, MetricsMatchTableOne) {
  convertAndLoad();
  // 5 base metrics x 4 statistics + 5 summary metrics = 25 (Table 1).
  EXPECT_EQ(store_.metrics().size(), 25u);
}

TEST_F(IrsParserTest, FunctionResourcesLiveInBuildHierarchy) {
  convertAndLoad();
  const auto cgsolve = store_.findResource("/IRS-1.4/irscg.c/cgsolve");
  ASSERT_TRUE(cgsolve.has_value());
  EXPECT_EQ(store_.resourceInfo(*cgsolve).type_path, "build/module/function");
}

TEST_F(IrsParserTest, ResultsCarryMachineAndExecutionContext) {
  convertAndLoad();
  const auto ids = store_.resultsForExecution("irs-frost-np8-s4");
  ASSERT_FALSE(ids.empty());
  const auto rec = store_.getResult(ids.front());
  ASSERT_EQ(rec.contexts.size(), 1u);
  bool saw_partition = false;
  for (core::ResourceId id : rec.contexts[0]) {
    if (store_.resourceInfo(id).full_name == "/SingleMachineFrost/Frost/batch") {
      saw_partition = true;
    }
  }
  EXPECT_TRUE(saw_partition);
}

TEST_F(IrsParserTest, QueryByFunctionFindsAllStatistics) {
  convertAndLoad();
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("/IRS-1.4/irscg.c/cgsolve", core::Expansion::None));
  const auto results = core::queryResults(store_, filter);
  // Up to 5 metrics x 4 statistics for that one function (some rows n/a).
  EXPECT_GE(results.size(), 12u);
  EXPECT_LE(results.size(), 20u);
}

TEST_F(IrsParserTest, SummaryResultsAtWholeExecutionLevel) {
  convertAndLoad();
  core::PrFilter filter;
  filter.families.push_back(core::ResourceFilter::byName("/irs-frost-np8-s4",
                                                         core::Expansion::None));
  const auto all = core::queryResults(store_, filter);
  // Every result (function-level and summary) has the execution root.
  EXPECT_EQ(all.size(), stats_.perf_results);
  // Summary metric present.
  bool saw_fom = false;
  for (std::int64_t id : all) {
    if (store_.getResult(id).metric == "figure of merit") saw_fom = true;
  }
  EXPECT_TRUE(saw_fom);
}

TEST_F(IrsParserTest, BuildAndRunCapturesIncluded) {
  convertAndLoad();
  EXPECT_TRUE(store_.findResource("/build-irs-frost-np8-s4").has_value());
  EXPECT_TRUE(store_.findResource("/env-irs-frost-np8-s4").has_value());
  EXPECT_TRUE(store_.findResource("/xlc").has_value());
  EXPECT_TRUE(store_.findResource("/irs-frost-np8-s4/p7").has_value());
}

}  // namespace
}  // namespace perftrack::tools
