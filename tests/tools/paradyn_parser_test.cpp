#include "tools/paradyn_parser.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/filter.h"
#include "sim/paradyn_gen.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::tools {
namespace {

// --- the Figure-11 mapping, case by case ------------------------------------

TEST(ParadynMapping, StaticCodeGoesToBuildHierarchy) {
  const auto m = mapParadynResource("/Code/irscg.c/cgsolve", "run1", "IRS");
  EXPECT_EQ(m.full_name, "/IRS-code/irscg.c/cgsolve");
  EXPECT_EQ(m.type_path, "build/module/function");
  EXPECT_TRUE(m.node_attribute.empty());
}

TEST(ParadynMapping, DynamicModuleGoesToEnvironmentHierarchy) {
  const auto m = mapParadynResource("/Code/libmpi.so/MPI_Isend", "run1", "IRS");
  EXPECT_EQ(m.full_name, "/IRS-env/libmpi.so/MPI_Isend");
  EXPECT_EQ(m.type_path, "environment/module/function");
}

TEST(ParadynMapping, DefaultModuleDefaultsToBuild) {
  // "we default to the build (static) hierarchy" for DEFAULT_MODULE.
  const auto m = mapParadynResource("/Code/DEFAULT_MODULE/builtin_fn", "run1", "IRS");
  EXPECT_EQ(m.type_path, "build/module/function");
  EXPECT_EQ(m.full_name, "/IRS-code/DEFAULT_MODULE/builtin_fn");
}

TEST(ParadynMapping, MachineProcessGoesToExecutionWithNodeAttribute) {
  const auto m = mapParadynResource("/Machine/mcr123/irs{4242}", "run1", "IRS");
  EXPECT_EQ(m.full_name, "/run1/irs_4242");
  EXPECT_EQ(m.type_path, "execution/process");
  EXPECT_EQ(m.node_attribute, "mcr123");
}

TEST(ParadynMapping, SyncObjectGetsNewTopLevelHierarchy) {
  const auto m = mapParadynResource("/SyncObject/Message/107", "run1", "IRS");
  EXPECT_EQ(m.full_name, "/syncObjects-run1/Message/107");
  EXPECT_EQ(m.type_path, "syncObject/class/object");
  const auto w = mapParadynResource("/SyncObject/Window", "run1", "IRS");
  EXPECT_EQ(w.type_path, "syncObject/class");
}

TEST(ParadynMapping, MalformedNamesThrow) {
  EXPECT_THROW(mapParadynResource("no-slash", "r", "A"), util::ParseError);
  EXPECT_THROW(mapParadynResource("/Code", "r", "A"), util::ParseError);
  EXPECT_THROW(mapParadynResource("/Mystery/x/y", "r", "A"), util::ParseError);
}

// --- end-to-end conversion ---------------------------------------------------

class ParadynConvertTest : public ::testing::Test {
 protected:
  ParadynConvertTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
    sim::ParadynRunSpec spec;
    spec.machine = sim::mcrConfig();
    spec.nprocs = 4;
    spec.seed = 9;
    spec.metric_focus_pairs = 8;
    spec.histogram_bins = 100;
    spec.code_resources = 200;
    run_ = sim::generateParadynRun(spec, dir_.path());
  }

  std::size_t convertAndLoad() {
    std::ostringstream out;
    ptdf::Writer writer(out);
    const std::size_t converted =
        convertParadynRun(dir_.path(), run_.exec_name, "IRS", writer);
    std::istringstream in(out.str());
    stats_ = ptdf::load(store_, in);
    return converted;
  }

  util::TempDir dir_;
  sim::GeneratedRun run_;
  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
  ptdf::LoadStats stats_;
};

TEST_F(ParadynConvertTest, NanBinsProduceNoResults) {
  const std::size_t converted = convertAndLoad();
  EXPECT_EQ(converted, stats_.perf_results);
  // 8 histograms x 100 bins = 800 potential; nan bins must remove some.
  EXPECT_LT(converted, 800u);
  EXPECT_GT(converted, 400u);
}

TEST_F(ParadynConvertTest, SyncObjectHierarchyRegistered) {
  convertAndLoad();
  EXPECT_TRUE(store_.hasResourceType("syncObject/class/object"));
}

TEST_F(ParadynConvertTest, BinsAreTimeIntervalResources) {
  convertAndLoad();
  const auto bin = store_.findResource("/" + run_.exec_name + "-time/bin50");
  ASSERT_TRUE(bin.has_value());
  EXPECT_EQ(store_.resourceInfo(*bin).type_path, "time/interval");
  const auto attrs = store_.attributesOf(*bin);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].name, "end time");
  EXPECT_EQ(attrs[1].name, "start time");
  EXPECT_DOUBLE_EQ(std::stod(attrs[1].value), 50 * 0.2);
}

TEST_F(ParadynConvertTest, ResultsCarryBinAndFocusContext) {
  convertAndLoad();
  const auto ids = store_.resultsForExecution(run_.exec_name);
  ASSERT_FALSE(ids.empty());
  const auto rec = store_.getResult(ids.front());
  EXPECT_EQ(rec.tool, "Paradyn");
  ASSERT_EQ(rec.contexts.size(), 1u);
  bool saw_bin = false;
  for (core::ResourceId id : rec.contexts[0]) {
    if (store_.resourceInfo(id).type_path == "time/interval") saw_bin = true;
  }
  EXPECT_TRUE(saw_bin);
  // Bin start/end recorded on the result itself too.
  EXPECT_GE(rec.start_time, 0.0);
  EXPECT_GT(rec.end_time, rec.start_time);
}

TEST_F(ParadynConvertTest, ProcessResourcesCarryNodeAttribute) {
  convertAndLoad();
  // Generator put ranks on nodes MCR0/MCR1 (2 procs per node).
  const auto procs = store_.childrenOf(*store_.findResource("/" + run_.exec_name));
  ASSERT_FALSE(procs.empty());
  bool saw_node_attr = false;
  for (const auto& proc : procs) {
    for (const auto& attr : store_.attributesOf(proc.id)) {
      if (attr.name == "node" && attr.value.rfind("MCR", 0) == 0) saw_node_attr = true;
    }
  }
  EXPECT_TRUE(saw_node_attr);
}

TEST_F(ParadynConvertTest, QueryByTimeWindowNarrowsResults) {
  convertAndLoad();
  core::PrFilter all_bins;
  all_bins.families.push_back(core::ResourceFilter::byType("time/interval"));
  const auto everything = core::queryResults(store_, all_bins);

  core::PrFilter early;
  early.families.push_back(core::ResourceFilter::byAttributes(
      {{"start time", "<", "5"}}, "time/interval"));
  const auto early_results = core::queryResults(store_, early);
  EXPECT_LT(early_results.size(), everything.size());
  EXPECT_GT(early_results.size(), 0u);
}

TEST_F(ParadynConvertTest, EightParadynMetrics) {
  convertAndLoad();
  EXPECT_LE(store_.metrics().size(), 8u);  // Table 1 row 3: 8 metrics
  EXPECT_GE(store_.metrics().size(), 4u);
}

TEST_F(ParadynConvertTest, HistogramModeStoresOneResultPerPair) {
  std::ostringstream out;
  ptdf::Writer writer(out);
  const std::size_t converted = convertParadynRun(
      dir_.path(), run_.exec_name, "IRS", writer, BinMode::HistogramResults);
  EXPECT_EQ(converted, 8u);  // one per metric-focus pair
  std::istringstream in(out.str());
  stats_ = ptdf::load(store_, in);
  EXPECT_EQ(stats_.histograms, 8u);
  const auto ids = store_.resultsForExecution(run_.exec_name);
  ASSERT_EQ(ids.size(), 8u);
  // Each result carries its full series; nan bins are holes.
  const auto hist = store_.getHistogram(ids.front());
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->num_bins, 100);
  EXPECT_LT(hist->bins.size(), 100u);
  EXPECT_GT(hist->bins.size(), 0u);
  // The scalar view still works for comparisons: value = series sum.
  const auto rec = store_.getResult(ids.front());
  double sum = 0.0;
  for (const auto& [bin, v] : hist->bins) sum += v;
  EXPECT_NEAR(rec.value, sum, std::abs(sum) * 1e-6 + 1e-9);
}

TEST_F(ParadynConvertTest, HistogramModeMatchesPerBinTotals) {
  // The two representations must agree on the total measured quantity.
  std::ostringstream per_bin_out;
  ptdf::Writer per_bin_writer(per_bin_out);
  convertParadynRun(dir_.path(), "perbin-run", "IRS", per_bin_writer,
                    BinMode::PerBinResults);
  std::ostringstream hist_out;
  ptdf::Writer hist_writer(hist_out);
  convertParadynRun(dir_.path(), "hist-run", "IRS", hist_writer,
                    BinMode::HistogramResults);
  {
    std::istringstream in(per_bin_out.str());
    ptdf::load(store_, in);
  }
  {
    std::istringstream in(hist_out.str());
    ptdf::load(store_, in);
  }
  auto total = [&](const std::string& exec) {
    double sum = 0.0;
    for (std::int64_t id : store_.resultsForExecution(exec)) {
      sum += store_.getResult(id).value;
    }
    return sum;
  };
  EXPECT_NEAR(total("perbin-run"), total("hist-run"),
              std::abs(total("hist-run")) * 1e-5 + 1e-9);
}

TEST_F(ParadynConvertTest, TruncatedHistogramRejected) {
  // Corrupt one histogram: drop its last lines.
  const auto path = dir_.file("histogram_000.hist");
  std::string contents;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  {
    std::ofstream out(path);
    out << contents.substr(0, contents.size() / 2);
  }
  std::ostringstream out;
  ptdf::Writer writer(out);
  EXPECT_THROW(convertParadynRun(dir_.path(), run_.exec_name, "IRS", writer),
               util::ParseError);
}

}  // namespace
}  // namespace perftrack::tools
