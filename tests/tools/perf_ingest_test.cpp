// pt_perf_ingest: the minimal JSON reader, both bench schemas, the prom
// sidecar parser, history ingest into a PTDataStore, and the regression
// gate's verdict bands (baseline-established / improvement / stable /
// minor / critical with baseline auto-advance).
#include "tools/perf_ingest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/datastore.h"
#include "dbal/connection.h"
#include "util/error.h"

namespace perftrack::tools::perf_ingest {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pt_perf_ingest_test.XXXXXX";
    path_ = mkdtemp(tmpl);
  }
  ~TempDir() {
    // Tests create a handful of flat files only.
    std::string cmd = "rm -rf '" + path_ + "'";
    (void)!std::system(cmd.c_str());
  }
  std::string file(const std::string& name, const std::string& content) const {
    const std::string p = path_ + "/" + name;
    std::ofstream(p) << content;
    return p;
  }

 private:
  std::string path_;
};

TEST(JsonParserTest, ParsesScalarsArraysObjects) {
  const Json v = parseJson(
      R"({"s": "a\"b", "n": -2.5e2, "b": true, "z": null, "a": [1, 2]})");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("s")->text, "a\"b");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -250.0);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("z")->type, Json::Type::Null);
  ASSERT_EQ(v.find("a")->items.size(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, KeepsMemberOrderAndRejectsGarbage) {
  const Json v = parseJson(R"({"zz": 1, "aa": 2})");
  EXPECT_EQ(v.members[0].first, "zz");
  EXPECT_EQ(v.members[1].first, "aa");
  EXPECT_THROW(parseJson("{"), util::ParseError);
  EXPECT_THROW(parseJson("[1,]"), util::ParseError);
  EXPECT_THROW(parseJson("{} trailing"), util::ParseError);
  EXPECT_THROW(parseJson(R"({"k": nope})"), util::ParseError);
}

TEST(BenchFileTest, ApplicationNameFromPath) {
  EXPECT_EQ(applicationForPath("/x/y/BENCH_cursor.json"), "cursor");
  EXPECT_EQ(applicationForPath("BENCH_wal_commit.json"), "wal_commit");
  EXPECT_EQ(applicationForPath("custom.json"), "custom");
  EXPECT_EQ(promSidecarForBenchPath("/x/BENCH_cursor.json"),
            "/x/METRICS_cursor.prom");
}

TEST(BenchFileTest, FlatArraySplitsConfigFromMeasurements) {
  TempDir dir;
  const auto path = dir.file("BENCH_cursor.json", R"([
    {"phase": "streamed", "table_rows": 50000, "rows": 50000,
     "batch_rows": 0, "ttfr_ms": 1.5, "total_ms": 100.25, "rss_growth_kb": 64}
  ])");
  const BenchFile file = parseBenchFile(path);
  EXPECT_EQ(file.application, "cursor");
  ASSERT_EQ(file.entries.size(), 1u);
  // String fields and config numerics form the entry name...
  EXPECT_EQ(file.entries[0].name, "streamed:table_rows=50000:batch_rows=0");
  // ...and the remaining numerics are the measurements.
  ASSERT_EQ(file.entries[0].measurements.size(), 4u);
  EXPECT_EQ(file.entries[0].measurements[0].metric, "rows");
  EXPECT_EQ(file.entries[0].measurements[2].metric, "total_ms");
  EXPECT_DOUBLE_EQ(file.entries[0].measurements[2].value, 100.25);
}

TEST(BenchFileTest, GoogleBenchmarkSchemaSkipsBookkeeping) {
  TempDir dir;
  const auto path = dir.file("BENCH_gb.json", R"({
    "context": {"host_name": "ci", "num_cpus": 8},
    "benchmarks": [
      {"name": "BM_Probe/64", "family_index": 0, "repetitions": 1,
       "iterations": 1000, "real_time": 125.5, "cpu_time": 125.0,
       "time_unit": "ns", "items_per_second": 8000.0}
    ]})");
  const BenchFile file = parseBenchFile(path);
  ASSERT_EQ(file.entries.size(), 1u);
  // '/' is a path separator in resource names, so it sanitizes to ':'.
  EXPECT_EQ(file.entries[0].name, "BM_Probe:64");
  ASSERT_EQ(file.entries[0].measurements.size(), 3u);
  EXPECT_EQ(file.entries[0].measurements[0].metric, "real_time");
  EXPECT_EQ(file.entries[0].measurements[2].metric, "items_per_second");
}

TEST(BenchFileTest, PromSidecarTakesLabelFreeSamplesOnly) {
  TempDir dir;
  const auto path = dir.file("METRICS_x.prom",
                             "# TYPE pt_a_total counter\n"
                             "pt_a_total 7\n"
                             "pt_h_ms_bucket{le=\"0.05\"} 3\n"
                             "pt_h_ms_sum 1.25\n"
                             "pt_bad notanumber\n"
                             "\n"
                             "pt_g -4\n");
  const auto samples = parsePromSidecar(path);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].metric, "pt_a_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].metric, "pt_h_ms_sum");
  EXPECT_EQ(samples[2].metric, "pt_g");
  EXPECT_TRUE(parsePromSidecar("/nonexistent/file.prom").empty());
}

TEST(IsTimeMetricTest, RecognizesLowerBetterDurations) {
  EXPECT_TRUE(isTimeMetric("total_ms"));
  EXPECT_TRUE(isTimeMetric("real_time"));
  EXPECT_TRUE(isTimeMetric("cpu_time"));
  EXPECT_TRUE(isTimeMetric("commit_us"));
  EXPECT_FALSE(isTimeMetric("rss_growth_kb"));
  EXPECT_FALSE(isTimeMetric("items_per_second"));
}

class GateTest : public ::testing::Test {
 protected:
  GateTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
  }

  std::string writeRun(double total_ms) {
    return dir_.file("BENCH_gatecase.json",
                     "[{\"phase\": \"scan\", \"table_rows\": 1000, "
                     "\"ttfr_ms\": 1.0, \"total_ms\": " +
                         std::to_string(total_ms) + "}]");
  }

  GateReport gate(double total_ms, const std::string& label) {
    return runGate(store_, {writeRun(total_ms)}, label);
  }

  TempDir dir_;
  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
};

TEST_F(GateTest, IngestRecordsExecutionsAndResults) {
  const auto stats = ingestRun(store_, {writeRun(50.0)}, "r1");
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.results, 2u);  // ttfr_ms + total_ms
  const auto execs = store_.executions();
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0], "gatecase@r1");
  // The same label cannot be ingested twice.
  EXPECT_THROW(ingestRun(store_, {writeRun(50.0)}, "r1"), util::ModelError);
}

TEST_F(GateTest, VerdictBands) {
  EXPECT_EQ(gate(100.0, "r0").entries[0].verdict,
            Verdict::BaselineEstablished);
  EXPECT_EQ(gate(105.0, "r1").entries[0].verdict, Verdict::Stable);
  EXPECT_EQ(gate(115.0, "r2").entries[0].verdict, Verdict::MinorRegression);
  EXPECT_EQ(gate(150.0, "r3").entries[0].verdict,
            Verdict::CriticalRegression);
  EXPECT_EQ(gate(85.0, "r4").entries[0].verdict, Verdict::Improvement);
}

TEST_F(GateTest, BaselineAdvancesOnlyOnImprovement) {
  gate(100.0, "r0");
  gate(150.0, "r1");  // critical: keep baseline
  auto stored = baselines(*conn_);
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_EQ(stored[0].second, "gatecase@r0");

  const auto report = gate(80.0, "r2");  // improvement vs r0: advance
  EXPECT_TRUE(report.entries[0].baseline_updated);
  stored = baselines(*conn_);
  EXPECT_EQ(stored[0].second, "gatecase@r2");
  EXPECT_TRUE(report.hasCritical() == false);
}

TEST_F(GateTest, ReportFormatsCarryTheCitedPair) {
  gate(100.0, "r0");
  const auto report = gate(200.0, "r1");
  EXPECT_TRUE(report.hasCritical());
  const std::string jsonl = report.toJsonLines();
  EXPECT_NE(jsonl.find("\"verdict\": \"critical-regression\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"metric\": \"total_ms\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ratio\": 2"), std::string::npos);
  const std::string text = report.toText();
  EXPECT_NE(text.find("gatecase: critical-regression"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::tools::perf_ingest
