#include "tools/ptdfgen.h"

#include <gtest/gtest.h>

#include <fstream>

#include "core/datastore.h"
#include "ptdf/ptdf.h"
#include "sim/irs_gen.h"
#include "sim/smg_gen.h"
#include "util/error.h"
#include "util/tempdir.h"

namespace perftrack::tools {
namespace {

TEST(MachineByName, LooksUpCaseInsensitively) {
  EXPECT_EQ(machineByName("frost").name, "Frost");
  EXPECT_EQ(machineByName("MCR").name, "MCR");
  EXPECT_EQ(machineByName("Bgl").name, "BGL");
  EXPECT_EQ(machineByName("uv").name, "UV");
  EXPECT_THROW(machineByName("purple"), util::PTError);
}

TEST(ParseIndexFile, ValidEntries) {
  util::TempDir dir;
  const auto index = dir.file("index.txt");
  {
    std::ofstream out(index);
    out << "# case study 1\n"
        << "irs /data/run1 frost\n"
        << "smg /data/run2 bgl my-exec\n"
        << "paradyn /data/run3 mcr pd-exec\n";
  }
  const auto entries = parseIndexFile(index);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].kind, "irs");
  EXPECT_EQ(entries[0].machine, "frost");
  EXPECT_TRUE(entries[0].exec_name.empty());
  EXPECT_EQ(entries[1].exec_name, "my-exec");
  EXPECT_EQ(entries[2].kind, "paradyn");
}

TEST(ParseIndexFile, RejectsMalformedEntries) {
  util::TempDir dir;
  auto write = [&](const char* text) {
    const auto path = dir.file("bad.txt");
    std::ofstream out(path);
    out << text;
    out.close();
    return path;
  };
  EXPECT_THROW(parseIndexFile(write("irs onlyonefield\n")), util::ParseError);
  EXPECT_THROW(parseIndexFile(write("teleport /d frost\n")), util::ParseError);
  // paradyn requires an execution name
  EXPECT_THROW(parseIndexFile(write("paradyn /d mcr\n")), util::ParseError);
  EXPECT_THROW(parseIndexFile("/no/such/index"), util::PTError);
}

TEST(GenerateFromIndex, EndToEndConversionAndLoad) {
  util::TempDir dir;
  // Two real runs.
  sim::generateIrsRun({machineByName("frost"), 8, "MPI", 1, ""}, dir.file("irs-run"));
  sim::SmgRunSpec smg;
  smg.machine = machineByName("bgl");
  smg.nprocs = 64;
  sim::generateSmgRun(smg, dir.file("smg-run"));

  const auto index = dir.file("index.txt");
  {
    std::ofstream out(index);
    out << "irs " << dir.file("irs-run").string() << " frost\n"
        << "smg " << dir.file("smg-run").string() << " bgl\n";
  }
  const auto results = generateFromIndex(index, dir.file("out"));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].perf_results, 1000u);
  EXPECT_EQ(results[1].perf_results, 8u);
  EXPECT_GT(results[0].ptdf_lines, 1000u);

  // The produced PTdf files load cleanly.
  auto conn = dbal::Connection::open(":memory:");
  core::PTDataStore store(*conn);
  store.initialize();
  for (const auto& r : results) {
    const auto stats = ptdf::loadFile(store, r.ptdf_file.string());
    EXPECT_EQ(stats.perf_results, r.perf_results);
  }
  EXPECT_EQ(store.executions().size(), 2u);
}

}  // namespace
}  // namespace perftrack::tools
