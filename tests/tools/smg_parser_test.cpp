#include "tools/smg_parser.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/filter.h"
#include "sim/smg_gen.h"
#include "util/tempdir.h"

namespace perftrack::tools {
namespace {

class SmgParserTest : public ::testing::Test {
 protected:
  SmgParserTest() : conn_(dbal::Connection::open(":memory:")), store_(*conn_) {
    store_.initialize();
  }

  sim::GeneratedRun generate(const sim::MachineConfig& machine, int nprocs, bool extras) {
    sim::SmgRunSpec spec;
    spec.machine = machine;
    spec.nprocs = nprocs;
    spec.with_mpip = extras;
    spec.with_pmapi = extras;
    spec.seed = 5;
    return sim::generateSmgRun(spec, dir_.path());
  }

  std::size_t convertAndLoad(const sim::MachineConfig& machine) {
    std::ostringstream out;
    ptdf::Writer writer(out);
    const std::size_t converted = convertSmgRun(dir_.path(), machine, writer);
    std::istringstream in(out.str());
    stats_ = ptdf::load(store_, in);
    return converted;
  }

  util::TempDir dir_;
  std::unique_ptr<dbal::Connection> conn_;
  core::PTDataStore store_;
  ptdf::LoadStats stats_;
};

TEST_F(SmgParserTest, BglRunYieldsEightWholeExecutionResults) {
  const auto run = generate(sim::bglConfig(), 512, /*extras=*/false);
  const std::size_t converted = convertAndLoad(sim::bglConfig());
  EXPECT_EQ(converted, 8u);  // Table 1: SMG-BG/L has 8 results per execution
  EXPECT_EQ(stats_.perf_results, 8u);
  for (std::int64_t id : store_.resultsForExecution(run.exec_name)) {
    EXPECT_EQ(store_.getResult(id).tool, "SMG2000");
  }
}

TEST_F(SmgParserTest, UvRunAddsPmapiResults) {
  const auto run = generate(sim::uvConfig(), 16, /*extras=*/true);
  convertAndLoad(sim::uvConfig());
  // 8 whole-exec + 8 counters x 16 tasks PMAPI + mpiP rows.
  core::PrFilter pmapi_only;
  pmapi_only.families.push_back(core::ResourceFilter::byName(
      "/" + run.exec_name + "/p3", core::Expansion::None));
  std::size_t pmapi_hits = 0;
  for (std::int64_t id : core::queryResults(store_, pmapi_only)) {
    if (store_.getResult(id).tool == "PMAPI") ++pmapi_hits;
  }
  EXPECT_EQ(pmapi_hits, 8u);  // one per hardware counter for that rank
}

TEST_F(SmgParserTest, MpipResultsHaveCallerAndCalleeContexts) {
  generate(sim::uvConfig(), 8, /*extras=*/true);
  convertAndLoad(sim::uvConfig());
  // Find an mpiP callsite result and check the two resource sets (§4.2).
  bool found = false;
  for (const std::string& exec : store_.executions()) {
    for (std::int64_t id : store_.resultsForExecution(exec)) {
      const auto rec = store_.getResult(id);
      if (rec.tool != "mpiP" || rec.metric.find("mean time") == std::string::npos) {
        continue;
      }
      found = true;
      ASSERT_EQ(rec.contexts.size(), 2u);
      // One context holds a build function (caller), the other an MPI
      // operation in the environment hierarchy (callee).
      bool caller = false;
      bool callee = false;
      for (const auto& context : rec.contexts) {
        for (core::ResourceId rid : context) {
          const auto info = store_.resourceInfo(rid);
          if (info.type_path == "build/module/function") caller = true;
          if (info.full_name.rfind("/libmpi/MPI_", 0) == 0) callee = true;
        }
      }
      EXPECT_TRUE(caller);
      EXPECT_TRUE(callee);
      break;
    }
    if (found) break;
  }
  EXPECT_TRUE(found);
}

TEST_F(SmgParserTest, MpipPerTaskTimesRecorded) {
  const auto run = generate(sim::uvConfig(), 8, /*extras=*/true);
  convertAndLoad(sim::uvConfig());
  std::size_t task_times = 0;
  for (std::int64_t id : store_.resultsForExecution(run.exec_name)) {
    const auto rec = store_.getResult(id);
    if (rec.tool == "mpiP" && rec.metric == "MPI time") ++task_times;
  }
  EXPECT_EQ(task_times, 8u);  // one per rank
}

TEST_F(SmgParserTest, QueryByMpiOperationUsesCalleeContext) {
  generate(sim::uvConfig(), 8, /*extras=*/true);
  convertAndLoad(sim::uvConfig());
  core::PrFilter filter;
  filter.families.push_back(
      core::ResourceFilter::byName("/libmpi/MPI_Allreduce", core::Expansion::None));
  const auto results = core::queryResults(store_, filter);
  EXPECT_GT(results.size(), 0u);
  for (std::int64_t id : results) {
    EXPECT_NE(store_.getResult(id).metric.find("Allreduce"), std::string::npos);
  }
}

TEST_F(SmgParserTest, MetricCountsScaleWithCallsites) {
  generate(sim::uvConfig(), 8, /*extras=*/true);
  convertAndLoad(sim::uvConfig());
  // Table 1 reports 259 metrics for SMG-UV; at this reduced rank count the
  // callsite-tagged metric names still dominate the inventory.
  EXPECT_GT(store_.metrics().size(), 60u);
}

}  // namespace
}  // namespace perftrack::tools
