#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace perftrack::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(WriteCsvRow, JoinsAndTerminates) {
  std::ostringstream out;
  writeCsvRow(out, {"a", "b,c", "d"});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n");
}

TEST(ParseCsvLine, RoundTripsEscapedFields) {
  const auto fields = parseCsvLine("a,\"b,c\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(ParseCsvLine, EmptyFields) {
  const auto fields = parseCsvLine(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(parseCsvLine("\"oops"), ParseError);
}

}  // namespace
}  // namespace perftrack::util
