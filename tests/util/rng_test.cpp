#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace perftrack::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalApproximatesMoments) {
  Rng rng(123);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialIsPositiveWithMatchingMean) {
  Rng rng(55);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(4.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace perftrack::util
