#include "util/strings.h"

#include <gtest/gtest.h>

namespace perftrack::util {
namespace {

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto fields = split(",a,,b,", ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[4], "");
}

TEST(Split, EmptyInputIsSingleEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(SplitN, RemainderStaysInLastField) {
  const auto fields = splitN("a b c d", ' ', 3);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "c d");
}

TEST(SplitN, FewerFieldsThanMax) {
  const auto fields = splitN("a b", ' ', 5);
  ASSERT_EQ(fields.size(), 2u);
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto fields = splitWhitespace("  foo\t bar\nbaz  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "foo");
  EXPECT_EQ(fields[1], "bar");
  EXPECT_EQ(fields[2], "baz");
}

TEST(SplitWhitespace, EmptyAndBlankInputs) {
  EXPECT_TRUE(splitWhitespace("").empty());
  EXPECT_TRUE(splitWhitespace("   \t\n ").empty());
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"solo"}, "/"), "solo");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(startsWith("grid/machine", "grid"));
  EXPECT_FALSE(startsWith("grid", "grid/machine"));
  EXPECT_TRUE(endsWith("Frost/batch", "/batch"));
  EXPECT_FALSE(endsWith("batch", "Frost/batch"));
}

TEST(CaseHelpers, LowerAndIequals) {
  EXPECT_EQ(toLower("MixedCase42"), "mixedcase42");
  EXPECT_TRUE(iequals("SELECT", "select"));
  EXPECT_FALSE(iequals("SELECT", "SELECTS"));
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-17"), -17);
  EXPECT_EQ(parseInt(" 8 "), 8);
  EXPECT_FALSE(parseInt("4.2").has_value());
  EXPECT_FALSE(parseInt("x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
}

TEST(ParseReal, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parseReal("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parseReal("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*parseReal("7"), 7.0);
  EXPECT_FALSE(parseReal("7px").has_value());
  EXPECT_FALSE(parseReal("").has_value());
}

TEST(FormatReal, TrimsTrailingZeros) {
  EXPECT_EQ(formatReal(1.5), "1.5");
  EXPECT_EQ(formatReal(2.0), "2");
  EXPECT_EQ(formatReal(0.125), "0.125");
  EXPECT_EQ(formatReal(-3.25), "-3.25");
}

TEST(SqlQuote, EscapesEmbeddedQuotes) {
  EXPECT_EQ(sqlQuote("abc"), "'abc'");
  EXPECT_EQ(sqlQuote("it's"), "'it''s'");
  EXPECT_EQ(sqlQuote(""), "''");
}

}  // namespace
}  // namespace perftrack::util
